//! Integration tests for the §9.2 attack applications.

use branchscope::attack::{AttackConfig, BranchScope};
use branchscope::bpu::{MicroarchProfile, Outcome};
use branchscope::os::{AslrPolicy, System, Workload};
use branchscope::victims::{
    mod_exp, CoefficientBlock, IdctVictim, MontgomeryLadder, IDCT_BRANCH_OFFSET,
    VICTIM_BRANCH_OFFSET,
};

#[test]
fn montgomery_key_recovered_exactly_on_quiet_machine() {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x4E4);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let key = 0xDEAD_BEEF_1234_5678u64;
    let mut ladder = MontgomeryLadder::new(3, key, 1_000_000_007);
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let reads = attack.read_bits(&mut sys, spy, target, ladder.key_bits(), |sys, _| {
        let mut cpu = sys.cpu(victim);
        ladder.step(&mut cpu);
    });
    assert_eq!(MontgomeryLadder::key_from_outcomes(&reads), key);
    assert_eq!(ladder.result(), Some(mod_exp(3, key, 1_000_000_007)));
}

#[test]
fn idct_column_sparsity_recovered() {
    let profile = MicroarchProfile::haswell();
    let mut sys = System::new(profile.clone(), 0x1D2);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(IDCT_BRANCH_OFFSET);

    let mut coeffs = [[0i16; 8]; 8];
    coeffs[0][0] = 64;
    coeffs[4][1] = 7; // AC energy in column 1
    coeffs[2][6] = -3; // and column 6
    let mut victim_prog = IdctVictim::new(vec![CoefficientBlock::new(coeffs)]);
    let truth = victim_prog.ground_truth(0);

    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let mut recovered = [false; 8];
    for slot in recovered.iter_mut() {
        *slot = attack
            .read_bit(&mut sys, spy, target, |sys| {
                let mut cpu = sys.cpu(victim);
                victim_prog.step(&mut cpu);
            })
            .is_taken();
    }
    assert_eq!(recovered, truth, "per-column zero-skip pattern leaks exactly");
    assert!(!recovered[1] && !recovered[6] && recovered[0]);
}

#[test]
fn victim_pht_congruence_class_is_discoverable_under_aslr() {
    // Phase 1 of the §9.2 ASLR attack: scan PHT congruence classes for the
    // one the victim's hot branch perturbs.
    let profile = MicroarchProfile::skylake();
    let pht_mask = profile.pht_size as u64 - 1;
    let mut sys = System::new(profile.clone(), 0xA51);
    let victim = sys.spawn("victim", AslrPolicy::Randomized);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let truth = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET) & pht_mask;

    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let mut found = None;
    for class in 0..=pht_mask {
        let candidate = 0x7000_0000u64 + class;
        let read = attack.read_bit(&mut sys, spy, candidate, |sys| {
            sys.cpu(victim).branch_at(VICTIM_BRANCH_OFFSET, Outcome::Taken);
        });
        if read == Outcome::Taken {
            found = Some(class);
            break;
        }
    }
    assert_eq!(found, Some(truth), "collision scan pinpoints the victim's PHT index");
}
