//! Cross-crate property tests on whole-model invariants.

use branchscope::attack::{AttackConfig, BranchScope, DirectionDict, ProbeKind};
use branchscope::bpu::{
    CounterKind, DirectionPredictor, HybridPredictor, MicroarchProfile, Outcome, PhtState,
};
use branchscope::os::{AslrPolicy, System};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole machine is deterministic: identical seeds and identical
    /// branch traces produce identical predictions, counters and clocks.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        trace in proptest::collection::vec((0u64..4096, any::<bool>()), 1..200),
    ) {
        let run = || {
            let mut sys = System::new(MicroarchProfile::skylake(), seed);
            let pid = sys.spawn("p", AslrPolicy::Disabled);
            for &(off, taken) in &trace {
                sys.cpu(pid).branch_at(off, Outcome::from_bool(taken));
            }
            (sys.cpu(pid).counters(), sys.cpu(pid).rdtscp())
        };
        prop_assert_eq!(run(), run());
    }

    /// Two hybrid predictors fed the same dynamic stream stay in lockstep —
    /// prediction is a pure function of architectural history.
    #[test]
    fn hybrid_predictors_stay_in_lockstep(
        trace in proptest::collection::vec((0u64..2048, any::<bool>()), 1..300),
    ) {
        let mut a = HybridPredictor::new(MicroarchProfile::haswell());
        let mut b = HybridPredictor::new(MicroarchProfile::haswell());
        for &(addr, taken) in &trace {
            let (pa, _) = a.execute(addr, Outcome::from_bool(taken), None);
            let (pb, _) = b.execute(addr, Outcome::from_bool(taken), None);
            prop_assert_eq!(pa, pb);
        }
    }

    /// Backend-refactor property: a hybrid driven through a
    /// `dyn DirectionPredictor` trait object stays in perfect lockstep with
    /// a directly-driven `HybridPredictor` — identical prediction stream,
    /// identical correctness bits, and identical PHT states everywhere —
    /// for any branch/outcome sequence. The trait adds behaviour-preserving
    /// indirection, nothing else.
    #[test]
    fn trait_dispatched_hybrid_matches_direct_hybrid(
        trace in proptest::collection::vec((0u64..8192, any::<bool>()), 1..300),
    ) {
        let mut direct = HybridPredictor::new(MicroarchProfile::skylake());
        let mut dispatched: Box<dyn DirectionPredictor> =
            Box::new(HybridPredictor::new(MicroarchProfile::skylake()));
        for &(addr, taken) in &trace {
            let outcome = Outcome::from_bool(taken);
            let (pd, cd) = direct.execute(addr, outcome, None);
            let (pb, cb) = dispatched.execute(addr, outcome, None);
            prop_assert_eq!(pd, pb, "prediction diverged at {}", addr);
            prop_assert_eq!(cd, cb, "correctness diverged at {}", addr);
        }
        // Whole-PHT agreement, not just the addresses the trace visited.
        let pht_size = DirectionPredictor::profile(&direct).pht_size as u64;
        for addr in 0..pht_size {
            prop_assert_eq!(direct.pht_state(addr), dispatched.pht_state(addr));
        }
        prop_assert_eq!(direct.stats(), dispatched.stats());
        prop_assert_eq!(direct.ghr().value(), dispatched.ghr().value());
    }

    /// Priming is idempotent at the architectural level: after a prime, the
    /// target entry is in the configured strong state regardless of any
    /// prior branch history.
    #[test]
    fn prime_always_lands_in_the_configured_state(
        history in proptest::collection::vec((0u64..65_536, any::<bool>()), 0..300),
        prime_taken in any::<bool>(),
    ) {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 7);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        // Arbitrary victim activity first.
        for &(off, taken) in &history {
            sys.cpu(victim).branch_at(off, Outcome::from_bool(taken));
        }
        let state = if prime_taken { PhtState::StronglyTaken } else { PhtState::StronglyNotTaken };
        let mut prime = branchscope::attack::TargetedPrime::new(target, state);
        prime.prime(&mut sys.cpu(spy));
        prop_assert_eq!(sys.core().bpu().pht_state(target), state);
        // The victim's own BTB entry is always evicted; a *taken* prime then
        // installs the spy's entry at the same address (same tag), so only
        // the not-taken prime leaves the slot empty.
        prop_assert_eq!(sys.core().bpu().btb().contains(target), prime_taken);
    }

    /// For every usable (counter, primed-state, probe) configuration, the
    /// dictionary decodes its own expected patterns back to the victim
    /// direction that produced them.
    #[test]
    fn dictionaries_are_self_consistent(kind_sky in any::<bool>(), primed_taken in any::<bool>()) {
        let kind = if kind_sky { CounterKind::SkylakeAsymmetric } else { CounterKind::TwoBit };
        let primed = if primed_taken { PhtState::StronglyTaken } else { PhtState::StronglyNotTaken };
        for probe in [ProbeKind::TakenTaken, ProbeKind::NotTakenNotTaken] {
            if let Ok(dict) = DirectionDict::build(kind, primed, probe) {
                for victim in [Outcome::Taken, Outcome::NotTaken] {
                    prop_assert_eq!(dict.decode(dict.expected(victim)), victim);
                }
            }
        }
    }

    /// A single noiseless attack round reads the victim's direction
    /// correctly from any prior machine state the victim may have created.
    #[test]
    fn one_round_is_correct_from_arbitrary_machine_state(
        warmup in proptest::collection::vec((0u64..32_768, any::<bool>()), 0..200),
        secret in any::<bool>(),
    ) {
        let profile = MicroarchProfile::haswell();
        let mut sys = System::new(profile.clone(), 11);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        for &(off, taken) in &warmup {
            sys.cpu(victim).branch_at(off, Outcome::from_bool(taken));
        }
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        let read = attack.read_bit(&mut sys, spy, target, |sys| {
            sys.cpu(victim).branch_at(0x6d, Outcome::from_bool(secret));
        });
        prop_assert_eq!(read, Outcome::from_bool(secret));
    }
}
