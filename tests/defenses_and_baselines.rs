//! Integration tests for §10 defenses and §11 baseline comparisons through
//! the façade crate.

use branchscope::baselines::compare_attacks;
use branchscope::bpu::MicroarchProfile;
use branchscope::mitigations::{evaluate, EvalReport, MeasurementFuzz, Mitigation};

fn eval(m: Mitigation) -> EvalReport {
    evaluate(&m, &MicroarchProfile::skylake(), 300, 0xD00D)
}

#[test]
fn every_hardware_defense_defeats_the_attack() {
    assert!(!eval(Mitigation::None).defeated(), "baseline must work");
    for m in [
        Mitigation::RandomizedPht { rekey_interval: None },
        Mitigation::RandomizedPht { rekey_interval: Some(5_000) },
        Mitigation::PartitionedBpu { partitions: 2 },
        Mitigation::PartitionedBpu { partitions: 8 },
        Mitigation::NoPredictSensitive,
    ] {
        let report = eval(m);
        assert!(report.defeated(), "{report}");
    }
}

#[test]
fn software_defense_and_fuzzing_degrade_the_attack() {
    let ifconv = eval(Mitigation::IfConversion);
    assert!(ifconv.defeated(), "{ifconv}");
    let fuzz = eval(Mitigation::NoisyMeasurements(MeasurementFuzz::strong()));
    assert!(fuzz.error_rate > 0.15, "{fuzz}");
}

#[test]
fn defenses_hold_on_every_paper_machine() {
    for profile in MicroarchProfile::paper_machines() {
        let baseline = evaluate(&Mitigation::None, &profile, 200, 0xF00);
        let defended = evaluate(
            &Mitigation::RandomizedPht { rekey_interval: None },
            &profile,
            200,
            0xF00,
        );
        assert!(baseline.error_rate < 0.05, "{}: baseline {}", profile.arch, baseline);
        assert!(defended.defeated(), "{}: {}", profile.arch, defended);
    }
}

#[test]
fn branchscope_beats_btb_defenses_that_stop_prior_attacks() {
    let cmp = compare_attacks(&MicroarchProfile::haswell(), 100, 0xFACE);
    let bscope = cmp.rows.iter().find(|r| r.attack == "BranchScope").unwrap();
    assert!(bscope.accuracy_unprotected > 0.95);
    assert!(bscope.accuracy_btb_defended > 0.95, "BranchScope unaffected by BTB flushing");
    let shadow = cmp.rows.iter().find(|r| r.attack == "branch shadowing").unwrap();
    let evict = cmp.rows.iter().find(|r| r.attack == "BTB eviction").unwrap();
    for row in [shadow, evict] {
        assert!(row.accuracy_unprotected > 0.8, "{row}");
        assert!(row.accuracy_btb_defended < 0.7, "{row}");
        assert!(row.defense_kills_attack(), "{row}");
    }
}
