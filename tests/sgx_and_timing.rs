//! Integration tests for the SGX scenario (§9) and the counter-free timing
//! channel (§8).

use branchscope::attack::covert::{CovertChannel, EnclaveSender};
use branchscope::attack::timing_probe::TimingDetector;
use branchscope::attack::{AttackConfig, ProbeKind};
use branchscope::bpu::{MicroarchProfile, Outcome, PhtState};
use branchscope::os::{AslrPolicy, Enclave, EnclaveController, System};
use branchscope::uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[test]
fn sgx_isolated_is_at_least_as_good_as_noisy() {
    // Table 3 shape: the attacker-controlled OS can suppress noise, which
    // can only help.
    let profile = MicroarchProfile::skylake();
    let mut rates = Vec::new();
    for noise in [Some(NoiseConfig::system_activity()), None] {
        let mut sys = System::new(profile.clone(), 0x536);
        sys.set_noise(noise).unwrap();
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let secret = random_bits(3_000, 0x51);
        let mut enclave =
            Enclave::launch(&mut sys, "enclave", EnclaveSender::new(secret.clone()));
        let controller = EnclaveController::new();
        let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile)).unwrap();
        let received = channel
            .receive_from_enclave(&mut sys, &mut enclave, &controller, receiver, secret.len());
        rates.push(received.score(&secret).error_rate);
    }
    let (noisy, isolated) = (rates[0], rates[1]);
    assert!(isolated <= noisy, "isolated {isolated:.4} must not exceed noisy {noisy:.4}");
    assert_eq!(isolated, 0.0, "with all noise suppressed the channel is exact");
    assert!(noisy < 0.05, "noisy SGX channel still low-error ({noisy:.4})");
}

#[test]
fn enclave_memory_is_unreadable_but_branches_leak() {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x222);
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);
    let secret = random_bits(64, 0xBEEF);
    let mut enclave = Enclave::launch(&mut sys, "enclave", EnclaveSender::new(secret.clone()));
    assert!(enclave.read_memory(0).is_err());
    let controller = EnclaveController::new();
    let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile)).unwrap();
    let received =
        channel.receive_from_enclave(&mut sys, &mut enclave, &controller, receiver, secret.len());
    assert_eq!(received.bits, secret, "the BPU leaks what SGX memory protection hides");
}

/// §8: the whole attack also works without performance counters, timing
/// the probe branches with rdtscp and classifying per-branch latencies.
#[test]
fn timing_only_attack_recovers_bits() {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x833);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(0x6d);

    let detector = TimingDetector::calibrate(&mut sys, spy, 600).unwrap();
    let secret = random_bits(400, 0x40);
    let mut attack = branchscope::attack::BranchScope::new(AttackConfig::for_profile(&profile))
        .unwrap();
    let dict = *attack.dict();

    // Per §8, with SN priming and TT probing only the *second* probe
    // measurement matters, and the timing channel classifies it with ~10%
    // single-shot error; majority voting over repeated rounds (the victim
    // can be re-triggered) drives the bit error down.
    let mut errors = 0usize;
    for &bit in &secret {
        let outcome = Outcome::from_bool(bit);
        let mut votes = 0usize;
        let rounds = 7;
        for _ in 0..rounds {
            attack.prime(&mut sys, spy, target); // stage 1
            sys.cpu(victim).branch_at(0x6d, outcome); // stage 2
            let pattern = // stage 3 via rdtscp instead of counters
                detector.probe_with_timing(&mut sys.cpu(spy), target, ProbeKind::TakenTaken);
            if dict.decode(pattern) == Outcome::Taken {
                votes += 1;
            }
        }
        let read = Outcome::from_bool(2 * votes >= rounds);
        if read != outcome {
            errors += 1;
        }
    }
    let rate = errors as f64 / secret.len() as f64;
    assert!(rate < 0.05, "timing-only error rate {rate:.4}");
}

#[test]
fn timing_probe_separates_strong_states() {
    // Fig. 9 consequence: the timing probe distinguishes SN from WN, the
    // two states the canonical attack must tell apart.
    let profile = MicroarchProfile::haswell();
    let mut sys = System::new(profile.clone(), 0x999);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let detector = TimingDetector::calibrate(&mut sys, spy, 600).unwrap();
    let addr = 0x7e_4000u64;
    let mut correct = 0usize;
    let trials = 400;
    for i in 0..trials {
        let state =
            if i % 2 == 0 { PhtState::StronglyNotTaken } else { PhtState::WeaklyNotTaken };
        sys.core_mut().bpu_mut().btb_mut().evict(addr);
        sys.core_mut().bpu_mut().as_hybrid_mut().unwrap().selector_mut().set_level(addr, 0);
        sys.core_mut().bpu_mut().set_pht_state(addr, state);
        let pattern = detector.probe_with_timing(&mut sys.cpu(spy), addr, ProbeKind::TakenTaken);
        let want_second_hit = state == PhtState::WeaklyNotTaken;
        if pattern.second_hit() == want_second_hit {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / trials as f64;
    assert!(accuracy > 0.8, "second-measurement state separation accuracy {accuracy:.3}");
}
