//! Cross-crate integration tests: the full attack against scheduled
//! victims on every paper machine.

use branchscope::attack::{AttackConfig, BranchScope};
use branchscope::bpu::{MicroarchProfile, Outcome};
use branchscope::os::{AslrPolicy, SlowdownScheduler, System, Workload};
use branchscope::uarch::NoiseConfig;
use branchscope::victims::{SecretBranchVictim, VICTIM_BRANCH_OFFSET};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_secret(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Reads a victim's whole secret through the scheduler-driven threat model
/// (stage interleaving provided by `SlowdownScheduler`, not by direct
/// victim calls) and returns the bit error count.
fn attack_under_scheduler(profile: &MicroarchProfile, bits: usize, seed: u64) -> usize {
    let mut sys = System::new(profile.clone(), seed);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let secret = random_secret(bits, seed ^ 0xE2E);
    let mut workload = SecretBranchVictim::new(secret.clone());
    let mut attack = BranchScope::new(AttackConfig::for_profile(profile)).unwrap();
    let sched = SlowdownScheduler::single_step();

    let mut errors = 0;
    for &bit in &secret {
        let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
            // Stage 2 through the OS model: the scheduler grants the victim
            // exactly one step.
            sched.round(sys, victim, &mut workload, |_| {}, |_| {});
        });
        if SecretBranchVictim::bit_from_outcome(outcome) != bit {
            errors += 1;
        }
    }
    errors
}

#[test]
fn attack_recovers_secrets_on_all_three_machines() {
    for profile in MicroarchProfile::paper_machines() {
        let errors = attack_under_scheduler(&profile, 400, 0xA11);
        assert_eq!(errors, 0, "{}: {errors} errors on a quiet machine", profile.arch);
    }
}

#[test]
fn attack_stays_below_paper_error_rates_under_noise() {
    // Table 2 shape: SL/Haswell < 1%, Sandy Bridge a few percent.
    for (profile, budget) in [
        (MicroarchProfile::skylake(), 0.02),
        (MicroarchProfile::haswell(), 0.02),
        (MicroarchProfile::sandy_bridge(), 0.08),
    ] {
        let mut sys =
            System::new(profile.clone(), 0xB0B).with_noise(NoiseConfig::system_activity()).unwrap();
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
        let secret = random_secret(2_000, 0x5EED);
        let mut workload = SecretBranchVictim::new(secret.clone());
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        let mut errors = 0usize;
        for &bit in &secret {
            let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
                let mut cpu = sys.cpu(victim);
                workload.step(&mut cpu);
            });
            if SecretBranchVictim::bit_from_outcome(outcome) != bit {
                errors += 1;
            }
        }
        let rate = errors as f64 / secret.len() as f64;
        assert!(rate < budget, "{}: error rate {rate:.4} over budget {budget}", profile.arch);
    }
}

#[test]
fn sandy_bridge_is_noisier_than_skylake() {
    let run = |profile: MicroarchProfile| {
        let mut sys = System::new(profile.clone(), 0xCAFE)
            .with_noise(NoiseConfig::system_activity()).unwrap();
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
        let secret = random_secret(4_000, 0xDF);
        let mut workload = SecretBranchVictim::new(secret.clone());
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        secret
            .iter()
            .filter(|&&bit| {
                let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
                    let mut cpu = sys.cpu(victim);
                    workload.step(&mut cpu);
                });
                SecretBranchVictim::bit_from_outcome(outcome) != bit
            })
            .count()
    };
    let skylake = run(MicroarchProfile::skylake());
    let sandy_bridge = run(MicroarchProfile::sandy_bridge());
    assert!(
        sandy_bridge > skylake,
        "paper: smaller Sandy Bridge tables => more aliasing errors (SB {sandy_bridge} vs SL {skylake})"
    );
}

#[test]
fn attacker_without_collisions_reads_nothing() {
    // Control experiment: if the spy targets a *non-colliding* address, it
    // learns nothing — confirming the signal really flows through the
    // shared PHT entry.
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x777);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    // One byte off: different PHT entry.
    let wrong_target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET + 1);
    let secret = random_secret(200, 0x3C);
    let mut workload = SecretBranchVictim::new(secret.clone());
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let reads: Vec<Outcome> = secret
        .iter()
        .map(|_| {
            attack.read_bit(&mut sys, spy, wrong_target, |sys| {
                let mut cpu = sys.cpu(victim);
                workload.step(&mut cpu);
            })
        })
        .collect();
    assert!(
        reads.iter().all(|&o| o == Outcome::NotTaken),
        "a non-colliding probe must only ever see its own primed SN state"
    );
}

#[test]
fn aslr_breaks_naive_targeting() {
    // With ASLR on, the spy's guess at the conventional base misses the
    // victim's real entry, and the read carries no information.
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x888);
    let victim = sys.spawn("victim", AslrPolicy::Randomized);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let naive_target = 0x40_0000 + VICTIM_BRANCH_OFFSET;
    let real_target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
    assert_ne!(
        naive_target & (profile.pht_size as u64 - 1),
        real_target & (profile.pht_size as u64 - 1),
        "seed chosen so the bases do not alias"
    );
    let secret = random_secret(100, 0x11);
    let mut workload = SecretBranchVictim::new(secret.clone());
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let reads: Vec<Outcome> = secret
        .iter()
        .map(|_| {
            attack.read_bit(&mut sys, spy, naive_target, |sys| {
                let mut cpu = sys.cpu(victim);
                workload.step(&mut cpu);
            })
        })
        .collect();
    assert!(reads.iter().all(|&o| o == Outcome::NotTaken));
}

#[test]
fn co_residency_is_required() {
    // Threat-model negative control (§3): on a two-core system with the
    // victim pinned to the other physical core, the spy shares no BPU with
    // it and the attack reads nothing — only co-resident victims leak.
    let profile = MicroarchProfile::skylake();
    let mut sys = System::with_cores(profile.clone(), 0xC02E, 2);
    let victim_remote = sys.spawn_on("victim-remote", AslrPolicy::Disabled, 1);
    let spy = sys.spawn_on("spy", AslrPolicy::Disabled, 0);
    assert_ne!(sys.core_of(victim_remote), sys.core_of(spy));
    let target = sys.process(victim_remote).vaddr_of(VICTIM_BRANCH_OFFSET);

    let secret = random_secret(200, 0x99);
    let mut workload = SecretBranchVictim::new(secret.clone());
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let reads: Vec<Outcome> = secret
        .iter()
        .map(|_| {
            attack.read_bit(&mut sys, spy, target, |sys| {
                let mut cpu = sys.cpu(victim_remote);
                workload.step(&mut cpu);
            })
        })
        .collect();
    assert!(
        reads.iter().all(|&o| o == Outcome::NotTaken),
        "a cross-core victim must leave the spy's primed entries untouched"
    );

    // …and the same victim moved onto the spy's core leaks immediately.
    let victim_local = sys.spawn_on("victim-local", AslrPolicy::Disabled, 0);
    let target = sys.process(victim_local).vaddr_of(VICTIM_BRANCH_OFFSET);
    let read = attack.read_bit(&mut sys, spy, target, |sys| {
        sys.cpu(victim_local).branch_at(VICTIM_BRANCH_OFFSET, Outcome::Taken);
    });
    assert_eq!(read, Outcome::Taken);
}

#[test]
fn attack_degrades_gracefully_under_preemption() {
    // Failure injection: a third process preempts the spy *between its
    // prime and probe* every round, executing a burst of its own branches.
    // Rounds whose burst misses the target entry still read correctly, so
    // the attack degrades gracefully instead of collapsing.
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x9E9);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let intruder = sys.spawn("intruder", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let secret = random_secret(600, 0x17);
    let mut workload = SecretBranchVictim::new(secret.clone());
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
    let mut errors = 0usize;
    for (i, &bit) in secret.iter().enumerate() {
        let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
            {
                let mut cpu = sys.cpu(victim);
                workload.step(&mut cpu);
            }
            // Preemption: 32 intruder branches at pseudo-random addresses.
            let mut cpu = sys.cpu(intruder);
            for k in 0..32u64 {
                let addr = 0x9000 + ((i as u64 * 131 + k * 17) % 0x8000);
                cpu.branch_at_abs(addr, Outcome::from_bool((i as u64 + k).is_multiple_of(3)));
            }
        });
        if SecretBranchVictim::bit_from_outcome(outcome) != bit {
            errors += 1;
        }
    }
    let rate = errors as f64 / secret.len() as f64;
    assert!(rate < 0.15, "preempted error rate {rate:.3} should stay below 15%");
    assert!(rate < 0.5, "and far from coin flipping");
}
