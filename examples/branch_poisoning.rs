//! Branch poisoning (paper §1): the write-side use of the same PHT
//! collisions — the attacker *steers* the victim's predictions instead of
//! reading them, the primitive behind Spectre-style mistraining.
//!
//! ```text
//! cargo run --release --example branch_poisoning
//! ```

use branchscope::attack::BranchPoisoner;
use branchscope::bpu::{MicroarchProfile, Outcome};
use branchscope::os::{AslrPolicy, System};

fn main() {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 1337);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(0x6d);

    // Unpoisoned baseline: the victim's always-taken bounds check is
    // predicted perfectly once trained.
    for _ in 0..4 {
        sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
    }
    let baseline: usize =
        (0..100).filter(|_| sys.cpu(victim).branch_at(0x6d, Outcome::Taken).mispredicted).count();
    println!("baseline mispredictions (100 executions): {baseline}");

    // Poisoned: before each victim execution the spy saturates the shared
    // PHT entry in the opposite direction.
    let mut poisoner = BranchPoisoner::new(target);
    let rate = poisoner.misprediction_rate(&mut sys, spy, victim, 0x6d, Outcome::Taken, 100);
    println!("poisoned misprediction rate: {:.0}%", rate * 100.0);
    println!("every mispredicted execution is a window of attacker-chosen speculation —");
    println!("the same collision primitive Spectre's branch poisoning relies on.");
}
