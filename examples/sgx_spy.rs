//! BranchScope against an SGX enclave (paper §9, Table 3): enclave memory
//! is inaccessible, but the enclave shares the core's BPU, and the
//! malicious OS single-steps it with APIC-style interrupts while
//! suppressing all other activity.
//!
//! ```text
//! cargo run --release --example sgx_spy
//! ```

use branchscope::attack::covert::{bits_to_bytes, bytes_to_bits, CovertChannel, EnclaveSender};
use branchscope::attack::AttackConfig;
use branchscope::bpu::MicroarchProfile;
use branchscope::os::{AslrPolicy, Enclave, EnclaveController, System};
use branchscope::uarch::NoiseConfig;

fn main() {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 99).with_noise(NoiseConfig::system_activity()).expect("valid noise preset");
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);

    // The enclave holds a secret the rest of the system cannot read…
    let secret_bytes = b"enclave secret";
    let secret_bits = bytes_to_bits(secret_bytes);
    let mut enclave =
        Enclave::launch(&mut sys, "sealed-enclave", EnclaveSender::new(secret_bits.clone()));
    assert!(enclave.read_memory(0x1000).is_err(), "SGX blocks direct reads");

    // …but the attacker controls the OS: it suppresses noise and
    // single-steps the enclave between BranchScope rounds.
    let controller = EnclaveController::new();
    controller.suppress_noise(&mut sys);

    let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile))
        .expect("canonical configuration is valid");
    let received =
        channel.receive_from_enclave(&mut sys, &mut enclave, &controller, receiver, secret_bits.len());

    let leaked = bits_to_bytes(&received.bits);
    println!("leaked from enclave: {:?}", String::from_utf8_lossy(&leaked));
    let score = received.score(&secret_bits);
    println!(
        "{} / {} bits correct ({:.3}% error)",
        secret_bits.len() - score.errors,
        secret_bits.len(),
        100.0 * score.error_rate
    );
}
