//! Evaluate every §10 defense against the live attack.
//!
//! ```text
//! cargo run --release --example mitigation_shootout
//! ```

use branchscope::bpu::MicroarchProfile;
use branchscope::mitigations::{evaluate, MeasurementFuzz, Mitigation};

fn main() {
    let profile = MicroarchProfile::skylake();
    let bits = 1_500;
    println!("BranchScope reading {bits} victim bits under each defense:\n");
    for mitigation in [
        Mitigation::None,
        Mitigation::RandomizedPht { rekey_interval: None },
        Mitigation::RandomizedPht { rekey_interval: Some(10_000) },
        Mitigation::PartitionedBpu { partitions: 2 },
        Mitigation::NoPredictSensitive,
        Mitigation::NoisyMeasurements(MeasurementFuzz::strong()),
        Mitigation::StochasticFsm { skip_probability: 0.5 },
        Mitigation::IfConversion,
    ] {
        println!("  {}", evaluate(&mitigation, &profile, bits, 0xD1FE));
    }
    println!("\n~0% error = channel wide open; ~50% = spy reduced to coin flipping.");
}
