//! Cross-process covert channel over the directional branch predictor
//! (paper §7, Table 2): a trojan process transmits a byte payload to a spy
//! through the shared PHT while ordinary system noise runs in background.
//!
//! ```text
//! cargo run --release --example covert_channel
//! ```

use branchscope::attack::covert::{bits_to_bytes, bytes_to_bits, CovertChannel};
use branchscope::attack::AttackConfig;
use branchscope::bpu::MicroarchProfile;
use branchscope::os::{AslrPolicy, System};
use branchscope::uarch::NoiseConfig;

fn main() {
    let payload = b"BranchScope: directional predictors leak.";
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 2024).with_noise(NoiseConfig::system_activity()).expect("valid noise preset");
    let sender = sys.spawn("trojan", AslrPolicy::Disabled);
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);

    let bits = bytes_to_bits(payload);
    println!(
        "transmitting {} bytes ({} bits) across processes on a noisy {} core…",
        payload.len(),
        bits.len(),
        profile.arch
    );

    let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile))
        .expect("canonical configuration is valid");
    let result = channel.transmit(&mut sys, sender, receiver, &bits);

    let received = bits_to_bytes(&result.received);
    println!("received: {:?}", String::from_utf8_lossy(&received));
    println!(
        "errors: {} / {} bits ({:.3}%), throughput {:.1} bits per million cycles",
        result.errors,
        bits.len(),
        100.0 * result.error_rate,
        result.bits_per_mcycle(),
    );
}
