//! Full key recovery from a Montgomery-ladder modular exponentiation
//! (paper §9.2): the ladder balances its *work* across key bits — defeating
//! classic timing attacks — but still branches on each bit, and BranchScope
//! reads those branches directly.
//!
//! ```text
//! cargo run --release --example montgomery_key_recovery
//! ```

use branchscope::attack::{AttackConfig, BranchScope};
use branchscope::bpu::MicroarchProfile;
use branchscope::os::{AslrPolicy, System, Workload};
use branchscope::uarch::NoiseConfig;
use branchscope::victims::{mod_exp, MontgomeryLadder, VICTIM_BRANCH_OFFSET};

fn main() {
    let profile = MicroarchProfile::haswell();
    let mut sys = System::new(profile.clone(), 7).with_noise(NoiseConfig::isolated_core()).expect("valid noise preset");
    let victim = sys.spawn("crypto-victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let key: u64 = 0xC0FF_EE00_DEAD_BEEF;
    let modulus: u64 = 0xFFFF_FFFF_FFC5;
    let mut ladder = MontgomeryLadder::new(0x1_0001, key, modulus);
    println!("victim computes base^key mod m with a {}-bit secret key", ladder.key_bits());

    let mut attack =
        BranchScope::new(AttackConfig::for_profile(&profile)).expect("valid configuration");
    let reads = attack.read_bits(&mut sys, spy, target, ladder.key_bits(), |sys, _| {
        // The slowed-down victim advances exactly one ladder step (one key
        // bit) per attack round.
        let mut cpu = sys.cpu(victim);
        ladder.step(&mut cpu);
    });

    let recovered = MontgomeryLadder::key_from_outcomes(&reads);
    println!("secret key   : {key:#018x}");
    println!("recovered key: {recovered:#018x}");
    println!("bit errors   : {}", (key ^ recovered).count_ones());

    // The victim's computation itself is untouched by the attack.
    assert_eq!(ladder.result(), Some(mod_exp(0x1_0001, key, modulus)));
    println!("victim's exponentiation result verified against square-and-multiply");
}
