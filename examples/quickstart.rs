//! Quickstart: read one secret branch direction with BranchScope.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use branchscope::attack::{AttackConfig, BranchScope};
use branchscope::bpu::{MicroarchProfile, Outcome};
use branchscope::os::{AslrPolicy, System};

fn main() {
    // A Skylake-like machine with a victim and a spy sharing its core.
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 42);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);

    // The spy knows the victim binary, so it knows the code offset of the
    // secret-dependent branch (paper Listing 2: <victim_f+0x6d>).
    let target = sys.process(victim).vaddr_of(0x6d);
    println!("attacking victim branch at {target:#x} on {}", profile.arch);

    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))
        .expect("canonical SN/TT configuration is valid");

    for secret in [Outcome::Taken, Outcome::NotTaken, Outcome::Taken, Outcome::Taken] {
        // Stage 1 (prime) and stage 3 (probe) happen inside read_bit;
        // stage 2 is the trigger closure, which makes the slowed-down
        // victim execute its branch exactly once.
        let read = attack.read_bit(&mut sys, spy, target, |sys| {
            sys.cpu(victim).branch_at(0x6d, secret);
        });
        println!("victim executed {secret:<9} -> spy decoded {read}");
        assert_eq!(read, secret);
    }
    println!("all bits recovered correctly");
}
