//! End-to-end attack against a victim expressed as *machine code*: the
//! paper's Listing 2 assembled with byte-accurate layout (the secret `je`
//! at offset 0x6d), stepped by the slowed-down scheduler, read by
//! BranchScope.
//!
//! ```text
//! cargo run --release --example machine_code_victim
//! ```

use branchscope::attack::{AttackConfig, BranchScope};
use branchscope::bpu::MicroarchProfile;
use branchscope::isa::{programs, Interpreter};
use branchscope::os::{AslrPolicy, System, Workload};

fn main() {
    let secret = [true, false, true, true, false, false, true, false];
    let program = programs::secret_branch_victim(&secret);
    println!(
        "assembled Listing 2: {} instructions, {} code bytes, conditional branches at {:?}",
        program.len(),
        program.code_bytes(),
        program
            .conditional_branch_offsets()
            .iter()
            .map(|o| format!("{o:#x}"))
            .collect::<Vec<_>>(),
    );

    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), 0x15A);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(programs::LISTING2_BRANCH_OFFSET);

    let mut interp = Interpreter::new(program);
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();

    let mut recovered = Vec::new();
    for _ in 0..secret.len() {
        // Each trigger advances the victim by one conditional branch; the
        // loop's own back-edge branch sits at a different offset, so the
        // spy skips it by stepping twice per secret bit.
        let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
            let mut cpu = sys.cpu(victim);
            interp.step(&mut cpu); // the secret je at 0x6d
            interp.step(&mut cpu); // the loop back-edge
        });
        // je is taken when the tested value is zero.
        recovered.push(!outcome.is_taken());
    }

    println!("secret   : {secret:?}");
    println!("recovered: {recovered:?}");
    let errors = secret.iter().zip(&recovered).filter(|(a, b)| a != b).count();
    println!("{errors} bit errors");
    assert_eq!(errors, 0);
}
