//! Reverse engineering the PHT from user space (paper §6.3, Fig. 5):
//! decode the state behind a range of addresses, then find the table size
//! as the window at which the state vector repeats (Eqs. 1–4).
//!
//! ```text
//! cargo run --release --example pht_reverse_engineering
//! ```

use branchscope::attack::reverse::{candidate_windows, discover_pht_size, scan_states};
use branchscope::attack::RandomizationBlock;
use branchscope::bpu::MicroarchProfile;
use branchscope::os::{AslrPolicy, System};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = MicroarchProfile::skylake();
    let true_size = profile.pht_size;
    let mut sys = System::new(profile.clone(), 4096);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);

    // One fixed randomization block, replayed to restore the same PHT image
    // before every wrap of the scan.
    let block = RandomizationBlock::generate(17, true_size * 14, 0x70_0000);
    println!("scanning {} addresses…", 4 * true_size);
    let states = scan_states(&mut sys, spy, &block, 0x30_0000, 4 * true_size);

    let windows = candidate_windows(states.len(), true_size, 40);
    let mut rng = StdRng::seed_from_u64(5);
    let discovery = discover_pht_size(&states, &windows, 100, &mut rng);

    println!("H(w)/w for power-of-two windows:");
    for &(w, r) in discovery.ratios.iter().filter(|(w, _)| w.is_power_of_two()) {
        println!("  w = {w:>6}: {r:.4}");
    }
    println!("inferred PHT size: {} entries (machine truth: {true_size})", discovery.inferred_size);
    assert_eq!(discovery.inferred_size, true_size);
}
