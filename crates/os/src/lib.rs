//! Operating-system model for the BranchScope reproduction.
//!
//! The paper's threat model (§3) needs three things from the system layer:
//!
//! 1. **Co-residency** — victim and spy share a physical core and therefore
//!    a BPU. [`System`] owns one [`SimCore`](bscope_uarch::SimCore) and hands
//!    out per-process [`CpuView`]s onto it.
//! 2. **Victim slowdown** — the spy must interleave prime → one victim
//!    branch → probe. [`SlowdownScheduler`] models the Gullasch-style
//!    scheduler abuse the paper cites; SGX attackers get exact
//!    single-stepping via [`EnclaveController`].
//! 3. **Triggering victim execution** — workloads implement [`Workload`]
//!    and are stepped explicitly by the scheduler or controller.
//!
//! It also models the paper's two measurement environments: a noisy
//! multi-tasking system (SMT sibling activity, Tables 2) and an
//! attacker-controlled OS attacking an SGX enclave where the noise can be
//! suppressed (§9, Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod process;
mod sched;
mod sgx;
mod system;

pub use process::{AslrPolicy, Pid, Process, Workload};
pub use sched::{ScheduleTrace, SlowdownScheduler};
pub use sgx::{Enclave, EnclaveController, SgxError};
pub use system::{CpuView, SharedSystem, System};
