//! SGX enclave model with an attacker-controlled operating system.

use crate::process::{AslrPolicy, Pid, Workload};
use crate::system::System;
use std::error::Error;
use std::fmt;

/// Errors from interacting with an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgxError {
    /// Direct access to enclave memory was attempted from outside.
    ProtectedMemory,
    /// The enclave program already ran to completion.
    Finished,
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SgxError::ProtectedMemory => "enclave memory is protected from outside access",
            SgxError::Finished => "enclave program has finished",
        })
    }
}

impl Error for SgxError {}

/// An SGX-style enclave: a program whose memory the rest of the system
/// cannot read, running co-resident on the shared core.
///
/// SGX protects enclave *memory* (§9.1) but "many CPU hardware resources
/// still remain shared between enclave and non-enclave code" — including
/// the BPU, which is exactly what BranchScope exploits. The enclave's
/// secret lives inside the `Workload`; the only architectural output the
/// outside world gets is [`SgxError::ProtectedMemory`].
#[derive(Debug)]
pub struct Enclave<W> {
    pid: Pid,
    program: W,
    steps_executed: usize,
    finished: bool,
}

impl<W: Workload> Enclave<W> {
    /// Launches `program` inside a new enclave on `sys`.
    pub fn launch(sys: &mut System, name: &str, program: W) -> Self {
        let pid = sys.spawn(name, AslrPolicy::Disabled);
        Enclave { pid, program, steps_executed: 0, finished: false }
    }

    /// The process id backing this enclave.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Whether the enclave program has run to completion.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Total steps executed so far.
    #[must_use]
    pub fn steps_executed(&self) -> usize {
        self.steps_executed
    }

    /// Attempting to read enclave memory from outside always fails — the
    /// access-control guarantee that makes the *microarchitectural* channel
    /// the only way in.
    ///
    /// # Errors
    ///
    /// Always returns [`SgxError::ProtectedMemory`].
    pub fn read_memory(&self, _addr: u64) -> Result<u8, SgxError> {
        Err(SgxError::ProtectedMemory)
    }

    fn step(&mut self, sys: &mut System) -> bool {
        if self.finished {
            return false;
        }
        let mut cpu = sys.cpu(self.pid);
        let more = self.program.step(&mut cpu);
        self.steps_executed += 1;
        self.finished = !more;
        more
    }
}

/// The malicious operating system of the SGX threat model (§9.2).
///
/// "The control over the OS gives the attacker unique capabilities":
/// configure the APIC so the enclave is interrupted after a chosen number
/// of instructions (precise single-stepping, as in branch-shadowing
/// attacks), and suppress all other activity on the core ("SGX isolated"
/// rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveController {
    interrupt_interval: usize,
}

impl EnclaveController {
    /// A controller interrupting the enclave after every step — the
    /// high-resolution configuration the attack uses.
    #[must_use]
    pub fn new() -> Self {
        EnclaveController { interrupt_interval: 1 }
    }

    /// Configures the APIC-style timer to interrupt after `steps` enclave
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn set_interrupt_interval(&mut self, steps: usize) {
        assert!(steps > 0, "interrupt interval must be at least one step");
        self.interrupt_interval = steps;
    }

    /// Current interrupt interval.
    #[must_use]
    pub fn interrupt_interval(&self) -> usize {
        self.interrupt_interval
    }

    /// Resumes the enclave until the next interrupt (or completion).
    /// Returns the number of steps that actually ran.
    pub fn resume<W: Workload>(&self, sys: &mut System, enclave: &mut Enclave<W>) -> usize {
        let mut steps = 0;
        while steps < self.interrupt_interval && !enclave.finished {
            enclave.step(sys);
            steps += 1;
        }
        steps
    }

    /// The attacker-controlled OS prevents other processes from running —
    /// removing the noise source entirely (Table 3, "SGX isolated").
    pub fn suppress_noise(&self, sys: &mut System) {
        sys.set_noise(None).expect("disabling noise is always valid");
    }
}

impl Default for EnclaveController {
    fn default() -> Self {
        EnclaveController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::CpuView;
    use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
    use bscope_uarch::NoiseConfig;

    struct SecretSender {
        bits: Vec<bool>,
        next: usize,
    }

    impl Workload for SecretSender {
        fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
            if self.next >= self.bits.len() {
                return false;
            }
            cpu.branch_at(0x6d, Outcome::from_bool(self.bits[self.next]));
            self.next += 1;
            self.next < self.bits.len()
        }
    }

    #[test]
    fn memory_is_protected() {
        let mut sys = System::new(MicroarchProfile::skylake(), 1);
        let enclave = Enclave::launch(&mut sys, "enclave", SecretSender {
            bits: vec![true],
            next: 0,
        });
        assert_eq!(enclave.read_memory(0x1000), Err(SgxError::ProtectedMemory));
    }

    #[test]
    fn controller_single_steps_enclave() {
        let mut sys = System::new(MicroarchProfile::skylake(), 2);
        let mut enclave = Enclave::launch(&mut sys, "enclave", SecretSender {
            bits: vec![true, false, true],
            next: 0,
        });
        let ctrl = EnclaveController::new();
        assert_eq!(ctrl.resume(&mut sys, &mut enclave), 1);
        assert_eq!(enclave.steps_executed(), 1);
        assert!(!enclave.finished());
    }

    #[test]
    fn enclave_branches_leak_into_shared_bpu() {
        // The whole point: enclave executes secret-dependent branches, and
        // their effect is visible in the shared PHT from outside.
        let mut sys = System::new(MicroarchProfile::skylake(), 3);
        let mut enclave = Enclave::launch(&mut sys, "enclave", SecretSender {
            bits: vec![true, true, true],
            next: 0,
        });
        let ctrl = EnclaveController::new();
        while !enclave.finished() {
            if ctrl.resume(&mut sys, &mut enclave) == 0 {
                break;
            }
        }
        let addr = sys.process(enclave.pid()).vaddr_of(0x6d);
        assert_eq!(sys.core().bpu().pht_state(addr), PhtState::StronglyTaken);
    }

    #[test]
    fn suppress_noise_silences_background() {
        let mut sys =
            System::new(MicroarchProfile::skylake(), 4).with_noise(NoiseConfig::heavy()).unwrap();
        let p = sys.spawn("spy", AslrPolicy::Disabled);
        EnclaveController::new().suppress_noise(&mut sys);
        let before = sys.core().bpu().stats().branches;
        for i in 0..100 {
            sys.cpu(p).branch_at(i * 3, Outcome::Taken);
        }
        let executed = sys.core().bpu().stats().branches - before;
        assert_eq!(executed, 100, "no noise branches once suppressed");
    }

    #[test]
    fn interval_validation() {
        let mut ctrl = EnclaveController::new();
        ctrl.set_interrupt_interval(5);
        assert_eq!(ctrl.interrupt_interval(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_interval_rejected() {
        EnclaveController::new().set_interrupt_interval(0);
    }

    #[test]
    fn resume_on_finished_enclave_is_zero() {
        let mut sys = System::new(MicroarchProfile::skylake(), 5);
        let mut enclave =
            Enclave::launch(&mut sys, "enclave", SecretSender { bits: vec![true], next: 0 });
        let ctrl = EnclaveController::new();
        assert_eq!(ctrl.resume(&mut sys, &mut enclave), 1, "the last step is counted");
        assert!(enclave.finished());
        assert_eq!(ctrl.resume(&mut sys, &mut enclave), 0);
    }
}
