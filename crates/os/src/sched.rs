//! Victim-slowdown scheduling.

use crate::process::{Pid, Workload};
use crate::system::System;

/// Summary of one scheduled attack interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Attack rounds (prime → victim slice → probe) executed.
    pub rounds: usize,
    /// Total victim steps granted across all rounds.
    pub victim_steps: usize,
}

/// Models the victim-slowdown scheduling the paper assumes (§3, §7): the
/// spy arranges — e.g. by abusing the Linux scheduler as in Gullasch et al.
/// or by a performance-degradation attack — that the victim advances only a
/// small, fixed number of steps between two spy turns.
///
/// One call to [`SlowdownScheduler::round`] is one attack iteration:
/// the spy's *pre* closure runs (stage 1, prime), the victim is granted its
/// slice (stage 2, typically exactly one secret branch), and the spy's
/// *post* closure runs (stage 3, probe).
///
/// ```
/// use bscope_bpu::{MicroarchProfile, Outcome};
/// use bscope_os::{AslrPolicy, CpuView, SlowdownScheduler, System, Workload};
///
/// struct OneBranch;
/// impl Workload for OneBranch {
///     fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
///         cpu.branch_at(0x6d, Outcome::Taken);
///         true
///     }
/// }
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 9);
/// let victim = sys.spawn("victim", AslrPolicy::Disabled);
/// let sched = SlowdownScheduler::single_step();
/// let mut w = OneBranch;
/// let trace = sched.round(&mut sys, victim, &mut w, |_| {}, |_| {});
/// assert_eq!(trace.victim_steps, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowdownScheduler {
    victim_steps_per_slice: usize,
}

impl SlowdownScheduler {
    /// Scheduler granting the victim `steps` workload steps per slice.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn new(steps: usize) -> Self {
        assert!(steps > 0, "a schedule slice must grant at least one step");
        SlowdownScheduler { victim_steps_per_slice: steps }
    }

    /// The high-resolution setting: exactly one victim step per slice —
    /// "allow it to execute a single branch instruction during the context
    /// switch" (§7).
    #[must_use]
    pub fn single_step() -> Self {
        SlowdownScheduler::new(1)
    }

    /// Steps granted per slice.
    #[must_use]
    pub fn steps_per_slice(&self) -> usize {
        self.victim_steps_per_slice
    }

    /// Runs one attack round. Returns the trace for this round.
    pub fn round<W: Workload>(
        &self,
        sys: &mut System,
        victim: Pid,
        workload: &mut W,
        pre: impl FnOnce(&mut System),
        post: impl FnOnce(&mut System),
    ) -> ScheduleTrace {
        pre(sys);
        let mut cpu = sys.cpu(victim);
        let steps = workload.run(&mut cpu, self.victim_steps_per_slice);
        post(sys);
        ScheduleTrace { rounds: 1, victim_steps: steps }
    }

    /// Runs rounds until the workload completes or `max_rounds` is reached,
    /// invoking `pre`/`post` around every victim slice.
    pub fn run<W: Workload>(
        &self,
        sys: &mut System,
        victim: Pid,
        workload: &mut W,
        max_rounds: usize,
        mut pre: impl FnMut(&mut System),
        mut post: impl FnMut(&mut System),
    ) -> ScheduleTrace {
        let mut trace = ScheduleTrace::default();
        for _ in 0..max_rounds {
            let round = self.round(sys, victim, workload, &mut pre, &mut post);
            trace.rounds += round.rounds;
            trace.victim_steps += round.victim_steps;
            if round.victim_steps < self.victim_steps_per_slice {
                break; // workload finished mid-slice
            }
        }
        trace
    }
}

impl Default for SlowdownScheduler {
    fn default() -> Self {
        SlowdownScheduler::single_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::AslrPolicy;
    use crate::system::CpuView;
    use bscope_bpu::{MicroarchProfile, Outcome};

    struct CountedBranches {
        remaining: usize,
    }

    impl Workload for CountedBranches {
        fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
            if self.remaining == 0 {
                return false;
            }
            self.remaining -= 1;
            cpu.branch_at(0x100, Outcome::Taken);
            self.remaining > 0
        }
    }

    #[test]
    fn round_interleaves_pre_victim_post() {
        let mut sys = System::new(MicroarchProfile::haswell(), 7);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let mut w = CountedBranches { remaining: 10 };
        let order = std::cell::RefCell::new(Vec::new());
        SlowdownScheduler::single_step().round(
            &mut sys,
            victim,
            &mut w,
            |_| order.borrow_mut().push("pre"),
            |_| order.borrow_mut().push("post"),
        );
        assert_eq!(*order.borrow(), ["pre", "post"]);
        let _ = spy;
        assert_eq!(w.remaining, 9, "exactly one victim step granted");
    }

    #[test]
    fn run_stops_when_workload_finishes() {
        let mut sys = System::new(MicroarchProfile::haswell(), 8);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let mut w = CountedBranches { remaining: 3 };
        let trace = SlowdownScheduler::new(2).run(&mut sys, victim, &mut w, 100, |_| {}, |_| {});
        assert_eq!(trace.victim_steps, 3);
        assert_eq!(trace.rounds, 2, "3 steps at 2 per slice = 2 rounds");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_step_slice_is_rejected() {
        let _ = SlowdownScheduler::new(0);
    }
}
