//! The system: one shared core plus a process table.

use crate::process::{AslrPolicy, Pid, Process};
use bscope_bpu::{BackendKind, MicroarchProfile, Outcome, VirtAddr};
use bscope_uarch::{BranchEvent, NoiseConfig, PerfCounters, SimCore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

/// A single-core system hosting co-resident processes.
///
/// All processes share the core's BPU (the virtual-core sharing of the
/// paper's threat model); each gets its own hardware context for
/// performance counters and its own address-space base.
///
/// ```
/// use bscope_bpu::{MicroarchProfile, Outcome};
/// use bscope_os::{AslrPolicy, System};
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 42);
/// let victim = sys.spawn("victim", AslrPolicy::Disabled);
/// let spy = sys.spawn("spy", AslrPolicy::Disabled);
/// // Same offset in both processes maps to the same virtual address —
/// // the collision placement from the paper's §7.
/// assert_eq!(sys.process(victim).vaddr_of(0x6d), sys.process(spy).vaddr_of(0x6d));
/// sys.cpu(spy).branch_at(0x6d, Outcome::Taken);
/// ```
#[derive(Debug)]
pub struct System {
    cores: Vec<SimCore>,
    processes: Vec<Process>,
    core_of: Vec<usize>,
    rng: StdRng,
}

impl System {
    /// Creates a single-core system of the given microarchitecture — the
    /// co-resident setting of the paper's threat model (§3) — on the
    /// paper's hybrid predictor.
    #[must_use]
    pub fn new(profile: MicroarchProfile, seed: u64) -> Self {
        System::with_cores(profile, seed, 1)
    }

    /// Creates a single-core system on an explicit predictor backend;
    /// [`System::new`] is the [`BackendKind::Hybrid`] special case.
    #[must_use]
    pub fn with_backend(profile: MicroarchProfile, backend: BackendKind, seed: u64) -> Self {
        System::with_cores_backend(profile, backend, seed, 1)
    }

    /// Creates a system with `cores` physical cores, each with its own
    /// (unshared) branch prediction unit. Processes on different cores
    /// share *nothing* the attack can use — the negative control for the
    /// threat model's co-residency requirement.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn with_cores(profile: MicroarchProfile, seed: u64, cores: usize) -> Self {
        System::with_cores_backend(profile, BackendKind::Hybrid, seed, cores)
    }

    /// Creates a multi-core system where every core's BPU is built on the
    /// given predictor backend.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn with_cores_backend(
        profile: MicroarchProfile,
        backend: BackendKind,
        seed: u64,
        cores: usize,
    ) -> Self {
        assert!(cores > 0, "a system needs at least one core");
        System {
            cores: (0..cores)
                .map(|i| {
                    SimCore::with_backend(
                        backend.build(profile.clone()),
                        seed.wrapping_add(i as u64 * 0x9E37),
                    )
                })
                .collect(),
            processes: Vec::new(),
            core_of: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x5353_5353),
        }
    }

    /// Number of physical cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Enables or disables background noise on every core.
    ///
    /// # Errors
    ///
    /// Returns the [`bscope_uarch::ConfigError`] from
    /// [`NoiseConfig::validate`]; no core's configuration is changed.
    pub fn set_noise(&mut self, noise: Option<NoiseConfig>) -> Result<(), bscope_uarch::ConfigError> {
        if let Some(cfg) = &noise {
            cfg.validate()?;
        }
        for core in &mut self.cores {
            core.set_noise(noise.clone()).expect("validated above");
        }
        Ok(())
    }

    /// Builder-style noise configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`bscope_uarch::ConfigError`] from
    /// [`NoiseConfig::validate`].
    pub fn with_noise(mut self, noise: NoiseConfig) -> Result<Self, bscope_uarch::ConfigError> {
        self.set_noise(Some(noise))?;
        Ok(self)
    }

    /// Installs a hardware mitigation policy on the primary core (§10.2).
    pub fn set_policy(&mut self, policy: Box<dyn bscope_uarch::BpuPolicy>) {
        self.cores[0].set_policy(policy);
    }

    /// Installs or removes measurement-channel fuzzing on every core
    /// (§10.2).
    ///
    /// # Errors
    ///
    /// Returns the [`bscope_uarch::ConfigError`] from
    /// [`bscope_uarch::MeasurementFuzz::validate`]; no core's
    /// configuration is changed.
    pub fn set_measurement_fuzz(
        &mut self,
        fuzz: Option<bscope_uarch::MeasurementFuzz>,
    ) -> Result<(), bscope_uarch::ConfigError> {
        if let Some(f) = &fuzz {
            f.validate()?;
        }
        for core in &mut self.cores {
            core.set_measurement_fuzz(fuzz).expect("validated above");
        }
        Ok(())
    }

    /// Spawns a process on core 0 and returns its pid.
    pub fn spawn(&mut self, name: &str, aslr: AslrPolicy) -> Pid {
        self.spawn_on(name, aslr, 0)
    }

    /// Spawns a process pinned to a specific physical core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn spawn_on(&mut self, name: &str, aslr: AslrPolicy, core: usize) -> Pid {
        assert!(core < self.cores.len(), "core {core} out of range");
        let pid = Pid(self.processes.len() as u32);
        let ctx = pid.0; // one hardware context per process in this model
        self.processes.push(Process::new(pid, ctx, name, aslr, &mut self.rng));
        self.core_of.push(core);
        pid
    }

    /// The physical core a process is pinned to.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned by this system.
    #[must_use]
    pub fn core_of(&self, pid: Pid) -> usize {
        self.core_of[pid.0 as usize]
    }

    /// Process metadata.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned by this system.
    #[must_use]
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[pid.0 as usize]
    }

    /// Number of spawned processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// A CPU view for `pid`: the handle through which the process executes
    /// branches on the shared core.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned by this system.
    pub fn cpu(&mut self, pid: Pid) -> CpuView<'_> {
        let proc = &self.processes[pid.0 as usize];
        let core_idx = self.core_of[pid.0 as usize];
        CpuView { core: &mut self.cores[core_idx], proc }
    }

    /// Direct access to the primary core (core 0) — the shared core of the
    /// single-core attack setting.
    #[must_use]
    pub fn core(&self) -> &SimCore {
        &self.cores[0]
    }

    /// Exclusive access to the primary core.
    #[must_use]
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.cores[0]
    }

    /// Read access to a specific core.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn core_at(&self, index: usize) -> &SimCore {
        &self.cores[index]
    }
}

/// A process's handle onto the shared core.
///
/// Mirrors what user-space code can actually do on the paper's machines:
/// execute its own branches (at process-relative offsets or absolute
/// addresses), read the timestamp counter, and read its own performance
/// counters. It cannot touch other processes' memory — that is the secret
/// the attack must infer through the BPU.
#[derive(Debug)]
pub struct CpuView<'a> {
    core: &'a mut SimCore,
    proc: &'a Process,
}

impl CpuView<'_> {
    /// The owning process's metadata.
    #[must_use]
    pub fn process(&self) -> &Process {
        self.proc
    }

    /// Virtual address of the code at `offset` in this process.
    #[must_use]
    pub fn vaddr_of(&self, offset: u64) -> VirtAddr {
        self.proc.vaddr_of(offset)
    }

    /// Executes a conditional branch at a code-segment offset.
    pub fn branch_at(&mut self, offset: u64, outcome: Outcome) -> BranchEvent {
        let addr = self.proc.vaddr_of(offset);
        self.core.execute_branch_in(self.proc.ctx(), addr, outcome, None)
    }

    /// Executes a conditional branch at an absolute virtual address —
    /// the spy uses this after placing its code to collide with the victim.
    pub fn branch_at_abs(&mut self, addr: VirtAddr, outcome: Outcome) -> BranchEvent {
        self.core.execute_branch_in(self.proc.ctx(), addr, outcome, None)
    }

    /// Reads the timestamp counter (`rdtscp`).
    #[must_use]
    pub fn rdtscp(&self) -> u64 {
        self.core.rdtscp()
    }

    /// The microarchitecture this process runs on — public knowledge the
    /// attacker uses to size its priming code (`/proc/cpuinfo` equivalent).
    #[must_use]
    pub fn profile(&self) -> &bscope_bpu::MicroarchProfile {
        self.core.profile()
    }

    /// Reads this process's performance counters.
    #[must_use]
    pub fn counters(&self) -> PerfCounters {
        self.core.counters(self.proc.ctx())
    }

    /// Spends `cycles` cycles of non-branch work.
    pub fn work(&mut self, cycles: u64) {
        self.core.advance_cycles(cycles);
    }

    /// Escape hatch to the core for attack tooling that documents its own
    /// realism constraints (e.g. the stability experiment's ground-truth
    /// checks in tests).
    #[must_use]
    pub fn core_mut(&mut self) -> &mut SimCore {
        self.core
    }
}

/// A [`System`] behind an `Arc<Mutex<_>>` so covert-channel endpoints in
/// different threads (sender/receiver tests, parallel harnesses) can share
/// one machine.
#[derive(Debug, Clone)]
pub struct SharedSystem(Arc<Mutex<System>>);

impl SharedSystem {
    /// Wraps a system for shared access.
    #[must_use]
    pub fn new(system: System) -> Self {
        SharedSystem(Arc::new(Mutex::new(system)))
    }

    /// Runs `f` with exclusive access to the system.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    pub fn with<T>(&self, f: impl FnOnce(&mut System) -> T) -> T {
        f(&mut self.0.lock().expect("system lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::PhtState;

    #[test]
    fn processes_get_distinct_contexts() {
        let mut sys = System::new(MicroarchProfile::haswell(), 1);
        let a = sys.spawn("a", AslrPolicy::Disabled);
        let b = sys.spawn("b", AslrPolicy::Disabled);
        assert_ne!(sys.process(a).ctx(), sys.process(b).ctx());
        assert_eq!(sys.process_count(), 2);
    }

    #[test]
    fn counters_are_isolated_between_processes() {
        let mut sys = System::new(MicroarchProfile::haswell(), 2);
        let a = sys.spawn("a", AslrPolicy::Disabled);
        let b = sys.spawn("b", AslrPolicy::Disabled);
        sys.cpu(a).branch_at(0x10, Outcome::Taken);
        sys.cpu(a).branch_at(0x10, Outcome::Taken);
        sys.cpu(b).branch_at(0x10, Outcome::Taken);
        assert_eq!(sys.cpu(a).counters().branches_retired, 2);
        assert_eq!(sys.cpu(b).counters().branches_retired, 1);
    }

    #[test]
    fn same_offset_same_entry_across_processes() {
        // The collision that carries the whole attack: both processes place
        // a branch at the same virtual address (same offset, no ASLR) and
        // hit the same bimodal PHT entry.
        let mut sys = System::new(MicroarchProfile::haswell(), 3);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        for _ in 0..3 {
            sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
        }
        let spy_addr = sys.process(spy).vaddr_of(0x6d);
        assert_eq!(sys.core().bpu().pht_state(spy_addr), PhtState::StronglyTaken);
    }

    #[test]
    fn aslr_breaks_trivial_collisions() {
        let mut sys = System::new(MicroarchProfile::haswell(), 4);
        let victim = sys.spawn("victim", AslrPolicy::Randomized);
        let spy = sys.spawn("spy", AslrPolicy::Randomized);
        assert_ne!(
            sys.process(victim).vaddr_of(0x6d),
            sys.process(spy).vaddr_of(0x6d),
        );
    }

    #[test]
    fn shared_system_round_trips() {
        let sys = SharedSystem::new(System::new(MicroarchProfile::skylake(), 5));
        let pid = sys.with(|s| s.spawn("p", AslrPolicy::Disabled));
        let retired = sys.with(|s| {
            s.cpu(pid).branch_at(0, Outcome::Taken);
            s.cpu(pid).counters().branches_retired
        });
        assert_eq!(retired, 1);
    }

    #[test]
    fn work_advances_clock() {
        let mut sys = System::new(MicroarchProfile::skylake(), 6);
        let p = sys.spawn("p", AslrPolicy::Disabled);
        let t0 = sys.cpu(p).rdtscp();
        sys.cpu(p).work(1_000);
        assert_eq!(sys.cpu(p).rdtscp(), t0 + 1_000);
    }
}
