//! Processes and address-space layout.

use crate::system::CpuView;
use bscope_bpu::VirtAddr;
use bscope_uarch::ContextId;
use rand::Rng;
use std::fmt;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// How a process's code segment base is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AslrPolicy {
    /// Code is loaded at the fixed conventional base (`0x40_0000`), so
    /// branch virtual addresses are known to everyone — the paper's default
    /// assumption ("the virtual addresses of victim's code are typically
    /// not a secret", §4).
    Disabled,
    /// Code base is randomized; the spy must derandomize it first (the §9
    /// "ASLR value recovery" application).
    Randomized,
}

/// A process: a context id on the shared core plus an address-space layout.
///
/// Only the code segment matters to the BPU, so the layout is simply a base
/// address that offsets every branch the process executes.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    ctx: ContextId,
    code_base: VirtAddr,
    name: String,
}

/// Conventional non-ASLR executable base.
pub(crate) const DEFAULT_CODE_BASE: VirtAddr = 0x40_0000;

/// ASLR entropy: bases are drawn from `DEFAULT_CODE_BASE + [0, 2^28)`,
/// page (4 KiB) aligned — comparable to Linux mmap entropy for PIEs.
pub(crate) const ASLR_SPAN: u64 = 1 << 28;

impl Process {
    pub(crate) fn new<R: Rng + ?Sized>(
        pid: Pid,
        ctx: ContextId,
        name: &str,
        policy: AslrPolicy,
        rng: &mut R,
    ) -> Self {
        let code_base = match policy {
            AslrPolicy::Disabled => DEFAULT_CODE_BASE,
            AslrPolicy::Randomized => {
                DEFAULT_CODE_BASE + (rng.gen_range(0..ASLR_SPAN) & !0xfff)
            }
        };
        Process { pid, ctx, code_base, name: name.to_owned() }
    }

    /// The process identifier.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The hardware context this process runs in.
    #[must_use]
    pub fn ctx(&self) -> ContextId {
        self.ctx
    }

    /// Base virtual address of the code segment.
    #[must_use]
    pub fn code_base(&self) -> VirtAddr {
        self.code_base
    }

    /// Human-readable name (diagnostics only).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Virtual address of the instruction at `offset` into the code segment.
    #[must_use]
    pub fn vaddr_of(&self, offset: u64) -> VirtAddr {
        self.code_base + offset
    }
}

/// A program that can be executed one step at a time on a [`CpuView`].
///
/// One *step* is the unit the attacker's slowdown gives the victim: in the
/// paper's high-resolution attack, a single secret-dependent branch plus its
/// surrounding non-branch work. Victims, covert-channel senders and noise
/// generators all implement this.
pub trait Workload {
    /// Executes the next step. Returns `false` when the workload finished.
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool;

    /// Steps until completion or `max_steps`, whichever comes first.
    /// Returns the number of steps executed.
    fn run(&mut self, cpu: &mut CpuView<'_>, max_steps: usize) -> usize {
        let mut n = 0;
        while n < max_steps {
            n += 1;
            if !self.step(cpu) {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_aslr_uses_fixed_base() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Process::new(Pid(1), 0, "victim", AslrPolicy::Disabled, &mut rng);
        assert_eq!(p.code_base(), DEFAULT_CODE_BASE);
        assert_eq!(p.vaddr_of(0x6d), DEFAULT_CODE_BASE + 0x6d);
    }

    #[test]
    fn aslr_bases_are_page_aligned_and_in_span() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let p = Process::new(Pid(i), 0, "v", AslrPolicy::Randomized, &mut rng);
            assert_eq!(p.code_base() & 0xfff, 0, "page aligned");
            assert!(p.code_base() >= DEFAULT_CODE_BASE);
            assert!(p.code_base() < DEFAULT_CODE_BASE + ASLR_SPAN);
        }
    }

    #[test]
    fn aslr_bases_differ_between_processes() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Process::new(Pid(1), 0, "a", AslrPolicy::Randomized, &mut rng);
        let b = Process::new(Pid(2), 1, "b", AslrPolicy::Randomized, &mut rng);
        assert_ne!(a.code_base(), b.code_base());
    }

    #[test]
    fn pid_displays() {
        assert_eq!(Pid(3).to_string(), "pid 3");
    }
}
