//! Montgomery-ladder modular exponentiation victim (§9.2).

use crate::VICTIM_BRANCH_OFFSET;
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// Plain square-and-multiply reference, used to validate the ladder.
///
/// ```
/// use bscope_victims::mod_exp;
/// assert_eq!(mod_exp(2, 10, 1_000), 24); // 1024 mod 1000
/// assert_eq!(mod_exp(5, 0, 97), 1);
/// ```
///
/// # Panics
///
/// Panics if `modulus <= 1`.
#[must_use]
pub fn mod_exp(base: u64, exponent: u64, modulus: u64) -> u64 {
    assert!(modulus > 1, "modulus must exceed 1");
    let (mut result, mut b, mut e) = (1u128, u128::from(base) % u128::from(modulus), exponent);
    let m = u128::from(modulus);
    while e > 0 {
        if e & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    result as u64
}

/// The Montgomery powering ladder: computes `base^key mod modulus` one key
/// bit per step, most-significant bit first.
///
/// The ladder performs the same *operations* regardless of the key bit —
/// its classic timing/power-channel defence — "however it requires a branch
/// operating with direct dependency from the value of k_i" (paper §9.2):
/// the bit selects which register pair is multiplied into which. That
/// branch is exactly what BranchScope recovers. We model it as taken when
/// the key bit is 1.
///
/// ```
/// use bscope_bpu::MicroarchProfile;
/// use bscope_os::{AslrPolicy, System, Workload};
/// use bscope_victims::{mod_exp, MontgomeryLadder};
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 5);
/// let pid = sys.spawn("victim", AslrPolicy::Disabled);
/// let mut ladder = MontgomeryLadder::new(3, 0b1011, 101);
/// let mut cpu = sys.cpu(pid);
/// ladder.run(&mut cpu, 64);
/// assert_eq!(ladder.result(), Some(mod_exp(3, 0b1011, 101)));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryLadder {
    base: u64,
    key: u64,
    modulus: u64,
    /// Remaining bit positions, MSB first. Empty once finished.
    bits: Vec<bool>,
    next: usize,
    r0: u128,
    r1: u128,
}

impl MontgomeryLadder {
    /// Prepares `base^key mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus <= 1`.
    #[must_use]
    pub fn new(base: u64, key: u64, modulus: u64) -> Self {
        assert!(modulus > 1, "modulus must exceed 1");
        let nbits = if key == 0 { 1 } else { 64 - key.leading_zeros() as usize };
        let bits = (0..nbits).rev().map(|i| (key >> i) & 1 == 1).collect();
        MontgomeryLadder {
            base,
            key,
            modulus,
            bits,
            next: 0,
            r0: 1,
            r1: u128::from(base) % u128::from(modulus),
        }
    }

    /// Number of key bits the ladder processes.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        self.bits.len()
    }

    /// The secret key (ground truth for experiments).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The exponentiation base.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The computed exponentiation result, once all bits are processed.
    #[must_use]
    pub fn result(&self) -> Option<u64> {
        (self.next == self.bits.len()).then_some(self.r0 as u64)
    }

    /// Branch direction for key bit `i` (MSB first): taken ⇔ bit is 1.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn branch_outcome(&self, i: usize) -> Outcome {
        Outcome::from_bool(self.bits[i])
    }

    /// Recovers a key from observed branch directions (MSB first) — what
    /// the attacker computes from its BranchScope reads.
    #[must_use]
    pub fn key_from_outcomes(outcomes: &[Outcome]) -> u64 {
        outcomes.iter().fold(0u64, |k, o| (k << 1) | u64::from(o.is_taken()))
    }
}

impl Workload for MontgomeryLadder {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.next >= self.bits.len() {
            return false;
        }
        let bit = self.bits[self.next];
        let m = u128::from(self.modulus);
        // The secret-dependent branch: which register receives the product.
        cpu.branch_at(VICTIM_BRANCH_OFFSET, Outcome::from_bool(bit));
        if bit {
            self.r0 = self.r0 * self.r1 % m;
            self.r1 = self.r1 * self.r1 % m;
        } else {
            self.r1 = self.r0 * self.r1 % m;
            self.r0 = self.r0 * self.r0 % m;
        }
        // Two modular multiplications of real work either way — the
        // balanced-path property that defeats plain timing attacks.
        cpu.work(120);
        self.next += 1;
        self.next < self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::{AslrPolicy, System};
    use proptest::prelude::*;

    fn run_ladder(base: u64, key: u64, modulus: u64) -> u64 {
        let mut sys = System::new(MicroarchProfile::haswell(), 9);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut ladder = MontgomeryLadder::new(base, key, modulus);
        let mut cpu = sys.cpu(pid);
        ladder.run(&mut cpu, 128);
        ladder.result().expect("ladder finished")
    }

    #[test]
    fn ladder_computes_mod_exp() {
        assert_eq!(run_ladder(2, 10, 1_000_003), 1024);
        assert_eq!(run_ladder(5, 0, 97), 1);
        assert_eq!(run_ladder(7, 13, 11), mod_exp(7, 13, 11));
    }

    #[test]
    fn key_round_trips_through_outcomes() {
        let ladder = MontgomeryLadder::new(2, 0b1001_0110, 101);
        let outcomes: Vec<Outcome> =
            (0..ladder.key_bits()).map(|i| ladder.branch_outcome(i)).collect();
        assert_eq!(MontgomeryLadder::key_from_outcomes(&outcomes), 0b1001_0110);
    }

    #[test]
    fn result_unavailable_until_finished() {
        let mut sys = System::new(MicroarchProfile::haswell(), 10);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut ladder = MontgomeryLadder::new(3, 0b111, 101);
        assert_eq!(ladder.result(), None);
        let mut cpu = sys.cpu(pid);
        ladder.step(&mut cpu);
        assert_eq!(ladder.result(), None);
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn rejects_trivial_modulus() {
        let _ = MontgomeryLadder::new(2, 3, 1);
    }

    proptest! {
        /// The ladder agrees with square-and-multiply for arbitrary inputs.
        #[test]
        fn ladder_matches_reference(
            base in 0u64..1_000_000,
            key in 0u64..=u64::from(u32::MAX),
            modulus in 2u64..1_000_000,
        ) {
            prop_assert_eq!(run_ladder(base, key, modulus), mod_exp(base, key, modulus));
        }

        /// Branch outcomes encode exactly the key bits.
        #[test]
        fn outcomes_encode_key(key in 1u64..=u64::MAX) {
            let ladder = MontgomeryLadder::new(2, key, 1_000_003);
            let outcomes: Vec<Outcome> =
                (0..ladder.key_bits()).map(|i| ladder.branch_outcome(i)).collect();
            prop_assert_eq!(MontgomeryLadder::key_from_outcomes(&outcomes), key);
        }
    }
}
