//! ASLR derandomization victim (§9.2).

use crate::VICTIM_BRANCH_OFFSET;
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// A victim whose code base is randomized: the attacker knows the *offset*
/// of a frequently-executed, heavily-biased branch inside the binary (from
/// the disassembly) but not the load address. By priming candidate PHT
/// entries and watching which one the victim's branch perturbs — "observing
/// branch collisions" — the attacker recovers the load address and defeats
/// ASLR (paper §9.2).
///
/// Each step executes the branch once with a fixed direction (an
/// always-taken loop back-edge is the classic candidate).
#[derive(Debug, Clone)]
pub struct AslrVictim {
    direction: Outcome,
    steps: usize,
}

impl AslrVictim {
    /// Victim whose located branch always resolves to `direction`.
    #[must_use]
    pub fn new(direction: Outcome) -> Self {
        AslrVictim { direction, steps: 0 }
    }

    /// The fixed direction of the victim's branch.
    #[must_use]
    pub fn direction(&self) -> Outcome {
        self.direction
    }

    /// Steps executed so far.
    #[must_use]
    pub fn steps_executed(&self) -> usize {
        self.steps
    }
}

impl Default for AslrVictim {
    fn default() -> Self {
        AslrVictim::new(Outcome::Taken)
    }
}

impl Workload for AslrVictim {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        cpu.branch_at(VICTIM_BRANCH_OFFSET, self.direction);
        cpu.work(4);
        self.steps += 1;
        true // runs as long as it is scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, PhtState};
    use bscope_os::{AslrPolicy, System};

    #[test]
    fn branch_executes_at_randomized_address() {
        let mut sys = System::new(MicroarchProfile::skylake(), 14);
        let pid = sys.spawn("victim", AslrPolicy::Randomized);
        let mut v = AslrVictim::default();
        let mut cpu = sys.cpu(pid);
        v.run(&mut cpu, 3);
        assert_eq!(v.steps_executed(), 3);
        let addr = sys.process(pid).vaddr_of(VICTIM_BRANCH_OFFSET);
        assert_ne!(addr, 0x40_0000 + VICTIM_BRANCH_OFFSET, "base must be randomized");
        assert_eq!(sys.core().bpu().pht_state(addr), PhtState::StronglyTaken);
    }

    #[test]
    fn runs_indefinitely() {
        let mut sys = System::new(MicroarchProfile::skylake(), 15);
        let pid = sys.spawn("victim", AslrPolicy::Randomized);
        let mut v = AslrVictim::new(Outcome::NotTaken);
        let mut cpu = sys.cpu(pid);
        assert_eq!(v.run(&mut cpu, 100), 100);
    }
}
