//! libjpeg IDCT zero-skip victim (§9.2).

use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// DCT blocks are 8×8 coefficients.
pub const BLOCK_DIM: usize = 8;

/// Code offset of the per-column zero-test branch inside the simulated
/// IDCT routine. Distinct from the secret-array victim's offset purely for
/// clarity; the attacker learns either from the disassembly.
pub const IDCT_BRANCH_OFFSET: u64 = 0x1_20;

/// One 8×8 block of DCT coefficients, as produced by JPEG entropy decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoefficientBlock {
    coeffs: [[i16; BLOCK_DIM]; BLOCK_DIM],
}

impl CoefficientBlock {
    /// Block from raw coefficients (row-major).
    #[must_use]
    pub fn new(coeffs: [[i16; BLOCK_DIM]; BLOCK_DIM]) -> Self {
        CoefficientBlock { coeffs }
    }

    /// A block with only the DC coefficient set — a flat image region, the
    /// best case for the zero-skip optimisation.
    #[must_use]
    pub fn flat(dc: i16) -> Self {
        let mut coeffs = [[0; BLOCK_DIM]; BLOCK_DIM];
        coeffs[0][0] = dc;
        CoefficientBlock { coeffs }
    }

    /// Whether column `c` is all-zero apart from the first row — the exact
    /// condition libjpeg's `jpeg_idct_islow` tests to take its AC-free
    /// shortcut for that column.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 8`.
    #[must_use]
    pub fn column_ac_free(&self, c: usize) -> bool {
        (1..BLOCK_DIM).all(|r| self.coeffs[r][c] == 0)
    }

    /// Number of AC-free columns (0–8): the block's "simplicity score".
    #[must_use]
    pub fn ac_free_columns(&self) -> usize {
        (0..BLOCK_DIM).filter(|&c| self.column_ac_free(c)).count()
    }
}

/// The decompression victim: for every block it decodes, the column pass of
/// the inverse DCT executes one zero-test branch per column ("each such
/// comparison is realized as an individual branch instruction", §9.2).
/// The branch is taken when the column is AC-free (the shortcut is taken).
///
/// Spying on these eight branches per block leaks the per-column sparsity
/// pattern — "not only … when all row/column elements are zero, but also …
/// which element is not equal to zero" — from which an attacker
/// reconstructs the relative complexity of the image.
///
/// ```
/// use bscope_bpu::MicroarchProfile;
/// use bscope_os::{AslrPolicy, System, Workload};
/// use bscope_victims::{CoefficientBlock, IdctVictim};
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 11);
/// let pid = sys.spawn("victim", AslrPolicy::Disabled);
/// let mut victim = IdctVictim::new(vec![CoefficientBlock::flat(100)]);
/// let mut cpu = sys.cpu(pid);
/// victim.run(&mut cpu, 64);
/// assert_eq!(victim.branches_executed(), 8); // one zero test per column
/// ```
#[derive(Debug, Clone)]
pub struct IdctVictim {
    blocks: Vec<CoefficientBlock>,
    block_idx: usize,
    column: usize,
    branches: usize,
}

impl IdctVictim {
    /// Victim decoding the given blocks in order.
    #[must_use]
    pub fn new(blocks: Vec<CoefficientBlock>) -> Self {
        IdctVictim { blocks, block_idx: 0, column: 0, branches: 0 }
    }

    /// Total zero-test branches executed so far.
    #[must_use]
    pub fn branches_executed(&self) -> usize {
        self.branches
    }

    /// Ground-truth per-column shortcut pattern for block `b`, in execution
    /// order (what a perfect attacker would recover).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn ground_truth(&self, b: usize) -> [bool; BLOCK_DIM] {
        let mut out = [false; BLOCK_DIM];
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.blocks[b].column_ac_free(c);
        }
        out
    }

    /// Number of blocks in the input.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl Workload for IdctVictim {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.block_idx >= self.blocks.len() {
            return false;
        }
        let shortcut = self.blocks[self.block_idx].column_ac_free(self.column);
        cpu.branch_at(IDCT_BRANCH_OFFSET, Outcome::from_bool(shortcut));
        // The shortcut scales one DC value; the full path does the 8-point
        // inverse transform — visibly different amounts of work (the page-
        // fault channel the prior attacks used), but BranchScope reads the
        // branch itself.
        cpu.work(if shortcut { 8 } else { 60 });
        self.branches += 1;
        self.column += 1;
        if self.column == BLOCK_DIM {
            self.column = 0;
            self.block_idx += 1;
        }
        self.block_idx < self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::{AslrPolicy, System};
    use proptest::prelude::*;

    #[test]
    fn flat_block_is_fully_ac_free() {
        let b = CoefficientBlock::flat(42);
        assert_eq!(b.ac_free_columns(), 8);
        assert!(b.column_ac_free(0));
    }

    #[test]
    fn ac_coefficients_break_the_shortcut() {
        let mut coeffs = [[0i16; 8]; 8];
        coeffs[0][0] = 5;
        coeffs[3][2] = -1; // AC energy in column 2
        let b = CoefficientBlock::new(coeffs);
        assert!(!b.column_ac_free(2));
        assert!(b.column_ac_free(1));
        assert_eq!(b.ac_free_columns(), 7);
    }

    #[test]
    fn victim_executes_one_branch_per_column() {
        let mut sys = System::new(MicroarchProfile::haswell(), 12);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut v = IdctVictim::new(vec![CoefficientBlock::flat(1), CoefficientBlock::flat(2)]);
        let mut cpu = sys.cpu(pid);
        v.run(&mut cpu, 1_000);
        assert_eq!(v.branches_executed(), 16);
        assert_eq!(v.block_count(), 2);
    }

    #[test]
    fn ground_truth_matches_block_structure() {
        let mut coeffs = [[0i16; 8]; 8];
        coeffs[5][7] = 3;
        let v = IdctVictim::new(vec![CoefficientBlock::new(coeffs)]);
        let truth = v.ground_truth(0);
        assert!(!truth[7]);
        assert!(truth[..7].iter().all(|&t| t));
    }

    proptest! {
        /// The per-step branch directions replay exactly the ground truth.
        #[test]
        fn branch_stream_matches_ground_truth(cells in proptest::collection::vec(-4i16..=4, 64)) {
            let mut coeffs = [[0i16; 8]; 8];
            for (i, &v) in cells.iter().enumerate() {
                coeffs[i / 8][i % 8] = v;
            }
            let block = CoefficientBlock::new(coeffs);
            let mut sys = System::new(MicroarchProfile::haswell(), 13);
            let pid = sys.spawn("victim", AslrPolicy::Disabled);
            let mut victim = IdctVictim::new(vec![block.clone()]);
            let truth = victim.ground_truth(0);
            // Execute and verify the PHT observed the same directions by
            // replaying per-column expectations.
            let mut cpu = sys.cpu(pid);
            for (c, &expect) in truth.iter().enumerate() {
                prop_assert_eq!(block.column_ac_free(c), expect);
                victim.step(&mut cpu);
            }
            prop_assert_eq!(victim.branches_executed(), 8);
        }
    }
}
