//! The paper's Listing 2 victim: a branch conditioned on secret bits.

use crate::VICTIM_BRANCH_OFFSET;
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// The victim of the paper's Listing 2: `if (sec_data[i]) { nop; nop; }`
/// executed once per step, advancing through a secret bit array.
///
/// Following the disassembly in the paper (a `je` that jumps when the
/// tested value is zero), the branch is **taken when the secret bit is 0**
/// and falls through (not taken) when it is 1.
///
/// ```
/// use bscope_bpu::{MicroarchProfile, Outcome};
/// use bscope_os::{AslrPolicy, System, Workload};
/// use bscope_victims::SecretBranchVictim;
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 3);
/// let pid = sys.spawn("victim", AslrPolicy::Disabled);
/// let mut victim = SecretBranchVictim::new(vec![true, false]);
/// assert_eq!(victim.branch_outcome(0), Outcome::NotTaken); // bit 1 → je falls through
/// victim.step(&mut sys.cpu(pid));
/// assert_eq!(victim.bits_executed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SecretBranchVictim {
    secret: Vec<bool>,
    index: usize,
}

impl SecretBranchVictim {
    /// Victim holding the given secret bits.
    #[must_use]
    pub fn new(secret: Vec<bool>) -> Self {
        SecretBranchVictim { secret, index: 0 }
    }

    /// Number of secret bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.secret.len()
    }

    /// Whether the secret is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.secret.is_empty()
    }

    /// Bits already leaked through executed branches.
    #[must_use]
    pub fn bits_executed(&self) -> usize {
        self.index
    }

    /// Branch direction the victim executes for bit `i`:
    /// `je` is taken when the tested value is zero (paper Listing 2 B).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn branch_outcome(&self, i: usize) -> Outcome {
        Outcome::from_bool(!self.secret[i])
    }

    /// Ground-truth secret (test bookkeeping; a real attacker has no such
    /// access, which is the point).
    #[must_use]
    pub fn secret(&self) -> &[bool] {
        &self.secret
    }

    /// Decodes an observed branch direction back into a secret bit.
    #[must_use]
    pub fn bit_from_outcome(outcome: Outcome) -> bool {
        !outcome.is_taken()
    }
}

impl Workload for SecretBranchVictim {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.index >= self.secret.len() {
            return false;
        }
        let outcome = self.branch_outcome(self.index);
        cpu.branch_at(VICTIM_BRANCH_OFFSET, outcome);
        // The `i++` and array load around the branch (Listing 2) cost a few
        // non-branch cycles.
        cpu.work(6);
        self.index += 1;
        self.index < self.secret.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, PhtState};
    use bscope_os::{AslrPolicy, System};

    #[test]
    fn je_semantics_bit_zero_is_taken() {
        let v = SecretBranchVictim::new(vec![false, true]);
        assert_eq!(v.branch_outcome(0), Outcome::Taken);
        assert_eq!(v.branch_outcome(1), Outcome::NotTaken);
        assert!(!SecretBranchVictim::bit_from_outcome(Outcome::Taken));
        assert!(SecretBranchVictim::bit_from_outcome(Outcome::NotTaken));
    }

    #[test]
    fn steps_through_all_bits_then_stops() {
        let mut sys = System::new(MicroarchProfile::haswell(), 1);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut v = SecretBranchVictim::new(vec![true, false, true]);
        let mut cpu = sys.cpu(pid);
        assert!(v.step(&mut cpu));
        assert!(v.step(&mut cpu));
        assert!(!v.step(&mut cpu), "last bit reports completion");
        assert!(!v.step(&mut cpu), "no further work");
        assert_eq!(v.bits_executed(), 3);
    }

    #[test]
    fn branches_land_in_the_shared_pht() {
        let mut sys = System::new(MicroarchProfile::haswell(), 2);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        // All-zero secret → je always taken → entry saturates taken.
        let mut v = SecretBranchVictim::new(vec![false; 4]);
        let mut cpu = sys.cpu(pid);
        v.run(&mut cpu, 4);
        let addr = sys.process(pid).vaddr_of(VICTIM_BRANCH_OFFSET);
        assert_eq!(sys.core().bpu().pht_state(addr), PhtState::StronglyTaken);
    }
}
