//! Victim programs for the BranchScope reproduction.
//!
//! Each victim executes conditional branches whose directions depend on a
//! secret, which is exactly what BranchScope leaks (paper §7, §9):
//!
//! * [`SecretBranchVictim`] — the paper's Listing 2: one branch per bit of
//!   a secret array (the covert-channel / demonstration victim);
//! * [`MontgomeryLadder`] — modular exponentiation with a per-key-bit
//!   branch, the classic RSA/ECC leak target (§9.2 "Montgomery ladder");
//! * [`IdctVictim`] — libjpeg's inverse-DCT zero-skip optimisation: one
//!   branch per row/column zero test, leaking image block complexity
//!   (§9.2 "libjpeg");
//! * [`AslrVictim`] — a victim with a branch at an ASLR-randomized address,
//!   the derandomization target (§9.2 "ASLR value recovery").
//!
//! All victims implement [`Workload`](bscope_os::Workload) so they can be
//! slowed down by the scheduler or single-stepped by the SGX controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aslr;
mod jpeg;
mod montgomery;
mod secret_branch;
mod sliding_window;

pub use aslr::AslrVictim;
pub use jpeg::{CoefficientBlock, IdctVictim, BLOCK_DIM, IDCT_BRANCH_OFFSET};
pub use montgomery::{mod_exp, MontgomeryLadder};
pub use secret_branch::SecretBranchVictim;
pub use sliding_window::{recover_bits_from_trace, SlidingWindowExp};

/// Code offset of the secret-dependent branch inside every victim binary —
/// the `<victim_f+0x6d>` of the paper's Listing 2 disassembly. Keeping one
/// well-known offset mirrors how an attacker locates the branch in a real
/// binary (by disassembling it).
pub const VICTIM_BRANCH_OFFSET: u64 = 0x6d;
