//! Sliding-window modular exponentiation victim.
//!
//! The paper notes that "most recent versions of cryptographic libraries do
//! not contain branches with outcomes dependent directly on the bits of a
//! secret key, [but] often some limited information can still be recovered
//! [6]" — citing Bernstein et al.'s *Sliding right into disaster*. This
//! module implements the classic left-to-right sliding-window
//! exponentiation: the per-position "does a window start here?" branch
//! leaks the square/multiply schedule, from which an attacker reconstructs
//! a substantial fraction of the key bits.

use crate::VICTIM_BRANCH_OFFSET;
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// Left-to-right windowed modular exponentiation with window size `w`
/// (the fixed-length-window variant: whenever a set bit is scanned, a full
/// `w`-bit window is consumed). One loop iteration per scanned key
/// position, each executing a single secret-dependent branch (taken ⇔ a
/// window opens at the position).
///
/// ```
/// use bscope_bpu::MicroarchProfile;
/// use bscope_os::{AslrPolicy, System, Workload};
/// use bscope_victims::{mod_exp, SlidingWindowExp};
///
/// let mut sys = System::new(MicroarchProfile::skylake(), 5);
/// let pid = sys.spawn("victim", AslrPolicy::Disabled);
/// let mut exp = SlidingWindowExp::new(3, 0b1011_0101, 1_000_003, 4);
/// let mut cpu = sys.cpu(pid);
/// exp.run(&mut cpu, 128);
/// assert_eq!(exp.result(), Some(mod_exp(3, 0b1011_0101, 1_000_003)));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowExp {
    key: u64,
    modulus: u64,
    window: u32,
    /// All powers base^0 … base^(2^w − 1).
    powers: Vec<u128>,
    /// Next key position to scan (None once finished).
    position: Option<i32>,
    acc: u128,
    trace: Vec<Outcome>,
}

impl SlidingWindowExp {
    /// Prepares `base^key mod modulus` with window size `window`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus <= 1` or `window` is not in `1..=8`.
    #[must_use]
    pub fn new(base: u64, key: u64, modulus: u64, window: u32) -> Self {
        assert!(modulus > 1, "modulus must exceed 1");
        assert!((1..=8).contains(&window), "window must be in 1..=8, got {window}");
        let m = u128::from(modulus);
        let b = u128::from(base) % m;
        let mut powers = Vec::with_capacity(1 << window);
        let mut cur = 1u128;
        for _ in 0..(1usize << window) {
            powers.push(cur);
            cur = cur * b % m;
        }
        let msb = if key == 0 { None } else { Some(63 - key.leading_zeros() as i32) };
        SlidingWindowExp {
            key,
            modulus,
            window,
            powers,
            position: msb,
            acc: 1,
            trace: Vec::new(),
        }
    }

    /// Window size in bits.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The secret key (ground truth for experiments).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Result once every position has been scanned. A zero key finishes
    /// immediately with result 1.
    #[must_use]
    pub fn result(&self) -> Option<u64> {
        match self.position {
            Some(_) => None,
            None => Some(self.acc as u64),
        }
    }

    /// The square/multiply schedule as branch outcomes, one per scanned
    /// position (ground truth the attacker's trace is compared against).
    #[must_use]
    pub fn trace(&self) -> &[Outcome] {
        &self.trace
    }

    fn bit(&self, i: i32) -> bool {
        i >= 0 && (self.key >> i) & 1 == 1
    }
}

impl Workload for SlidingWindowExp {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        let Some(i) = self.position else { return false };
        let m = u128::from(self.modulus);
        let window_starts = self.bit(i);
        // The secret-dependent branch: "is this exponent bit set?"
        cpu.branch_at(VICTIM_BRANCH_OFFSET, Outcome::from_bool(window_starts));
        self.trace.push(Outcome::from_bool(window_starts));
        if window_starts {
            // Consume a full (or final, truncated) w-bit window.
            let len = (self.window as i32).min(i + 1);
            let j = i - len + 1;
            let mut value = 0u64;
            for k in (j..=i).rev() {
                value = (value << 1) | u64::from(self.bit(k));
            }
            for _ in 0..len {
                self.acc = self.acc * self.acc % m;
            }
            self.acc = self.acc * self.powers[value as usize] % m;
            cpu.work(60 * len as u64 + 60);
            self.position = (j > 0).then(|| j - 1);
        } else {
            self.acc = self.acc * self.acc % m;
            cpu.work(60);
            self.position = (i > 0).then(|| i - 1);
        }
        self.position.is_some()
    }
}

/// Partial-key reconstruction from an observed square/multiply schedule
/// (in the spirit of Bernstein et al.'s analysis): each *not-taken*
/// observation is a scanned position with key bit **0**; each *taken*
/// observation opens a fixed-length window whose **leading bit is 1** and
/// whose `w−1` interior bits are unknown. Because windows have fixed
/// length, the attacker's alignment is exact and every recovered bit is
/// certain.
///
/// Returns one `Option<bool>` per key bit, indexed from the MSB of the
/// scanned range; `None` marks unrecovered (window-interior) bits.
#[must_use]
pub fn recover_bits_from_trace(trace: &[Outcome], key_bits: u32, window: u32) -> Vec<Option<bool>> {
    let mut known: Vec<Option<bool>> = Vec::with_capacity(key_bits as usize);
    let mut remaining = key_bits as i64;
    for &o in trace {
        if remaining <= 0 {
            break;
        }
        if o.is_taken() {
            // Window: leading bit 1; the remaining min(w, remaining) − 1
            // bits were consumed inside the window and are unknown.
            known.push(Some(true));
            remaining -= 1;
            for _ in 0..(window as i64 - 1).min(remaining.max(0)) {
                known.push(None);
                remaining -= 1;
            }
        } else {
            known.push(Some(false));
            remaining -= 1;
        }
    }
    known.truncate(key_bits as usize);
    known
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mod_exp;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::{AslrPolicy, System};
    use proptest::prelude::*;

    fn run_exp(base: u64, key: u64, modulus: u64, w: u32) -> SlidingWindowExp {
        let mut sys = System::new(MicroarchProfile::haswell(), 3);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut exp = SlidingWindowExp::new(base, key, modulus, w);
        let mut cpu = sys.cpu(pid);
        exp.run(&mut cpu, 256);
        exp
    }

    #[test]
    fn computes_correct_results() {
        for (b, k, m, w) in [(2, 10, 1_000_003, 4), (7, 0xDEAD_BEEF, 999_999_937, 4), (3, 1, 97, 2)] {
            let exp = run_exp(b, k, m, w);
            assert_eq!(exp.result(), Some(mod_exp(b, k, m)), "{b}^{k} mod {m} (w={w})");
        }
    }

    #[test]
    fn zero_key_finishes_immediately() {
        let mut sys = System::new(MicroarchProfile::haswell(), 4);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut exp = SlidingWindowExp::new(5, 0, 97, 4);
        assert_eq!(exp.result(), Some(1));
        let mut cpu = sys.cpu(pid);
        assert!(!exp.step(&mut cpu), "nothing to scan");
    }

    #[test]
    fn window_one_leaks_every_bit() {
        // With w = 1 the schedule *is* the key: full recovery.
        let key = 0b1011_0010_1101u64;
        let exp = run_exp(2, key, 1_000_003, 1);
        let bits = 64 - key.leading_zeros();
        let known = recover_bits_from_trace(exp.trace(), bits, 1);
        let recovered: u64 =
            known.iter().fold(0, |acc, b| (acc << 1) | u64::from(b.expect("all known")));
        assert_eq!(recovered, key);
    }

    #[test]
    fn wider_windows_leak_partially() {
        let key = 0xF0F0_F0F0_F0F0_F0F0u64 | 1;
        let exp = run_exp(2, key, 1_000_003, 4);
        let bits = 64 - key.leading_zeros();
        let known = recover_bits_from_trace(exp.trace(), bits, 4);
        let recovered = known.iter().filter(|b| b.is_some()).count();
        assert!(recovered < bits as usize, "w=4 must not leak everything");
        assert!(
            recovered * 2 >= bits as usize / 2,
            "but a substantial fraction is recovered: {recovered}/{bits}"
        );
        // Every recovered bit must be correct.
        for (idx, bit) in known.iter().enumerate() {
            if let Some(b) = bit {
                let true_bit = (key >> (bits as usize - 1 - idx)) & 1 == 1;
                assert_eq!(*b, true_bit, "recovered bit {idx} wrong");
            }
        }
    }

    proptest! {
        /// Sliding-window result equals square-and-multiply for all inputs.
        #[test]
        fn matches_reference(
            base in 1u64..100_000,
            key in 1u64..=u64::from(u32::MAX),
            modulus in 2u64..1_000_000,
            w in 1u32..=6,
        ) {
            let exp = run_exp(base, key, modulus, w);
            prop_assert_eq!(exp.result(), Some(mod_exp(base, key, modulus)));
        }

        /// All bits an attacker recovers from the schedule are correct
        /// (soundness of the partial-recovery analysis).
        #[test]
        fn recovered_bits_are_sound(key in 1u64..=u64::MAX, w in 1u32..=6) {
            let exp = run_exp(3, key, 999_999_937, w);
            let bits = 64 - key.leading_zeros();
            let known = recover_bits_from_trace(exp.trace(), bits, w);
            prop_assert!(known.len() <= bits as usize);
            for (idx, bit) in known.iter().enumerate() {
                if let Some(b) = bit {
                    let true_bit = (key >> (bits as usize - 1 - idx)) & 1 == 1;
                    prop_assert_eq!(*b, true_bit, "bit {} wrong for key {:#x} w={}", idx, key, w);
                }
            }
        }
    }
}
