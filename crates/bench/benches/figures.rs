//! One Criterion benchmark per reproduced figure workload.

use bscope_bench::attack_fixture;
use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
use bscope_core::reverse::scan_states;
use bscope_core::stability::{analyze_stability, StabilityConfig};
use bscope_core::timing_probe::{
    collect_latency_samples, detection_error_rate, probe_latency_by_state,
};
use bscope_core::{ProbeKind, RandomizationBlock};
use bscope_os::{AslrPolicy, System};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Fig. 2: one 20-iteration learning run of a 10-bit pattern.
fn fig2_learning(c: &mut Criterion) {
    c.bench_function("fig2_pattern_learning_run", |b| {
        let pattern = [true, false, false, true, true, true, false, true, false, false];
        b.iter(|| {
            let mut sys = System::new(MicroarchProfile::skylake(), 1);
            let pid = sys.spawn("bench", AslrPolicy::Disabled);
            for _ in 0..20 {
                for &bit in &pattern {
                    sys.cpu(pid).branch_at(0x6d, Outcome::from_bool(bit));
                }
            }
            black_box(sys.cpu(pid).counters().branch_misses)
        });
    });
}

/// Fig. 4: characterising one randomization block (reduced reps).
fn fig4_stability(c: &mut Criterion) {
    c.bench_function("fig4_block_characterisation", |b| {
        b.iter(|| {
            let mut sys = System::new(MicroarchProfile::sandy_bridge(), 2);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            let cfg = StabilityConfig { blocks: 1, reps: 4, ..StabilityConfig::default() };
            black_box(analyze_stability(&mut sys, spy, &cfg))
        });
    });
}

/// Fig. 5: scanning and decoding a 272-address range.
fn fig5_scan(c: &mut Criterion) {
    c.bench_function("fig5_scan_272_addresses", |b| {
        let profile = MicroarchProfile::sandy_bridge();
        let block = RandomizationBlock::for_profile(&profile, 3);
        b.iter(|| {
            let mut sys = System::new(profile.clone(), 4);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            black_box(scan_states(&mut sys, spy, &block, 0x30_0000, 0x110))
        });
    });
}

/// Fig. 7: collecting one labelled latency sample set.
fn fig7_latency_samples(c: &mut Criterion) {
    c.bench_function("fig7_1k_latency_samples", |b| {
        b.iter(|| {
            let mut sys = System::new(MicroarchProfile::skylake(), 5);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            black_box(collect_latency_samples(&mut sys, spy, 1_000, true, false))
        });
    });
}

/// Fig. 8: one error-rate point (k=3, 50 trials).
fn fig8_detection_error(c: &mut Criterion) {
    c.bench_function("fig8_error_point_k3", |b| {
        b.iter(|| {
            let mut sys = System::new(MicroarchProfile::skylake(), 6);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            black_box(detection_error_rate(&mut sys, spy, 3, 50, false))
        });
    });
}

/// Fig. 9: probe-latency statistics for one state (100 reps).
fn fig9_probe_latency(c: &mut Criterion) {
    c.bench_function("fig9_state_latency_100_reps", |b| {
        b.iter(|| {
            let mut sys = System::new(MicroarchProfile::haswell(), 7);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            black_box(probe_latency_by_state(
                &mut sys,
                spy,
                PhtState::StronglyNotTaken,
                ProbeKind::TakenTaken,
                100,
            ))
        });
    });
}

/// Fig. 6 (and the single-bit primitive underneath every figure): one
/// prime → victim → probe → decode round.
fn fig6_single_bit(c: &mut Criterion) {
    c.bench_function("fig6_read_one_bit", |b| {
        let profile = MicroarchProfile::skylake();
        let (mut sys, victim, spy, target) = attack_fixture(profile.clone(), 8);
        let mut attack =
            bscope_core::BranchScope::new(bscope_core::AttackConfig::for_profile(&profile))
                .unwrap();
        b.iter(|| {
            black_box(attack.read_bit(&mut sys, spy, target, |sys| {
                sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
            }))
        });
    });
}

criterion_group!(
    figures,
    fig2_learning,
    fig4_stability,
    fig5_scan,
    fig6_single_bit,
    fig7_latency_samples,
    fig8_detection_error,
    fig9_probe_latency,
);
criterion_main!(figures);
