//! Design-choice ablations called out in DESIGN.md.

use bscope_bench::attack_fixture;
use bscope_bpu::{
    CounterKind, GlobalHistoryRegister, Microarch, MicroarchProfile, Outcome,
    PerceptronPredictor, PhtState,
};
use bscope_core::TargetedPrime;
use bscope_os::System;
use bscope_uarch::NoiseConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn profile_with_counter(kind: CounterKind) -> MicroarchProfile {
    MicroarchProfile { arch: Microarch::Custom, counter_kind: kind, ..MicroarchProfile::skylake() }
}

/// Counter flavour ablation: does the Skylake 5-level counter change the
/// cost of a full attack round?
fn counter_kind_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_counter_kind");
    for (name, kind) in
        [("two_bit", CounterKind::TwoBit), ("skylake_asym", CounterKind::SkylakeAsymmetric)]
    {
        group.bench_function(name, |b| {
            let profile = profile_with_counter(kind);
            let (mut sys, victim, spy, target) = attack_fixture(profile.clone(), 20);
            let mut attack =
                bscope_core::BranchScope::new(bscope_core::AttackConfig::for_profile(&profile))
                    .unwrap();
            b.iter(|| {
                black_box(attack.read_bit(&mut sys, spy, target, |sys| {
                    sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
                }))
            });
        });
    }
    group.finish();
}

/// Prime pollution budget: the cost knob of the targeted prime.
fn pollution_budget_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prime_pollution");
    for budget in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            let mut sys = System::new(MicroarchProfile::skylake(), 21);
            let spy = sys.spawn("spy", bscope_os::AslrPolicy::Disabled);
            let mut prime = TargetedPrime::new(0x40_006d, PhtState::StronglyNotTaken);
            prime.set_pollution(budget);
            b.iter(|| prime.prime(&mut sys.cpu(spy)));
        });
    }
    group.finish();
}

/// Noise-level ablation: simulation cost of background activity.
fn noise_level_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_noise_level");
    for (name, noise) in [
        ("none", None),
        ("isolated", Some(NoiseConfig::isolated_core())),
        ("system", Some(NoiseConfig::system_activity())),
        ("heavy", Some(NoiseConfig::heavy())),
    ] {
        group.bench_function(name, |b| {
            let profile = MicroarchProfile::skylake();
            let (mut sys, victim, spy, target) = attack_fixture(profile.clone(), 22);
            sys.set_noise(noise.clone()).expect("preset noise is valid");
            let mut attack =
                bscope_core::BranchScope::new(bscope_core::AttackConfig::for_profile(&profile))
                    .unwrap();
            b.iter(|| {
                black_box(attack.read_bit(&mut sys, spy, target, |sys| {
                    sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
                }))
            });
        });
    }
    group.finish();
}

/// Substrate ablation: perceptron predictor throughput vs the hybrid.
fn perceptron_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_substrate_throughput");
    group.throughput(Throughput::Elements(1));
    group.bench_function("perceptron_execute", |b| {
        let mut ghr = GlobalHistoryRegister::new(16);
        let mut p = PerceptronPredictor::new(4_096, 16);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(p.execute(0x100 + (i % 1024) * 3, &mut ghr, Outcome::from_bool(i & 3 == 0)))
        });
    });
    group.bench_function("hybrid_execute", |b| {
        let mut bpu = bscope_bpu::HybridPredictor::new(MicroarchProfile::skylake());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(bpu.execute(0x100 + (i % 1024) * 3, Outcome::from_bool(i & 3 == 0), None))
        });
    });
    group.finish();
}

criterion_group!(
    ablations,
    counter_kind_ablation,
    pollution_budget_ablation,
    noise_level_ablation,
    perceptron_substrate,
);
criterion_main!(ablations);
