//! Trial-runner overhead: `bscope_harness::run_trials` against a raw
//! sequential loop over the same per-trial work, at several trial costs.
//!
//! The interesting question is where the runner's fixed cost (thread
//! spawn, slot collection) stops mattering: for trials in the microsecond
//! range and up — every real experiment trial is milliseconds — the
//! overhead is noise and the multi-thread configurations show the actual
//! speedup headroom.
//!
//! The `tracing_overhead` group guards the zero-cost-when-disabled claim
//! of `bscope-trace`: a traced run with a disabled tracer must match the
//! untraced runner on simulator-driving trials, with the enabled ring
//! alongside to show what turning tracing on actually costs.

use bscope_harness::{run_trials, run_trials_traced, splitmix64, trial_seed, RunOptions};
use bscope_uarch::SimCore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Simulated per-trial work: `rounds` SplitMix64 iterations (~1 ns each).
fn work(seed: u64, rounds: u64) -> u64 {
    let mut acc = seed;
    for _ in 0..rounds {
        acc = splitmix64(acc);
    }
    acc
}

fn runner_vs_sequential(c: &mut Criterion) {
    const TRIALS: usize = 256;
    for rounds in [100u64, 10_000, 1_000_000] {
        let mut group = c.benchmark_group(format!("run_trials/{rounds}_rounds_per_trial"));
        group.throughput(Throughput::Elements(TRIALS as u64));
        group.sample_size(10);
        group.bench_function("raw_sequential_loop", |b| {
            b.iter(|| {
                let out: Vec<u64> = (0..TRIALS)
                    .map(|idx| work(trial_seed(7, idx as u64), rounds))
                    .collect();
                black_box(out)
            })
        });
        for threads in [1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new("run_trials", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(run_trials(TRIALS, 7, threads, |_idx, seed| work(seed, rounds)))
                    })
                },
            );
        }
        group.finish();
    }
}

/// One simulator-driving trial: the hot path every real experiment spends
/// its time in, so the tracer hooks sit exactly where they do in practice.
fn sim_trial(seed: u64, tracer: &mut bscope_uarch::Tracer) -> u64 {
    let mut core = SimCore::new(bscope_bpu::MicroarchProfile::skylake(), seed);
    core.set_tracer(std::mem::take(tracer));
    let mut acc = 0u64;
    for i in 0..512u64 {
        let addr = 0x30_0000 + (i % 64) * 2;
        let taken = bscope_bpu::Outcome::from_bool(splitmix64(seed ^ i) & 1 == 1);
        acc = acc.wrapping_add(core.execute_branch(addr, taken).latency);
    }
    *tracer = core.take_tracer();
    acc
}

fn tracing_overhead(c: &mut Criterion) {
    const TRIALS: usize = 64;
    let opts = RunOptions { threads: 1, ..RunOptions::default() };
    let mut group = c.benchmark_group("tracing_overhead/512_branches_per_trial");
    group.throughput(Throughput::Elements(TRIALS as u64));
    group.sample_size(20);
    group.bench_function("untraced_runner", |b| {
        b.iter(|| {
            black_box(run_trials(TRIALS, 7, 1, |_idx, seed| {
                sim_trial(seed, &mut bscope_uarch::Tracer::disabled())
            }))
        })
    });
    group.bench_function("traced_runner_disabled", |b| {
        b.iter(|| {
            black_box(run_trials_traced(TRIALS, 7, &opts, None, |_idx, seed, tracer| {
                sim_trial(seed, tracer)
            }))
        })
    });
    group.bench_function("traced_runner_ring1024", |b| {
        b.iter(|| {
            black_box(run_trials_traced(TRIALS, 7, &opts, Some(1024), |_idx, seed, tracer| {
                sim_trial(seed, tracer)
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, runner_vs_sequential, tracing_overhead);
criterion_main!(benches);
