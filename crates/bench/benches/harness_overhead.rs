//! Trial-runner overhead: `bscope_harness::run_trials` against a raw
//! sequential loop over the same per-trial work, at several trial costs.
//!
//! The interesting question is where the runner's fixed cost (thread
//! spawn, slot collection) stops mattering: for trials in the microsecond
//! range and up — every real experiment trial is milliseconds — the
//! overhead is noise and the multi-thread configurations show the actual
//! speedup headroom.

use bscope_harness::{run_trials, splitmix64, trial_seed};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Simulated per-trial work: `rounds` SplitMix64 iterations (~1 ns each).
fn work(seed: u64, rounds: u64) -> u64 {
    let mut acc = seed;
    for _ in 0..rounds {
        acc = splitmix64(acc);
    }
    acc
}

fn runner_vs_sequential(c: &mut Criterion) {
    const TRIALS: usize = 256;
    for rounds in [100u64, 10_000, 1_000_000] {
        let mut group = c.benchmark_group(format!("run_trials/{rounds}_rounds_per_trial"));
        group.throughput(Throughput::Elements(TRIALS as u64));
        group.sample_size(10);
        group.bench_function("raw_sequential_loop", |b| {
            b.iter(|| {
                let out: Vec<u64> = (0..TRIALS)
                    .map(|idx| work(trial_seed(7, idx as u64), rounds))
                    .collect();
                black_box(out)
            })
        });
        for threads in [1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new("run_trials", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(run_trials(TRIALS, 7, threads, |_idx, seed| work(seed, rounds)))
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, runner_vs_sequential);
criterion_main!(benches);
