//! Micro-benchmarks of the hot attack primitives.

use bscope_bench::attack_fixture;
use bscope_bpu::{HybridPredictor, MicroarchProfile, Outcome, PhtState};
use bscope_core::reverse::hamming_ratio;
use bscope_core::{
    probe_with_counters, DecodedState, ProbeKind, RandomizationBlock, TargetedPrime,
};
use bscope_os::{AslrPolicy, System};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Raw hybrid predictor execute (predict + update + BTB/GHR commit).
fn bpu_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpu_execute");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hybrid_predict_update", |b| {
        let mut bpu = HybridPredictor::new(MicroarchProfile::skylake());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(bpu.execute(0x40_0000 + (i % 4096) * 3, Outcome::from_bool(i & 1 == 0), None))
        });
    });
    group.finish();
}

/// Simulated core branch execution (adds i-cache, timing, counters, TSC).
fn core_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_execute");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sim_core_branch", |b| {
        let mut sys = System::new(MicroarchProfile::skylake(), 11);
        let pid = sys.spawn("bench", AslrPolicy::Disabled);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(sys.cpu(pid).branch_at(0x100 + (i % 4096) * 3, Outcome::Taken))
        });
    });
    group.finish();
}

/// Stage 1: the fast targeted prime.
fn targeted_prime(c: &mut Criterion) {
    c.bench_function("stage1_targeted_prime", |b| {
        let mut sys = System::new(MicroarchProfile::skylake(), 12);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let mut prime = TargetedPrime::new(0x40_006d, PhtState::StronglyNotTaken);
        b.iter(|| prime.prime(&mut sys.cpu(spy)));
    });
}

/// Stage 1 (paper-faithful): executing a full randomization block.
fn block_execution(c: &mut Criterion) {
    let profile = MicroarchProfile::skylake();
    let block = RandomizationBlock::for_profile(&profile, 13);
    let mut group = c.benchmark_group("stage1_full_block");
    group.throughput(Throughput::Elements(block.len() as u64));
    group.sample_size(10);
    group.bench_function("execute_block", |b| {
        let mut sys = System::new(profile.clone(), 14);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        b.iter(|| block.execute(&mut sys.cpu(spy)));
    });
    group.finish();
}

/// Stage 3: the two-branch counter probe.
fn counter_probe(c: &mut Criterion) {
    c.bench_function("stage3_counter_probe", |b| {
        let mut sys = System::new(MicroarchProfile::skylake(), 15);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        b.iter(|| black_box(probe_with_counters(&mut sys.cpu(spy), 0x40_006d, ProbeKind::TakenTaken)));
    });
}

/// Full single-bit round on each paper machine.
fn read_bit_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_read_bit");
    for profile in MicroarchProfile::paper_machines() {
        group.bench_function(profile.arch.to_string(), |b| {
            let (mut sys, victim, spy, target) = attack_fixture(profile.clone(), 16);
            let mut attack =
                bscope_core::BranchScope::new(bscope_core::AttackConfig::for_profile(&profile))
                    .unwrap();
            b.iter(|| {
                black_box(attack.read_bit(&mut sys, spy, target, |sys| {
                    sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
                }))
            });
        });
    }
    group.finish();
}

/// Offline analysis: Hamming ratio over a 64K state vector.
fn hamming(c: &mut Criterion) {
    c.bench_function("hamming_ratio_w16384", |b| {
        let states: Vec<DecodedState> = (0..65_536)
            .map(|i| DecodedState::Known(PhtState::ALL[(i * 7 + i / 16_384) % 4]))
            .collect();
        let mut rng = StdRng::seed_from_u64(17);
        b.iter(|| black_box(hamming_ratio(&states, 16_384, 100, &mut rng)));
    });
}

criterion_group!(
    attack_paths,
    bpu_execute,
    core_execute,
    targeted_prime,
    block_execution,
    counter_probe,
    read_bit_round,
    hamming,
);
criterion_main!(attack_paths);
