//! Criterion benchmarks for the Table 1/2/3 workloads.

use bscope_bpu::MicroarchProfile;
use bscope_core::covert::{CovertChannel, EnclaveSender};
use bscope_core::{table1, AttackConfig};
use bscope_os::{AslrPolicy, Enclave, EnclaveController, System};
use bscope_uarch::NoiseConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Table 1: deriving all eight FSM rows for both counter flavours.
fn table1_rows(c: &mut Criterion) {
    c.bench_function("table1_fsm_rows", |b| {
        b.iter(|| {
            for kind in
                [bscope_bpu::CounterKind::TwoBit, bscope_bpu::CounterKind::SkylakeAsymmetric]
            {
                black_box(table1(kind));
            }
        });
    });
}

/// Table 2: transmitting 256 covert bits per machine and noise setting.
fn table2_covert(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_covert_256_bits");
    for profile in MicroarchProfile::paper_machines() {
        for (setting, noise) in [
            ("isolated", NoiseConfig::isolated_core()),
            ("noisy", NoiseConfig::system_activity()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(profile.arch.to_string(), setting),
                &(profile.clone(), noise),
                |b, (profile, noise)| {
                    let bits: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
                    b.iter(|| {
                        let mut sys =
                            System::new(profile.clone(), 9).with_noise(noise.clone()).expect("preset noise is valid");
                        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
                        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
                        let mut channel =
                            CovertChannel::new(AttackConfig::for_profile(profile)).unwrap();
                        black_box(channel.transmit(&mut sys, sender, receiver, &bits))
                    });
                },
            );
        }
    }
    group.finish();
}

/// Table 3: receiving 256 bits from a single-stepped enclave.
fn table3_sgx(c: &mut Criterion) {
    c.bench_function("table3_sgx_256_bits", |b| {
        let profile = MicroarchProfile::skylake();
        let secret: Vec<bool> = (0..256).map(|i| i % 5 == 0).collect();
        b.iter(|| {
            let mut sys = System::new(profile.clone(), 10);
            let receiver = sys.spawn("spy", AslrPolicy::Disabled);
            let mut enclave =
                Enclave::launch(&mut sys, "enclave", EnclaveSender::new(secret.clone()));
            let controller = EnclaveController::new();
            let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile)).unwrap();
            black_box(channel.receive_from_enclave(
                &mut sys,
                &mut enclave,
                &controller,
                receiver,
                secret.len(),
            ))
        });
    });
}

criterion_group!(tables, table1_rows, table2_covert, table3_sgx);
criterion_main!(tables);
