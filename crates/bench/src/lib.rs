//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmarks live in `benches/`:
//!
//! * `figures` — one benchmark per reproduced figure workload (Figs. 2–9);
//! * `tables` — the Table 1/2/3 workloads;
//! * `attack_paths` — hot attack primitives (predict/update, prime, probe,
//!   full read-bit rounds, block execution);
//! * `ablations` — design-choice ablations (counter flavour, prime
//!   pollution budget, noise level, perceptron substrate).

#![forbid(unsafe_code)]

use bscope_bpu::MicroarchProfile;
use bscope_os::{AslrPolicy, Pid, System};

/// A standard two-process system for attack benchmarks.
#[must_use]
pub fn attack_fixture(profile: MicroarchProfile, seed: u64) -> (System, Pid, Pid, u64) {
    let mut sys = System::new(profile, seed);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(0x6d);
    (sys, victim, spy, target)
}
