//! Attack-under-defense evaluation harness.

use crate::if_conversion::IfConvertedVictim;
use crate::no_predict::NoPredictPolicy;
use crate::partitioned::PartitionedBpuPolicy;
use crate::randomized_pht::{register_context, RandomizedPhtPolicy};
use bscope_bpu::{BackendKind, MicroarchProfile};
use bscope_core::{AttackConfig, BranchScope};
use bscope_os::{AslrPolicy, System, Workload};
use bscope_uarch::{MeasurementFuzz, NOISE_CTX};
use bscope_victims::{SecretBranchVictim, VICTIM_BRANCH_OFFSET};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A defense configuration to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub enum Mitigation {
    /// Unmitigated baseline.
    None,
    /// Per-process PHT index randomization (§10.2), optionally re-keyed
    /// every given number of branches.
    RandomizedPht {
        /// Re-randomization period in branches; `None` = one-time keying.
        rekey_interval: Option<u64>,
    },
    /// Per-context BPU partitioning (§10.2).
    PartitionedBpu {
        /// Number of partitions (power of two).
        partitions: u32,
    },
    /// Flagged sensitive branches bypass prediction entirely (§10.2).
    NoPredictSensitive,
    /// Noisy performance counters / timing measurements (§10.2).
    NoisyMeasurements(MeasurementFuzz),
    /// Stochastic prediction FSM: updates randomly suppressed (§10.2).
    StochasticFsm {
        /// Probability that a branch's FSM update is skipped.
        skip_probability: f64,
    },
    /// Victim compiled with if-conversion: no secret-dependent branch
    /// exists (§10.1).
    IfConversion,
}

impl fmt::Display for Mitigation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mitigation::None => f.write_str("none (baseline)"),
            Mitigation::RandomizedPht { rekey_interval: None } => {
                f.write_str("randomized PHT indexing (one-time)")
            }
            Mitigation::RandomizedPht { rekey_interval: Some(n) } => {
                write!(f, "randomized PHT indexing (re-key every {n} branches)")
            }
            Mitigation::PartitionedBpu { partitions } => {
                write!(f, "partitioned BPU ({partitions} partitions)")
            }
            Mitigation::NoPredictSensitive => f.write_str("no prediction for sensitive branches"),
            Mitigation::NoisyMeasurements(_) => f.write_str("noisy counters/timers"),
            Mitigation::StochasticFsm { skip_probability } => {
                write!(f, "stochastic FSM (skip p={skip_probability})")
            }
            Mitigation::IfConversion => f.write_str("if-converted victim (cmov)"),
        }
    }
}

/// Result of evaluating the attack against one mitigation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// The evaluated defense.
    pub mitigation: Mitigation,
    /// Secret bits the spy attempted to read.
    pub bits: usize,
    /// Fraction of bits read incorrectly. ≈0 means the attack works;
    /// ≈0.5 means the spy learned nothing (coin flipping).
    pub error_rate: f64,
}

impl EvalReport {
    /// Whether the defense destroyed the channel (error indistinguishable
    /// from guessing, with slack for finite samples).
    #[must_use]
    pub fn defeated(&self) -> bool {
        self.error_rate > 0.25
    }
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<48} error {:>6.2}%  -> {}",
            self.mitigation.to_string(),
            100.0 * self.error_rate,
            if self.defeated() { "attack DEFEATED" } else { "attack still works" },
        )
    }
}

/// Runs the BranchScope side-channel (spy reading a victim's secret branch
/// bit stream) under `mitigation` and reports the residual error rate.
///
/// The victim and spy co-reside as in the paper's §7 setup; the secret is
/// uniformly random. For [`Mitigation::IfConversion`] the victim runs the
/// branch-free `cmov` build; every other case runs the ordinary Listing-2
/// victim with the defense installed in hardware.
#[must_use]
pub fn evaluate(
    mitigation: &Mitigation,
    profile: &MicroarchProfile,
    bits: usize,
    seed: u64,
) -> EvalReport {
    evaluate_backend(mitigation, profile, BackendKind::Hybrid, bits, seed)
}

/// [`evaluate`] against an explicit predictor backend: the defenses are
/// policy wrappers around the core's BPU, so every one of them must compose
/// with any substrate ([`BackendKind::Tage`], [`BackendKind::Perceptron`]),
/// not just the paper's hybrid.
#[must_use]
pub fn evaluate_backend(
    mitigation: &Mitigation,
    profile: &MicroarchProfile,
    backend: BackendKind,
    bits: usize,
    seed: u64,
) -> EvalReport {
    let mut sys = System::with_backend(profile.clone(), backend, seed);
    let victim = sys.spawn("victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
    let victim_ctx = sys.process(victim).ctx();

    // Install the defense.
    match mitigation {
        Mitigation::None | Mitigation::IfConversion => {}
        Mitigation::RandomizedPht { rekey_interval } => {
            let mut policy = RandomizedPhtPolicy::new(seed ^ 0xDEFE_17CE);
            for ctx in [sys.process(victim).ctx(), sys.process(spy).ctx(), NOISE_CTX] {
                register_context(&mut policy, ctx);
            }
            let policy = match rekey_interval {
                Some(n) => policy.with_rekey_interval(*n),
                None => policy,
            };
            sys.set_policy(Box::new(policy));
        }
        Mitigation::PartitionedBpu { partitions } => {
            sys.set_policy(Box::new(PartitionedBpuPolicy::new(
                profile.pht_size as u64,
                *partitions,
            )));
        }
        Mitigation::NoPredictSensitive => {
            sys.set_policy(Box::new(
                NoPredictPolicy::new().with_protected(victim_ctx, target),
            ));
        }
        Mitigation::NoisyMeasurements(fuzz) => {
            sys.set_measurement_fuzz(Some(*fuzz)).expect("evaluated fuzz configs are valid");
        }
        Mitigation::StochasticFsm { skip_probability } => {
            sys.set_policy(Box::new(crate::stochastic_fsm::StochasticFsmPolicy::new(
                *skip_probability,
                seed ^ 0x570C,
            )));
        }
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC2);
    let secret: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let mut attack = BranchScope::new(AttackConfig::for_backend(profile, backend))
        .expect("canonical config is valid");

    let mut errors = 0usize;
    match mitigation {
        Mitigation::IfConversion => {
            let mut workload = IfConvertedVictim::new(secret.clone());
            for &bit in &secret {
                let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
                    let mut cpu = sys.cpu(victim);
                    workload.step(&mut cpu);
                });
                if SecretBranchVictim::bit_from_outcome(outcome) != bit {
                    errors += 1;
                }
            }
        }
        _ => {
            let mut workload = SecretBranchVictim::new(secret.clone());
            for &bit in &secret {
                let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
                    let mut cpu = sys.cpu(victim);
                    workload.step(&mut cpu);
                });
                if SecretBranchVictim::bit_from_outcome(outcome) != bit {
                    errors += 1;
                }
            }
        }
    }

    EvalReport {
        mitigation: mitigation.clone(),
        bits,
        error_rate: if bits == 0 { 0.0 } else { errors as f64 / bits as f64 },
    }
}

/// Performance cost of a defense on a *benign* workload: the misprediction
/// rate of a loop-heavy program (7 taken iterations, 1 not-taken exit,
/// repeated) under the mitigation, which an unmitigated predictor learns
/// almost perfectly. The paper notes most of its defenses trade performance
/// for security (§10); this quantifies the trade on the model.
#[must_use]
pub fn benign_overhead(mitigation: &Mitigation, profile: &MicroarchProfile, seed: u64) -> f64 {
    let mut sys = System::new(profile.clone(), seed);
    let app = sys.spawn("app", AslrPolicy::Disabled);
    let app_ctx = sys.process(app).ctx();
    let hot_branch = sys.process(app).vaddr_of(0x50);
    match mitigation {
        Mitigation::None | Mitigation::IfConversion | Mitigation::NoisyMeasurements(_) => {}
        Mitigation::RandomizedPht { rekey_interval } => {
            let mut policy = RandomizedPhtPolicy::new(seed ^ 0xDEFE_17CE);
            register_context(&mut policy, app_ctx);
            let policy = match rekey_interval {
                Some(n) => policy.with_rekey_interval(*n),
                None => policy,
            };
            sys.set_policy(Box::new(policy));
        }
        Mitigation::PartitionedBpu { partitions } => {
            sys.set_policy(Box::new(PartitionedBpuPolicy::new(
                profile.pht_size as u64,
                *partitions,
            )));
        }
        Mitigation::NoPredictSensitive => {
            // The developer flagged this (hot!) branch as sensitive.
            sys.set_policy(Box::new(NoPredictPolicy::new().with_protected(app_ctx, hot_branch)));
        }
        Mitigation::StochasticFsm { skip_probability } => {
            sys.set_policy(Box::new(crate::stochastic_fsm::StochasticFsmPolicy::new(
                *skip_probability,
                seed ^ 0x570C,
            )));
        }
    }
    let iterations = 4_000u64;
    for i in 0..iterations {
        let taken = i % 8 != 7;
        sys.cpu(app).branch_at(0x50, bscope_bpu::Outcome::from_bool(taken));
    }
    let counters = sys.cpu(app).counters();
    counters.branch_misses as f64 / counters.branches_retired as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: usize = 400;

    fn run(mitigation: Mitigation) -> EvalReport {
        evaluate(&mitigation, &MicroarchProfile::skylake(), BITS, 0xE7A1)
    }

    #[test]
    fn baseline_attack_succeeds() {
        let r = run(Mitigation::None);
        assert!(r.error_rate < 0.02, "baseline error {:.3}", r.error_rate);
        assert!(!r.defeated());
    }

    #[test]
    fn randomized_pht_defeats_the_attack() {
        let r = run(Mitigation::RandomizedPht { rekey_interval: None });
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn periodic_rekey_also_defeats() {
        let r = run(Mitigation::RandomizedPht { rekey_interval: Some(1_000) });
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn partitioning_defeats_the_attack() {
        let r = run(Mitigation::PartitionedBpu { partitions: 4 });
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn no_predict_defeats_the_attack() {
        let r = run(Mitigation::NoPredictSensitive);
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn stochastic_fsm_degrades_the_attack() {
        let r = run(Mitigation::StochasticFsm { skip_probability: 0.5 });
        assert!(r.error_rate > 0.1, "error {:.3}", r.error_rate);
    }

    #[test]
    fn noisy_measurements_degrade_the_attack() {
        let r = run(Mitigation::NoisyMeasurements(MeasurementFuzz::strong()));
        assert!(r.error_rate > 0.15, "error {:.3}", r.error_rate);
    }

    #[test]
    fn if_conversion_defeats_the_attack() {
        let r = run(Mitigation::IfConversion);
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn benign_overhead_ordering_is_sane() {
        let profile = MicroarchProfile::skylake();
        let base = benign_overhead(&Mitigation::None, &profile, 1);
        assert!(base < 0.16, "unmitigated loop mispredicts ~1/8 worst case: {base}");
        // Randomized indexing costs nothing on a single workload…
        let rand_pht =
            benign_overhead(&Mitigation::RandomizedPht { rekey_interval: None }, &profile, 1);
        assert!(rand_pht <= base + 0.02, "{rand_pht} vs {base}");
        // …while no-predict on a hot branch and a stochastic FSM clearly cost.
        let nopredict = benign_overhead(&Mitigation::NoPredictSensitive, &profile, 1);
        assert!(nopredict > base + 0.5, "static not-taken on a 7/8-taken loop: {nopredict}");
        let stochastic =
            benign_overhead(&Mitigation::StochasticFsm { skip_probability: 0.5 }, &profile, 1);
        assert!(stochastic >= base, "{stochastic} vs {base}");
    }

    #[test]
    fn baseline_attack_succeeds_on_tage_backend() {
        // The base-table fallback keeps the channel alive on TAGE, and the
        // evaluation harness must drive it through the generic surface.
        let r = evaluate_backend(
            &Mitigation::None,
            &MicroarchProfile::skylake(),
            BackendKind::Tage,
            BITS,
            0xE7A1,
        );
        assert!(!r.defeated(), "TAGE base table still leaks: error {:.3}", r.error_rate);
    }

    #[test]
    fn randomized_pht_defeats_the_attack_on_tage_backend() {
        // Defenses are policy wrappers: they must compose with any backend.
        let r = evaluate_backend(
            &Mitigation::RandomizedPht { rekey_interval: None },
            &MicroarchProfile::skylake(),
            BackendKind::Tage,
            BITS,
            0xE7A1,
        );
        assert!(r.defeated(), "error {:.3}", r.error_rate);
    }

    #[test]
    fn perceptron_backend_resists_even_the_unmitigated_attack() {
        // The structural headline: with no saturating counter to prime, the
        // spy reads close to coin flips without any defense installed.
        let r = evaluate_backend(
            &Mitigation::None,
            &MicroarchProfile::skylake(),
            BackendKind::Perceptron,
            BITS,
            0xE7A1,
        );
        assert!(
            r.error_rate > 0.25,
            "perceptron should degrade the attack toward chance: error {:.3}",
            r.error_rate
        );
    }

    #[test]
    fn reports_render() {
        let r = run(Mitigation::None);
        let text = r.to_string();
        assert!(text.contains("baseline"));
        assert!(Mitigation::PartitionedBpu { partitions: 2 }.to_string().contains("2"));
    }
}
