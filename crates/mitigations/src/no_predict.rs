//! No-prediction for flagged sensitive branches (§10.2).

use bscope_bpu::VirtAddr;
use bscope_uarch::{BpuPolicy, ContextId};
use std::collections::HashSet;

/// The developer-assisted defense: "a software developer can indicate the
/// branches capable of leaking secret information and request them to be
/// protected. Then the CPU must avoid predicting these branches, rely
/// always on static prediction and avoid updating any BPU structures"
/// (§10.2).
///
/// Flagged branches are identified by `(context, virtual address)`. The
/// core statically predicts them not-taken and leaves all predictor state
/// untouched, so no information about their direction ever reaches the
/// shared BPU. The paper notes the cost (every taken execution pays a
/// misprediction-sized stall) and that — like all software-visible
/// schemes — this protects the victim but not against covert channels.
#[derive(Debug, Clone, Default)]
pub struct NoPredictPolicy {
    protected: HashSet<(ContextId, VirtAddr)>,
}

impl NoPredictPolicy {
    /// A policy protecting no branches yet.
    #[must_use]
    pub fn new() -> Self {
        NoPredictPolicy::default()
    }

    /// Flags the branch at `addr` in context `ctx` as sensitive.
    pub fn protect(&mut self, ctx: ContextId, addr: VirtAddr) {
        self.protected.insert((ctx, addr));
    }

    /// Builder-style [`NoPredictPolicy::protect`].
    #[must_use]
    pub fn with_protected(mut self, ctx: ContextId, addr: VirtAddr) -> Self {
        self.protect(ctx, addr);
        self
    }

    /// Number of protected branches.
    #[must_use]
    pub fn protected_count(&self) -> usize {
        self.protected.len()
    }
}

impl BpuPolicy for NoPredictPolicy {
    fn bypass_prediction(&self, ctx: ContextId, addr: VirtAddr) -> bool {
        self.protected.contains(&(ctx, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
    use bscope_uarch::SimCore;

    #[test]
    fn protected_branch_leaves_no_bpu_trace() {
        let mut core = SimCore::new(MicroarchProfile::skylake(), 1);
        let addr = 0x40_006d;
        core.set_policy(Box::new(NoPredictPolicy::new().with_protected(0, addr)));
        for _ in 0..5 {
            let ev = core.execute_branch(addr, Outcome::Taken);
            assert!(ev.mispredicted, "static not-taken always misses a taken branch");
        }
        assert_eq!(core.bpu().pht_state(addr), PhtState::WeaklyNotTaken, "PHT untouched");
        assert!(!core.bpu().btb().contains(addr), "BTB untouched");
        assert_eq!(core.bpu().ghr().value(), 0, "GHR untouched");
    }

    #[test]
    fn unprotected_branches_predict_normally() {
        let mut core = SimCore::new(MicroarchProfile::skylake(), 2);
        core.set_policy(Box::new(NoPredictPolicy::new().with_protected(0, 0x999)));
        for _ in 0..3 {
            core.execute_branch(0x40_006d, Outcome::Taken);
        }
        let ev = core.execute_branch(0x40_006d, Outcome::Taken);
        assert!(!ev.mispredicted, "trained unprotected branch predicts fine");
    }

    #[test]
    fn protection_is_per_context() {
        let policy = NoPredictPolicy::new().with_protected(1, 0x6d);
        assert!(policy.bypass_prediction(1, 0x6d));
        assert!(!policy.bypass_prediction(0, 0x6d));
        assert_eq!(policy.protected_count(), 1);
    }
}
