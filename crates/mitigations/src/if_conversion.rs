//! If-conversion of the victim (§10.1).

use bscope_os::{CpuView, Workload};

/// A victim whose secret-dependent branch has been *if-converted*: the
/// compiler replaced the conditional branch with a conditional move
/// (`cmov`), "effectively turning control dependencies into data
/// dependencies" (§10.1). The secret still selects the computed value, but
/// **no conditional branch executes**, so the BPU never observes the
/// secret.
///
/// This is the software counterpart of
/// [`NoPredictPolicy`](crate::NoPredictPolicy): it requires recompiling the victim, works on
/// unmodified hardware, and — as the paper stresses — does nothing against
/// covert channels where both endpoints cooperate.
#[derive(Debug, Clone)]
pub struct IfConvertedVictim {
    secret: Vec<bool>,
    index: usize,
    accumulator: u64,
}

impl IfConvertedVictim {
    /// If-converted equivalent of
    /// [`SecretBranchVictim`](bscope_victims::SecretBranchVictim).
    #[must_use]
    pub fn new(secret: Vec<bool>) -> Self {
        IfConvertedVictim { secret, index: 0, accumulator: 0 }
    }

    /// Bits processed so far.
    #[must_use]
    pub fn bits_executed(&self) -> usize {
        self.index
    }

    /// The (dummy) data result of the computation — demonstrates the
    /// secret still *influences dataflow*, just not control flow.
    #[must_use]
    pub fn accumulator(&self) -> u64 {
        self.accumulator
    }
}

impl Workload for IfConvertedVictim {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.index >= self.secret.len() {
            return false;
        }
        // cmov: a data-dependent select, no branch. Slightly slower than
        // the well-predicted branch it replaces (the paper notes highly
        // predictable branches typically perform worse when if-converted).
        let bit = u64::from(self.secret[self.index]);
        self.accumulator = self.accumulator.wrapping_mul(3).wrapping_add(bit);
        cpu.work(9);
        self.index += 1;
        self.index < self.secret.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::{AslrPolicy, System};

    #[test]
    fn executes_no_branches_at_all() {
        let mut sys = System::new(MicroarchProfile::skylake(), 3);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut v = IfConvertedVictim::new(vec![true, false, true, true]);
        let mut cpu = sys.cpu(pid);
        v.run(&mut cpu, 10);
        assert_eq!(v.bits_executed(), 4);
        assert_eq!(sys.cpu(pid).counters().branches_retired, 0, "no branch retired");
        assert_eq!(sys.core().bpu().stats().branches, 0, "BPU never consulted");
    }

    #[test]
    fn computation_still_depends_on_secret() {
        let mut sys = System::new(MicroarchProfile::skylake(), 4);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let run = |secret: Vec<bool>, sys: &mut System| {
            let mut v = IfConvertedVictim::new(secret);
            let mut cpu = sys.cpu(pid);
            v.run(&mut cpu, 10);
            v.accumulator()
        };
        let a = run(vec![true, false], &mut sys);
        let b = run(vec![false, true], &mut sys);
        assert_ne!(a, b);
    }
}
