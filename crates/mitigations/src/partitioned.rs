//! BPU partitioning (§10.2 "Partitioning the BPU").

use bscope_bpu::VirtAddr;
use bscope_uarch::{BpuPolicy, ContextId};

/// Partitions the predictor tables between hardware contexts: each context
/// is confined to its own slice of the index space, so "the attacker loses
/// the ability to create collisions with the victim" (§10.2). SGX code
/// using a separate predictor is the `partitions = 2` special case.
///
/// The index transformation folds the architectural address into
/// `table_span / partitions` entries and offsets it by the context's
/// partition base. `table_span` should be (a multiple of) the machine's
/// PHT size so the partitions tile the real tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedBpuPolicy {
    table_span: u64,
    partitions: u32,
}

impl PartitionedBpuPolicy {
    /// Splits a `table_span`-entry index space into `partitions` slices.
    ///
    /// # Panics
    ///
    /// Panics unless `table_span` is a power of two, `partitions` is a
    /// power of two, and `partitions <= table_span`.
    #[must_use]
    pub fn new(table_span: u64, partitions: u32) -> Self {
        assert!(table_span.is_power_of_two(), "table span must be a power of two");
        assert!(partitions.is_power_of_two(), "partition count must be a power of two");
        assert!(u64::from(partitions) <= table_span, "more partitions than entries");
        PartitionedBpuPolicy { table_span, partitions }
    }

    /// Entries available to each context.
    #[must_use]
    pub fn partition_size(&self) -> u64 {
        self.table_span / u64::from(self.partitions)
    }
}

impl BpuPolicy for PartitionedBpuPolicy {
    fn index_addr(&self, ctx: ContextId, addr: VirtAddr) -> VirtAddr {
        let slice = self.partition_size();
        let base = u64::from(ctx % self.partitions) * slice;
        // Preserve the high address bits so BTB tags still distinguish
        // branches; only the low (index) bits are partitioned.
        (addr & !(self.table_span - 1)) | base | (addr % slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_map_to_disjoint_slices() {
        let p = PartitionedBpuPolicy::new(16_384, 4);
        assert_eq!(p.partition_size(), 4_096);
        let a = p.index_addr(0, 0x40_006d) & 16_383;
        let b = p.index_addr(1, 0x40_006d) & 16_383;
        assert_ne!(a, b);
        assert!(a < 4_096);
        assert!((4_096..8_192).contains(&b));
    }

    #[test]
    fn same_context_same_low_bits_collide() {
        // Within one partition the predictor still works normally.
        let p = PartitionedBpuPolicy::new(16_384, 4);
        assert_eq!(
            p.index_addr(2, 0x1000) & 16_383,
            p.index_addr(2, 0x1000 + 4_096) & 16_383,
            "aliasing within the partition is preserved"
        );
    }

    #[test]
    fn context_wraps_across_partition_count() {
        let p = PartitionedBpuPolicy::new(1_024, 2);
        assert_eq!(p.index_addr(0, 7) & 1_023, p.index_addr(2, 7) & 1_023);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_span() {
        let _ = PartitionedBpuPolicy::new(1_000, 2);
    }
}
