//! Mitigations against BranchScope (paper §10) and their evaluation.
//!
//! Hardware defenses (§10.2) are [`BpuPolicy`](bscope_uarch::BpuPolicy)
//! implementations installed on the simulated core:
//!
//! * [`RandomizedPhtPolicy`] — per-software-entity PHT index randomization,
//!   optionally re-keyed periodically;
//! * [`PartitionedBpuPolicy`] — per-context partitions of the predictor
//!   tables, removing cross-context collisions entirely;
//! * [`NoPredictPolicy`] — flagged sensitive branches bypass the predictor
//!   (static prediction, no BPU updates);
//! * [`StochasticFsmPolicy`] — randomly suppressed FSM updates, the
//!   "more stochastic" prediction FSM of §10.2;
//! * noisy counters/timers via
//!   [`MeasurementFuzz`] (re-exported);
//! * [`AttackDetector`] — the §10.2 detection class: flags the spy's
//!   pathological misprediction footprint from performance counters.
//!
//! The software defense (§10.1) is [`IfConvertedVictim`]: a victim whose
//! secret-dependent branch has been compiled into a `cmov`, executing no
//! conditional branch at all.
//!
//! [`evaluate`] runs the covert-channel benchmark under a mitigation and
//! reports the residual error rate — an unprotected channel reads with
//! <1 % error; a dead channel sits at ≈50 % (coin flipping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod eval;
mod if_conversion;
mod no_predict;
mod partitioned;
mod randomized_pht;
mod stochastic_fsm;

pub use bscope_uarch::MeasurementFuzz;
pub use detector::{AttackDetector, DetectionSample};
pub use eval::{benign_overhead, evaluate, evaluate_backend, EvalReport, Mitigation};
pub use if_conversion::IfConvertedVictim;
pub use no_predict::NoPredictPolicy;
pub use partitioned::PartitionedBpuPolicy;
pub use randomized_pht::RandomizedPhtPolicy;
pub use stochastic_fsm::StochasticFsmPolicy;
