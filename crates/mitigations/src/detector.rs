//! Attack-footprint detection (§10.2 "a class of solutions may focus on
//! detecting the attack footprint and invoking mitigations such as freezing
//! or killing the attacker process").

use bscope_os::{Pid, System};
use bscope_uarch::PerfCounters;
use serde::{Deserialize, Serialize};

/// Verdict for one monitored window of a process's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionSample {
    /// Branches the process retired during the window.
    pub branches: u64,
    /// Its misprediction rate in the window.
    pub misprediction_rate: f64,
    /// Whether this window matches the attack signature.
    pub flagged: bool,
}

/// A sampling detector watching a process's performance counters for the
/// BranchScope footprint.
///
/// The spy's stage-1 randomization code is pathological by design: long
/// runs of *pattern-free* branches whose misprediction rate is pinned near
/// 50 % — far above anything a trained predictor shows for real programs
/// (typically a few percent). The detector flags a process when a window
/// with enough branches sustains a misprediction rate above the threshold;
/// an OS (outside SGX) could then freeze or kill it, or an enclave could
/// remap itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackDetector {
    /// Minimum branches per window before a verdict is attempted.
    pub min_branches: u64,
    /// Misprediction rate above which a window is flagged.
    pub rate_threshold: f64,
    /// Consecutive flagged windows required to report an attack.
    pub windows_to_convict: u32,
}

impl AttackDetector {
    /// A configuration separating the spy (~50 % mispredictions) from
    /// ordinary workloads (<20 %).
    #[must_use]
    pub fn new() -> Self {
        AttackDetector { min_branches: 200, rate_threshold: 0.35, windows_to_convict: 3 }
    }

    /// Evaluates one monitoring window from two counter snapshots.
    #[must_use]
    pub fn evaluate_window(
        &self,
        before: &PerfCounters,
        after: &PerfCounters,
    ) -> DetectionSample {
        let delta = after.since(before);
        let rate = if delta.branches_retired == 0 {
            0.0
        } else {
            delta.branch_misses as f64 / delta.branches_retired as f64
        };
        DetectionSample {
            branches: delta.branches_retired,
            misprediction_rate: rate,
            flagged: delta.branches_retired >= self.min_branches && rate >= self.rate_threshold,
        }
    }

    /// Runs `windows` monitoring windows around `step`, which executes one
    /// quantum of the monitored process's work, and reports whether the
    /// process was convicted (enough consecutive flagged windows).
    pub fn monitor(
        &self,
        sys: &mut System,
        pid: Pid,
        windows: usize,
        mut step: impl FnMut(&mut System),
    ) -> (bool, Vec<DetectionSample>) {
        let mut samples = Vec::with_capacity(windows);
        let mut consecutive = 0u32;
        let mut convicted = false;
        for _ in 0..windows {
            let before = sys.cpu(pid).counters();
            step(sys);
            let after = sys.cpu(pid).counters();
            let sample = self.evaluate_window(&before, &after);
            consecutive = if sample.flagged { consecutive + 1 } else { 0 };
            convicted |= consecutive >= self.windows_to_convict;
            samples.push(sample);
        }
        (convicted, samples)
    }
}

impl Default for AttackDetector {
    fn default() -> Self {
        AttackDetector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, Outcome};
    use bscope_core::{AttackConfig, BranchScope};
    use bscope_os::AslrPolicy;

    #[test]
    fn spy_running_branchscope_is_convicted() {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 0xDE7);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();

        let detector = AttackDetector::new();
        let (convicted, samples) = detector.monitor(&mut sys, spy, 8, |sys| {
            // One attack round per window: prime + victim + probe.
            attack.read_bit(sys, spy, target, |sys| {
                sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
            });
        });
        assert!(convicted, "the spy's random-branch prime is a blatant footprint: {samples:?}");
        assert!(samples.iter().filter(|s| s.flagged).count() >= 3);
    }

    #[test]
    fn ordinary_workload_is_not_flagged() {
        let mut sys = System::new(MicroarchProfile::skylake(), 0xBEB);
        let app = sys.spawn("app", AslrPolicy::Disabled);
        // A loop-heavy program: a few well-predicted branches repeated.
        let detector = AttackDetector::new();
        let (convicted, samples) = detector.monitor(&mut sys, app, 8, |sys| {
            let mut cpu = sys.cpu(app);
            for i in 0..300u64 {
                // 7 taken loop iterations, one not-taken exit, repeatedly.
                cpu.branch_at(0x50, Outcome::from_bool(i % 8 != 7));
            }
        });
        assert!(!convicted, "benign workload convicted: {samples:?}");
        let worst = samples
            .iter()
            .map(|s| s.misprediction_rate)
            .fold(0.0f64, f64::max);
        assert!(worst < 0.35, "benign misprediction rate too high: {worst}");
    }

    #[test]
    fn tiny_windows_are_inconclusive() {
        let detector = AttackDetector::new();
        let before = PerfCounters::new();
        let mut after = PerfCounters::new();
        for _ in 0..10 {
            after.record_branch(true, 100);
        }
        let sample = detector.evaluate_window(&before, &after);
        assert!(!sample.flagged, "too few branches for a verdict");
        assert!((sample.misprediction_rate - 1.0).abs() < 1e-12);
    }
}
