//! Stochastic prediction FSM (§10.2 "Other solutions").

use bscope_bpu::VirtAddr;
use bscope_uarch::{BpuPolicy, ContextId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Makes the prediction FSM stochastic: each dynamic branch's state update
/// is *skipped* with probability `skip_probability`, "interfering with the
/// attacker's ability to precisely infer the direction of the branch taken
/// by the victim" (§10.2).
///
/// With the update suppressed at random, the attacker's carefully primed
/// entry no longer deterministically encodes the victim's single execution:
/// the victim's branch may leave no trace at all, and the attacker's own
/// prime/probe branches land in uncertain states. The performance cost on
/// benign code is mild — a skipped update merely slows FSM training — which
/// is what makes this a plausible hardware knob.
#[derive(Debug)]
pub struct StochasticFsmPolicy {
    skip_probability: f64,
    rng: StdRng,
}

impl StochasticFsmPolicy {
    /// Policy skipping each update with probability `skip_probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `skip_probability` lies in `[0, 1]`.
    #[must_use]
    pub fn new(skip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&skip_probability),
            "skip probability must be in [0,1], got {skip_probability}"
        );
        StochasticFsmPolicy { skip_probability, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configured skip probability.
    #[must_use]
    pub fn skip_probability(&self) -> f64 {
        self.skip_probability
    }
}

impl BpuPolicy for StochasticFsmPolicy {
    fn suppress_update(&mut self, _ctx: ContextId, _addr: VirtAddr) -> bool {
        self.skip_probability > 0.0 && self.rng.gen_bool(self.skip_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
    use bscope_uarch::SimCore;

    #[test]
    fn zero_probability_is_transparent() {
        let mut core = SimCore::new(MicroarchProfile::skylake(), 1);
        core.set_policy(Box::new(StochasticFsmPolicy::new(0.0, 2)));
        for _ in 0..4 {
            core.execute_branch(0x100, Outcome::Taken);
        }
        assert_eq!(core.bpu().pht_state(0x100), PhtState::StronglyTaken);
    }

    #[test]
    fn full_suppression_freezes_the_fsm() {
        let mut core = SimCore::new(MicroarchProfile::skylake(), 3);
        core.set_policy(Box::new(StochasticFsmPolicy::new(1.0, 4)));
        for _ in 0..10 {
            core.execute_branch(0x100, Outcome::Taken);
        }
        assert_eq!(
            core.bpu().pht_state(0x100),
            PhtState::WeaklyNotTaken,
            "no update ever commits"
        );
        assert!(!core.bpu().btb().contains(0x100), "BTB untouched too");
    }

    #[test]
    fn partial_suppression_slows_training_statistically() {
        // With p = 0.5, reaching saturation takes more executions on
        // average; over many fresh entries, some are still unsaturated
        // after 4 taken branches while an unmitigated core saturates all.
        let mut core = SimCore::new(MicroarchProfile::haswell(), 5);
        core.set_policy(Box::new(StochasticFsmPolicy::new(0.5, 6)));
        let mut unsaturated = 0;
        for i in 0..200u64 {
            let addr = 0x1000 + i * 3;
            for _ in 0..4 {
                core.execute_branch(addr, Outcome::Taken);
            }
            if core.bpu().pht_state(addr) != PhtState::StronglyTaken {
                unsaturated += 1;
            }
        }
        assert!(
            (40..200).contains(&unsaturated),
            "about two thirds of entries should lag: {unsaturated}/200"
        );
    }

    #[test]
    #[should_panic(expected = "skip probability")]
    fn rejects_out_of_range_probability() {
        let _ = StochasticFsmPolicy::new(1.5, 0);
    }
}
