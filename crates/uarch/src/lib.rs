//! Simulated CPU core for the BranchScope reproduction.
//!
//! `bscope-uarch` layers an execution/timing model on top of the
//! [`bscope_bpu`] predictor structures:
//!
//! * [`SimCore`] — a core that executes conditional branches against a
//!   shared [`PredictorBackend`](bscope_bpu::PredictorBackend) — the paper's
//!   [`HybridPredictor`](bscope_bpu::HybridPredictor) by default
//!   ([`SimCore::new`]), or the TAGE / perceptron substrates via
//!   [`SimCore::with_backend`] — charges cycles for them and exposes the
//!   two measurement channels the paper's attacker uses: **performance
//!   counters** (§7) and the **timestamp counter** (§8);
//! * [`TimingModel`] — per-branch latency calibrated against the paper's
//!   Figure 7 distributions (hit ≈ 85 cycles, misprediction ≈ +50, heavy
//!   upper tail, extra cost and variance for cold-i-cache executions);
//! * [`InstructionCache`] — a direct-mapped i-cache model driving the
//!   first-vs-second measurement gap of Figure 8;
//! * [`PerfCounters`] — retired-branch / mispredicted-branch counters as
//!   read by `spy_function()` in the paper's Listing 3;
//! * [`NoiseConfig`] / SMT background activity — unrelated branch execution
//!   sharing the BPU, the "with noise" condition of Tables 2 and 3.
//!
//! # Example
//!
//! ```
//! use bscope_bpu::{MicroarchProfile, Outcome};
//! use bscope_uarch::SimCore;
//!
//! let mut core = SimCore::new(MicroarchProfile::skylake(), 7);
//! let warm = core.execute_branch(0x30_0000, Outcome::Taken);
//! let again = core.execute_branch(0x30_0000, Outcome::Taken);
//! assert!(warm.cold && !again.cold);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core_impl;
mod counters;
mod event;
mod icache;
mod noise;
mod policy;
mod timing;

pub use config::ConfigError;
pub use core_impl::{ContextId, SimCore, NOISE_CTX};
// Re-exported so downstream crates can instrument a core without naming
// `bscope-trace` directly.
pub use bscope_trace::{Span, TraceEvent, TracedEvent, Tracer};
pub use policy::{BpuPolicy, MeasurementFuzz, NoPolicy};
pub use counters::PerfCounters;
pub use event::BranchEvent;
pub use icache::InstructionCache;
pub use noise::NoiseConfig;
pub use timing::TimingModel;
