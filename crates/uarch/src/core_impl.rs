//! The simulated core.

use crate::counters::PerfCounters;
use crate::event::BranchEvent;
use crate::icache::InstructionCache;
use crate::noise::NoiseConfig;
use crate::policy::{BpuPolicy, MeasurementFuzz, NoPolicy};
use crate::timing::TimingModel;
use bscope_bpu::{
    HybridPredictor, MicroarchProfile, Outcome, Prediction, PredictorBackend, PredictorKind,
    VirtAddr,
};
use bscope_trace::{Span, TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a hardware context (logical CPU / process) on the core.
///
/// Performance counters are kept per context, as on real hardware; the
/// predictor structures are shared by all contexts, which is the entire
/// premise of the attack.
pub type ContextId = u32;

/// Context id of the background-noise (SMT sibling) activity.
pub const NOISE_CTX: ContextId = ContextId::MAX;

/// A simulated physical core: one shared branch prediction unit, a cycle
/// clock, an instruction cache, per-context performance counters and an
/// optional background-noise context (the SMT sibling).
///
/// All stochastic behaviour (latency jitter, noise) flows from the seed
/// passed to [`SimCore::new`], so every experiment is reproducible.
///
/// # Example
///
/// ```
/// use bscope_bpu::{MicroarchProfile, Outcome};
/// use bscope_uarch::SimCore;
///
/// let mut core = SimCore::new(MicroarchProfile::haswell(), 1);
/// let before = core.counters(0);
/// core.execute_branch(0x40_0000, Outcome::Taken);
/// let delta = core.counters(0).since(&before);
/// assert_eq!(delta.branches_retired, 1);
/// ```
#[derive(Debug)]
pub struct SimCore {
    bpu: PredictorBackend,
    timing: TimingModel,
    icache: InstructionCache,
    counters: Vec<PerfCounters>,
    tsc: u64,
    last_noise_tsc: u64,
    rng: StdRng,
    noise: Option<NoiseParams>,
    policy: Box<dyn BpuPolicy>,
    fuzz: Option<MeasurementFuzz>,
    /// Structured-event tracer; disabled (and free) by default.
    tracer: Tracer,
}

/// Validated, `Copy` image of a [`NoiseConfig`], cached so the per-branch
/// noise checks in [`SimCore::execute_branch_in`] stay allocation-free
/// (`NoiseConfig` holds a `Range`, which is not `Copy`).
#[derive(Debug, Clone, Copy)]
struct NoiseParams {
    branches_per_kcycle: f64,
    addr_lo: u64,
    addr_hi: u64,
    taken_bias: f64,
}

impl From<&NoiseConfig> for NoiseParams {
    fn from(cfg: &NoiseConfig) -> Self {
        NoiseParams {
            branches_per_kcycle: cfg.branches_per_kcycle,
            addr_lo: cfg.addr_range.start,
            addr_hi: cfg.addr_range.end,
            taken_bias: cfg.taken_bias,
        }
    }
}

impl SimCore {
    /// Creates a core for the given microarchitecture with the paper's
    /// hybrid predictor, all randomness derived from `seed`.
    #[must_use]
    pub fn new(profile: MicroarchProfile, seed: u64) -> Self {
        SimCore::with_backend(PredictorBackend::Hybrid(HybridPredictor::new(profile)), seed)
    }

    /// Creates a core running on an explicit predictor backend (see
    /// [`bscope_bpu::BackendKind`]); [`SimCore::new`] is the hybrid special
    /// case. Timing parameters come from the backend's effective profile.
    #[must_use]
    pub fn with_backend(backend: PredictorBackend, seed: u64) -> Self {
        let timing = TimingModel::new(backend.profile().timing);
        SimCore {
            bpu: backend,
            timing,
            icache: InstructionCache::l1i_default(),
            counters: vec![PerfCounters::new(); 2],
            tsc: 0,
            last_noise_tsc: 0,
            rng: StdRng::seed_from_u64(seed),
            noise: None,
            policy: Box::new(NoPolicy),
            fuzz: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a hardware mitigation policy (see [`BpuPolicy`]); the
    /// default is the unmitigated machine.
    pub fn set_policy(&mut self, policy: Box<dyn BpuPolicy>) {
        self.policy = policy;
    }

    /// Installs measurement-channel fuzzing (noisy counters/timers, §10.2),
    /// or removes it with `None`.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`MeasurementFuzz::validate`],
    /// leaving the previous fuzz configuration in place.
    pub fn set_measurement_fuzz(
        &mut self,
        fuzz: Option<MeasurementFuzz>,
    ) -> Result<(), crate::ConfigError> {
        if let Some(f) = &fuzz {
            f.validate()?;
        }
        self.fuzz = fuzz;
        Ok(())
    }

    /// Enables background (SMT sibling) noise; pass `None` to disable.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`NoiseConfig::validate`], leaving
    /// the previous noise configuration in place.
    pub fn set_noise(&mut self, noise: Option<NoiseConfig>) -> Result<(), crate::ConfigError> {
        if let Some(cfg) = &noise {
            cfg.validate()?;
        }
        self.noise = noise.as_ref().map(NoiseParams::from);
        Ok(())
    }

    /// Builder-style variant of [`SimCore::set_noise`].
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`NoiseConfig::validate`].
    pub fn with_noise(mut self, noise: NoiseConfig) -> Result<Self, crate::ConfigError> {
        self.set_noise(Some(noise))?;
        Ok(self)
    }

    /// Installs a structured-event tracer (see [`bscope_trace`]). The
    /// default tracer is disabled and costs one branch per emit site;
    /// installing a sink-backed tracer records every retired branch, BTB
    /// install, noise burst and attack-stage span.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Removes and returns the tracer (leaving a disabled one), so a
    /// caller that lent the core a live tracer can drain its capture.
    #[must_use]
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Exclusive access to the tracer (emit sites outside the core, e.g.
    /// attack-stage spans, go through this).
    #[must_use]
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Emits a [`Span`] begin marker stamped with the current simulated
    /// time. Free when the tracer is disabled.
    pub fn trace_span_begin(&mut self, span: Span) {
        let tsc = self.tsc;
        self.tracer.emit_with(|| TraceEvent::SpanBegin { span, tsc });
    }

    /// Emits a [`Span`] end marker stamped with the current simulated
    /// time. Free when the tracer is disabled.
    pub fn trace_span_end(&mut self, span: Span) {
        let tsc = self.tsc;
        self.tracer.emit_with(|| TraceEvent::SpanEnd { span, tsc });
    }

    /// The microarchitecture profile of this core.
    #[must_use]
    pub fn profile(&self) -> &MicroarchProfile {
        self.bpu.profile()
    }

    /// Read access to the shared branch prediction unit.
    #[must_use]
    pub fn bpu(&self) -> &PredictorBackend {
        &self.bpu
    }

    /// Exclusive access to the shared branch prediction unit (mitigations,
    /// reverse-engineering tooling and tests use this).
    #[must_use]
    pub fn bpu_mut(&mut self) -> &mut PredictorBackend {
        &mut self.bpu
    }

    /// Exclusive access to the instruction cache.
    #[must_use]
    pub fn icache_mut(&mut self) -> &mut InstructionCache {
        &mut self.icache
    }

    /// Current value of the timestamp counter (`rdtscp`, §8). Reading it is
    /// free in the model; measurement overhead is folded into branch
    /// latencies, as in the paper's measurements.
    #[must_use]
    pub fn rdtscp(&self) -> u64 {
        self.tsc
    }

    /// Performance counters of context `ctx` (zero-extended for contexts
    /// that have not executed yet).
    #[must_use]
    pub fn counters(&self, ctx: ContextId) -> PerfCounters {
        self.counters.get(ctx as usize).copied().unwrap_or_default()
    }

    /// Advances the cycle clock without executing branches (models `nop`
    /// padding, `usleep`, or victim non-branch work). Background activity
    /// keeps running during the elapsed time — the spy's wait for the
    /// victim is exactly when the shared BPU is most exposed to noise.
    pub fn advance_cycles(&mut self, cycles: u64) {
        self.tsc += cycles;
        self.inject_pending_noise();
    }

    /// Executes one conditional branch in context 0 with the fall-through
    /// target convention. The common single-context entry point.
    pub fn execute_branch(&mut self, addr: VirtAddr, outcome: Outcome) -> BranchEvent {
        self.execute_branch_in(0, addr, outcome, None)
    }

    /// Executes one conditional branch in an explicit context.
    ///
    /// Injects pending background noise first (if configured), then runs
    /// the branch through the shared BPU, charges its latency on the cycle
    /// clock and records it in `ctx`'s performance counters.
    pub fn execute_branch_in(
        &mut self,
        ctx: ContextId,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> BranchEvent {
        self.inject_pending_noise();
        self.execute_branch_quiet(ctx, addr, outcome, target)
    }

    /// Executes a branch *without* triggering noise injection. Used for the
    /// noise branches themselves and by schedulers that manage interleaving
    /// explicitly.
    pub fn execute_branch_quiet(
        &mut self,
        ctx: ContextId,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> BranchEvent {
        let cold = !self.icache.touch(addr);
        // Set when the BPU commit path ran for a taken branch (the only
        // case that installs a BTB entry); feeds the trace event below.
        let mut btb_install: Option<(VirtAddr, VirtAddr)> = None;
        let (prediction, mispredicted) = if self.policy.bypass_prediction(ctx, addr) {
            // §10.2 "removing prediction for sensitive branches": static
            // not-taken prediction, no BPU state touched.
            let prediction = Prediction {
                direction: Outcome::NotTaken,
                used: PredictorKind::Bimodal,
                bimodal: Outcome::NotTaken,
                gshare: Outcome::NotTaken,
                btb_hit: false,
                target: None,
            };
            (prediction, outcome.is_taken())
        } else {
            let indexed = self.policy.index_addr(ctx, addr);
            if self.policy.suppress_update(ctx, addr) {
                // Stochastic-FSM defense: predict normally, skip the state
                // transition for this dynamic branch.
                let prediction = self.bpu.predict(indexed);
                (prediction, prediction.direction != outcome)
            } else {
                let (prediction, correct) = self.bpu.execute(indexed, outcome, target);
                if outcome.is_taken() {
                    btb_install = Some((indexed, target.unwrap_or(indexed + 2)));
                }
                (prediction, !correct)
            }
        };
        self.policy.on_branch(self.tsc);
        // `latency` is what an rdtscp pair around this branch would report
        // (Fig. 7); the core clock advances by the much smaller throughput
        // cost of straight-line execution.
        let taken_btb_miss = outcome.is_taken() && !prediction.btb_hit;
        let mut latency =
            self.timing.sample_with_btb(&mut self.rng, mispredicted, cold, taken_btb_miss);
        self.tsc += self.timing.advance_with_btb(mispredicted, cold, taken_btb_miss);
        let mut recorded_miss = mispredicted;
        if let Some(fuzz) = self.fuzz {
            latency = fuzz.fuzz_latency(&mut self.rng, latency);
            recorded_miss = fuzz.fuzz_miss(&mut self.rng, mispredicted);
        }
        let slot = ctx as usize;
        if slot >= self.counters.len() {
            self.counters.resize(slot + 1, PerfCounters::new());
        }
        self.counters[slot].record_branch(recorded_miss, latency);
        if self.tracer.is_enabled() {
            self.tracer.emit_with(|| TraceEvent::Branch {
                ctx,
                addr,
                taken: outcome.is_taken(),
                predicted_taken: prediction.direction.is_taken(),
                mispredicted: recorded_miss,
                two_level: prediction.used == PredictorKind::Gshare,
                btb_hit: prediction.btb_hit,
                latency,
            });
            if let Some((addr, target)) = btb_install {
                self.tracer.emit_with(|| TraceEvent::BtbInstall { addr, target });
            }
        }
        BranchEvent { addr, outcome, prediction, mispredicted: recorded_miss, latency, cold }
    }

    /// Injects `n` background branches immediately (regardless of the
    /// configured rate). Returns how many were injected.
    ///
    /// Background branches share the BPU but are executed by the sibling
    /// hardware thread: they appear in no foreground context's counters and
    /// their latency does not advance the foreground clock.
    pub fn inject_noise_burst(&mut self, n: usize) -> usize {
        let Some(cfg) = self.noise else { return 0 };
        for _ in 0..n {
            let addr = self.rng.gen_range(cfg.addr_lo..cfg.addr_hi);
            let outcome = Outcome::from_bool(self.rng.gen_bool(cfg.taken_bias));
            let indexed = self.policy.index_addr(NOISE_CTX, addr);
            self.bpu.execute(indexed, outcome, None);
        }
        if n > 0 {
            let injected = u32::try_from(n).unwrap_or(u32::MAX);
            self.tracer.emit_with(|| TraceEvent::NoiseBurst { injected });
        }
        n
    }

    fn inject_pending_noise(&mut self) {
        let Some(cfg) = self.noise else {
            self.last_noise_tsc = self.tsc;
            return;
        };
        let elapsed = self.tsc - self.last_noise_tsc;
        self.last_noise_tsc = self.tsc;
        if elapsed == 0 {
            return;
        }
        let lambda = cfg.branches_per_kcycle * elapsed as f64 / 1_000.0;
        let n = poisson(&mut self.rng, lambda);
        if n > 0 {
            self.inject_noise_burst(n);
        }
    }

    /// Fresh deterministic RNG stream derived from the core's seed stream,
    /// for experiment code that needs auxiliary randomness.
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }
}

/// Poisson sampler: Knuth's method for small rates, a Gaussian
/// approximation for large ones (where Knuth's product underflows).
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let n = lambda + lambda.sqrt() * crate::timing::gaussian(rng);
        return n.max(0.0).round() as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // Defensive cap; unreachable for sane lambda.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::PhtState;
    use bscope_trace::TracedEvent;

    fn core() -> SimCore {
        SimCore::new(MicroarchProfile::haswell(), 99)
    }

    #[test]
    fn counters_are_per_context() {
        let mut c = core();
        c.execute_branch_in(0, 0x1000, Outcome::Taken, None);
        c.execute_branch_in(1, 0x2000, Outcome::Taken, None);
        c.execute_branch_in(1, 0x2000, Outcome::Taken, None);
        assert_eq!(c.counters(0).branches_retired, 1);
        assert_eq!(c.counters(1).branches_retired, 2);
        assert_eq!(c.counters(7).branches_retired, 0);
    }

    #[test]
    fn tsc_advances_with_execution() {
        let mut c = core();
        let t0 = c.rdtscp();
        c.execute_branch(0x1000, Outcome::Taken);
        assert!(c.rdtscp() > t0);
        let t1 = c.rdtscp();
        c.advance_cycles(500);
        assert_eq!(c.rdtscp(), t1 + 500);
    }

    #[test]
    fn shared_bpu_couples_contexts() {
        // Context 1 trains a branch; context 0 observes the trained state at
        // an aliasing address — the attack's collision premise.
        let mut c = core();
        for _ in 0..3 {
            c.execute_branch_in(1, 0x30_0000, Outcome::Taken, None);
        }
        let pht_size = c.profile().pht_size as u64;
        assert_eq!(c.bpu().pht_state(0x30_0000 + pht_size), PhtState::StronglyTaken);
    }

    #[test]
    fn noise_perturbs_bpu_but_not_counters() {
        let mut c = core().with_noise(NoiseConfig::heavy()).unwrap();
        let before_btb = c.bpu().btb().occupancy();
        for i in 0..200 {
            c.execute_branch(0x5000 + i * 7, Outcome::NotTaken);
        }
        assert!(
            c.bpu().btb().occupancy() > before_btb,
            "noise must install BTB entries"
        );
        // Foreground executed 200 branches; noise must not inflate that.
        assert_eq!(c.counters(0).branches_retired, 200);
    }

    #[test]
    fn noise_burst_requires_configuration() {
        let mut c = core();
        assert_eq!(c.inject_noise_burst(10), 0, "no noise configured");
        c.set_noise(Some(NoiseConfig::system_activity())).unwrap();
        assert_eq!(c.inject_noise_burst(10), 10);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut c = SimCore::new(MicroarchProfile::skylake(), seed)
                .with_noise(NoiseConfig::system_activity())
                .unwrap();
            (0..100)
                .map(|i| c.execute_branch(0x9000 + i * 3, Outcome::from_bool(i % 3 == 0)).latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ somewhere");
    }

    #[test]
    fn first_execution_is_cold() {
        let mut c = core();
        assert!(c.execute_branch(0x8000, Outcome::Taken).cold);
        assert!(!c.execute_branch(0x8000, Outcome::Taken).cold);
    }

    #[test]
    fn misprediction_reported_and_counted() {
        let mut c = core();
        // Train strongly taken, then surprise with not-taken.
        for _ in 0..3 {
            c.execute_branch(0x700, Outcome::Taken);
        }
        let before = c.counters(0);
        let ev = c.execute_branch(0x700, Outcome::NotTaken);
        assert!(ev.mispredicted);
        assert_eq!(c.counters(0).since(&before).branch_misses, 1);
    }

    /// Emitting trace events must not perturb simulation state: a traced
    /// core and an untraced one produce bit-identical branch streams, and
    /// the capture records what actually happened.
    #[test]
    fn tracing_is_an_observer_not_a_participant() {
        let run = |traced: bool| {
            let mut c = SimCore::new(MicroarchProfile::skylake(), 7)
                .with_noise(NoiseConfig::system_activity())
                .unwrap();
            if traced {
                c.set_tracer(Tracer::ring(4096));
            }
            c.trace_span_begin(Span::Prime);
            let events: Vec<u64> = (0..300)
                .map(|i| c.execute_branch(0x9000 + i * 3, Outcome::from_bool(i % 3 == 0)).latency)
                .collect();
            c.trace_span_end(Span::Prime);
            (events, c.rdtscp(), c.take_tracer().drain())
        };
        let (lat_on, tsc_on, capture) = run(true);
        let (lat_off, tsc_off, empty) = run(false);
        assert_eq!(lat_on, lat_off, "tracing changed branch latencies");
        assert_eq!(tsc_on, tsc_off, "tracing changed the clock");
        assert!(empty.events.is_empty() && empty.metrics.is_empty());

        assert_eq!(capture.metrics.counter("branches"), 300);
        assert_eq!(capture.metrics.counter("spans/prime"), 1);
        assert_eq!(capture.metrics.counter("btb_installs"), 100, "every third branch is taken");
        assert!(capture.metrics.counter("noise_branches") > 0, "noise bursts are traced");
        assert_eq!(capture.metrics.histogram("branch_latency").unwrap().count(), 300);
        // Span markers carry the simulated clock, never wall-clock.
        match (capture.events.first(), capture.events.last()) {
            (
                Some(TracedEvent { event: TraceEvent::SpanBegin { span: Span::Prime, tsc: t0 }, .. }),
                Some(TracedEvent { event: TraceEvent::SpanEnd { span: Span::Prime, tsc: t1 }, .. }),
            ) => assert!(t1 > t0 && *t1 == tsc_on, "span stamps follow the sim clock"),
            other => panic!("span markers must bracket the capture, got {other:?}"),
        }
    }

    #[test]
    fn traced_branch_events_describe_the_prediction() {
        let mut c = core();
        c.set_tracer(Tracer::ring(64));
        for _ in 0..3 {
            c.execute_branch(0x700, Outcome::Taken);
        }
        let ev = c.execute_branch(0x700, Outcome::NotTaken);
        assert!(ev.mispredicted);
        let capture = c.take_tracer().drain();
        let branches: Vec<&TracedEvent> = capture
            .events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Branch { .. }))
            .collect();
        assert_eq!(branches.len(), 4);
        match branches[3].event {
            TraceEvent::Branch { taken, predicted_taken, mispredicted, latency, .. } => {
                assert!(!taken && predicted_taken && mispredicted);
                assert_eq!(latency, ev.latency);
            }
            _ => unreachable!(),
        }
        // The three taken branches each installed their BTB entry.
        assert_eq!(capture.metrics.counter("btb_installs"), 3);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "poisson mean {mean}");
    }
}
