//! Background (SMT sibling / system) activity configuration.

use std::ops::Range;

/// Configuration of background branch activity sharing the core's BPU.
///
/// Models the two measurement environments of Tables 2 and 3. Background
/// activity is **time-based**: the sibling context executes unrelated
/// conditional branches at a mean rate per 1 000 cycles of wall-clock,
/// regardless of what the foreground thread is doing. The exposure that
/// matters to the attack is therefore proportional to *elapsed time* — the
/// randomization block, the spy's `usleep` while waiting for the victim
/// (Listing 3), and the probe itself — exactly as on real SMT hardware.
///
/// Background branches perturb the shared PHT/BTB/GHR but not the
/// foreground thread's performance counters, which are per-logical-CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Mean background branches per 1 000 cycles (Poisson-distributed).
    pub branches_per_kcycle: f64,
    /// Virtual address range the background branches are drawn from.
    pub addr_range: Range<u64>,
    /// Probability that a background branch is taken.
    pub taken_bias: f64,
}

impl NoiseConfig {
    /// An ordinary multi-tasking system with the sibling hardware thread
    /// lightly loaded — the "with noise" rows of Table 2.
    #[must_use]
    pub fn system_activity() -> Self {
        NoiseConfig {
            branches_per_kcycle: 8.0,
            addr_range: 0x7f00_0000_0000..0x7f00_0010_0000,
            taken_bias: 0.55,
        }
    }

    /// An isolated physical core: no other user processes, only residual
    /// kernel activity (timer ticks, IPIs) — the "isolated" rows of
    /// Table 2, which still show a small non-zero error rate.
    #[must_use]
    pub fn isolated_core() -> Self {
        NoiseConfig { branches_per_kcycle: 3.0, ..NoiseConfig::system_activity() }
    }

    /// Heavy interference (stress test; beyond the paper's settings).
    #[must_use]
    pub fn heavy() -> Self {
        NoiseConfig { branches_per_kcycle: 40.0, ..NoiseConfig::system_activity() }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.branches_per_kcycle.is_finite() || self.branches_per_kcycle < 0.0 {
            return Err(format!(
                "branches_per_kcycle {} must be finite and >= 0",
                self.branches_per_kcycle
            ));
        }
        if self.addr_range.is_empty() {
            return Err("addr_range must be non-empty".to_owned());
        }
        if !(0.0..=1.0).contains(&self.taken_bias) {
            return Err(format!("taken_bias {} must be in [0,1]", self.taken_bias));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_order_sensibly() {
        for cfg in [NoiseConfig::system_activity(), NoiseConfig::isolated_core(), NoiseConfig::heavy()]
        {
            cfg.validate().unwrap();
        }
        assert!(
            NoiseConfig::isolated_core().branches_per_kcycle
                < NoiseConfig::system_activity().branches_per_kcycle
        );
        assert!(
            NoiseConfig::system_activity().branches_per_kcycle
                < NoiseConfig::heavy().branches_per_kcycle
        );
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut c = NoiseConfig::system_activity();
        c.branches_per_kcycle = -1.0;
        assert!(c.validate().is_err());

        let mut c = NoiseConfig::system_activity();
        c.addr_range = 5..5;
        assert!(c.validate().is_err());

        let mut c = NoiseConfig::system_activity();
        c.taken_bias = 1.5;
        assert!(c.validate().is_err());
    }
}
