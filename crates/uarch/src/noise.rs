//! Background (SMT sibling / system) activity configuration.

use crate::config::ConfigError;
use std::ops::Range;

/// Configuration of background branch activity sharing the core's BPU.
///
/// Models the two measurement environments of Tables 2 and 3. Background
/// activity is **time-based**: the sibling context executes unrelated
/// conditional branches at a mean rate per 1 000 cycles of wall-clock,
/// regardless of what the foreground thread is doing. The exposure that
/// matters to the attack is therefore proportional to *elapsed time* — the
/// randomization block, the spy's `usleep` while waiting for the victim
/// (Listing 3), and the probe itself — exactly as on real SMT hardware.
///
/// Background branches perturb the shared PHT/BTB/GHR but not the
/// foreground thread's performance counters, which are per-logical-CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Mean background branches per 1 000 cycles (Poisson-distributed).
    pub branches_per_kcycle: f64,
    /// Virtual address range the background branches are drawn from.
    pub addr_range: Range<u64>,
    /// Probability that a background branch is taken.
    pub taken_bias: f64,
}

impl NoiseConfig {
    /// An ordinary multi-tasking system with the sibling hardware thread
    /// lightly loaded — the "with noise" rows of Table 2.
    #[must_use]
    pub fn system_activity() -> Self {
        NoiseConfig {
            branches_per_kcycle: 8.0,
            addr_range: 0x7f00_0000_0000..0x7f00_0010_0000,
            taken_bias: 0.55,
        }
    }

    /// An isolated physical core: no other user processes, only residual
    /// kernel activity (timer ticks, IPIs) — the "isolated" rows of
    /// Table 2, which still show a small non-zero error rate.
    #[must_use]
    pub fn isolated_core() -> Self {
        NoiseConfig { branches_per_kcycle: 3.0, ..NoiseConfig::system_activity() }
    }

    /// Heavy interference (stress test; beyond the paper's settings).
    #[must_use]
    pub fn heavy() -> Self {
        NoiseConfig { branches_per_kcycle: 40.0, ..NoiseConfig::system_activity() }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.branches_per_kcycle.is_finite() || self.branches_per_kcycle < 0.0 {
            return Err(ConfigError::OutOfRange {
                config: "NoiseConfig",
                field: "branches_per_kcycle",
                value: self.branches_per_kcycle,
                constraint: "finite and >= 0",
            });
        }
        if self.addr_range.is_empty() {
            return Err(ConfigError::EmptyAddrRange { config: "NoiseConfig", field: "addr_range" });
        }
        if !(0.0..=1.0).contains(&self.taken_bias) {
            return Err(ConfigError::OutOfRange {
                config: "NoiseConfig",
                field: "taken_bias",
                value: self.taken_bias,
                constraint: "within [0, 1]",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_order_sensibly() {
        for cfg in [NoiseConfig::system_activity(), NoiseConfig::isolated_core(), NoiseConfig::heavy()]
        {
            cfg.validate().unwrap();
        }
        assert!(
            NoiseConfig::isolated_core().branches_per_kcycle
                < NoiseConfig::system_activity().branches_per_kcycle
        );
        assert!(
            NoiseConfig::system_activity().branches_per_kcycle
                < NoiseConfig::heavy().branches_per_kcycle
        );
    }

    #[test]
    fn validate_rejects_bad_fields_with_typed_errors() {
        let mut c = NoiseConfig::system_activity();
        c.branches_per_kcycle = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::OutOfRange { field: "branches_per_kcycle", .. })
        ));

        let mut c = NoiseConfig::system_activity();
        c.addr_range = 5..5;
        assert!(matches!(c.validate(), Err(ConfigError::EmptyAddrRange { .. })));

        let mut c = NoiseConfig::system_activity();
        c.taken_bias = 1.5;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { field: "taken_bias", .. }));
        assert!(err.to_string().contains("taken_bias"), "message names the field: {err}");
    }
}
