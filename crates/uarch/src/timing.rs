//! Per-branch latency model.

use bscope_bpu::TimingParams;
use rand::Rng;

/// Samples measured branch latencies.
///
/// The paper measures single branch instructions with back-to-back `rdtscp`
/// (§8, Fig. 7): correctly predicted branches average ≈85 cycles (including
/// measurement overhead), mispredicted ones sit ≈50 cycles higher, both with
/// substantial jitter and a heavy upper tail from unrelated stalls, and the
/// *first* (i-cache-cold) execution is slower and noisier — which is why the
/// paper's attacker discards the first measurement (Fig. 8).
///
/// Latencies are sampled from a Gaussian with parameters from
/// [`TimingParams`], plus an occasional exponential-ish spike.
#[derive(Debug, Clone)]
pub struct TimingModel {
    params: TimingParams,
}

impl TimingModel {
    /// Model with the given parameters.
    #[must_use]
    pub fn new(params: TimingParams) -> Self {
        TimingModel { params }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// Samples a measured latency for one branch execution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, mispredicted: bool, cold: bool) -> u64 {
        self.sample_with_btb(rng, mispredicted, cold, false)
    }

    /// Samples a measured latency, additionally charging the front-end
    /// fetch-redirect bubble of a taken branch that missed the BTB — the
    /// signal prior BTB-presence attacks time (§11).
    pub fn sample_with_btb<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mispredicted: bool,
        cold: bool,
        taken_btb_miss: bool,
    ) -> u64 {
        let p = &self.params;
        let mut mean = p.base_hit_cycles;
        let mut sigma = p.jitter_sigma;
        if mispredicted {
            mean += p.mispredict_penalty;
        }
        if taken_btb_miss {
            mean += p.btb_miss_taken_extra;
        }
        if cold {
            mean += p.cold_miss_extra;
            sigma = (sigma * sigma + p.cold_jitter_sigma * p.cold_jitter_sigma).sqrt();
        }
        let mut cycles = mean + sigma * gaussian(rng);
        if rng.gen_bool(p.spike_probability) {
            // Exponential spike: rare interrupts / SMT contention / TLB walks.
            let u: f64 = rng.gen_range(1e-9..1.0);
            cycles += p.spike_cycles * (-u.ln());
        }
        // A branch plus two rdtscp reads can never be arbitrarily fast; the
        // floor approximates the measurement overhead itself.
        let floor = (p.base_hit_cycles * 0.65).max(1.0);
        cycles.max(floor).round() as u64
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new(TimingParams::paper_calibrated())
    }
}

impl TimingModel {
    /// Wall-clock cycles one branch costs in straight-line code — the
    /// amount the core clock advances. Unlike [`TimingModel::sample`],
    /// which models a serialised `rdtscp`-bracketed measurement, ordinary
    /// branches retire near throughput, stalling only on mispredictions
    /// and i-cache misses.
    #[must_use]
    pub fn advance(&self, mispredicted: bool, cold: bool) -> u64 {
        self.advance_with_btb(mispredicted, cold, false)
    }

    /// Wall-clock advance including the BTB-miss redirect bubble for taken
    /// branches.
    #[must_use]
    pub fn advance_with_btb(&self, mispredicted: bool, cold: bool, taken_btb_miss: bool) -> u64 {
        let p = &self.params;
        let mut cycles = p.throughput_cycles;
        if mispredicted {
            cycles += p.mispredict_stall;
        }
        if cold {
            cycles += p.cold_stall;
        }
        if taken_btb_miss {
            cycles += p.btb_miss_taken_stall;
        }
        cycles.max(1.0).round() as u64
    }
}

/// Standard normal sample via the Box–Muller transform (the `rand`
/// crate alone does not ship distributions).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: &[u64]) -> f64 {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    }

    #[test]
    fn misprediction_costs_more_on_average() {
        let model = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let hits: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng, false, false)).collect();
        let misses: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng, true, false)).collect();
        let (mh, mm) = (mean_of(&hits), mean_of(&misses));
        assert!(
            mm - mh > 35.0,
            "miss mean {mm:.1} should exceed hit mean {mh:.1} by the penalty"
        );
        // Fig. 7 calibration: hit mean in the ~80s, miss mean in the ~130s.
        assert!((80.0..95.0).contains(&mh), "hit mean {mh:.1}");
        assert!((128.0..145.0).contains(&mm), "miss mean {mm:.1}");
    }

    #[test]
    fn cold_executions_are_slower_and_noisier() {
        let model = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let warm: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng, false, false)).collect();
        let cold: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng, false, true)).collect();
        assert!(mean_of(&cold) > mean_of(&warm) + 10.0);
        let var = |s: &[u64]| {
            let m = mean_of(s);
            s.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / s.len() as f64
        };
        assert!(var(&cold) > var(&warm), "cold variance must exceed warm variance");
    }

    #[test]
    fn single_measurement_overlap_matches_figure_8() {
        // With one warm measurement each, P(hit sample > miss sample) should
        // sit near 10% — the paper's single-measurement error rate for the
        // second (warm) execution.
        let model = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut wrong = 0;
        for _ in 0..n {
            let h = model.sample(&mut rng, false, false);
            let m = model.sample(&mut rng, true, false);
            if h >= m {
                wrong += 1;
            }
        }
        let rate = f64::from(wrong) / f64::from(n);
        assert!((0.05..0.18).contains(&rate), "overlap error rate {rate:.3}");
    }

    #[test]
    fn latency_respects_floor() {
        let model = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let floor = (model.params().base_hit_cycles * 0.65) as u64;
        for _ in 0..10_000 {
            assert!(model.sample(&mut rng, false, false) >= floor);
        }
    }

    #[test]
    fn gaussian_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }
}
