//! Performance counter model.

use serde::{Deserialize, Serialize};

/// Hardware performance counters as visible to one hardware thread.
///
/// The paper's spy (Listing 3) brackets its probing branch with reads of the
/// branch-misprediction counter and stores the difference. On real hardware
/// these counters are per-logical-CPU, so activity of the sibling SMT thread
/// does **not** leak into them — the simulated core therefore only counts
/// branches executed by the foreground context, not injected noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// `BR_INST_RETIRED.CONDITIONAL` — conditional branches retired.
    pub branches_retired: u64,
    /// `BR_MISP_RETIRED.CONDITIONAL` — mispredicted conditional branches.
    pub branch_misses: u64,
    /// Core cycle counter (`CPU_CLK_UNHALTED`-like; equals the TSC here).
    pub cycles: u64,
}

impl PerfCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        PerfCounters::default()
    }

    /// Records one retired conditional branch.
    pub fn record_branch(&mut self, mispredicted: bool, latency: u64) {
        self.branches_retired += 1;
        if mispredicted {
            self.branch_misses += 1;
        }
        self.cycles += latency;
    }

    /// Counter deltas since an earlier snapshot.
    ///
    /// Intended invariant: `earlier` is a snapshot taken *before* `self`
    /// on the same context, so every field of `self` is `>=` the
    /// corresponding field of `earlier`. The subtraction saturates at zero
    /// rather than assuming it: counters on real hardware can be reset or
    /// sampled out of order, and an out-of-order snapshot used to panic on
    /// underflow in debug builds (and wrap to garbage in release builds)
    /// instead of degrading to a zero delta.
    #[must_use]
    pub fn since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            branches_retired: self.branches_retired.saturating_sub(earlier.branches_retired),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let mut c = PerfCounters::new();
        c.record_branch(true, 130);
        let snap = c;
        c.record_branch(false, 80);
        c.record_branch(true, 140);
        let d = c.since(&snap);
        assert_eq!(d.branches_retired, 2);
        assert_eq!(d.branch_misses, 1);
        assert_eq!(d.cycles, 220);
    }

    /// Regression test: snapshots taken out of order must yield a zero
    /// delta, not a debug-build underflow panic.
    #[test]
    fn out_of_order_snapshots_saturate_instead_of_panicking() {
        let mut c = PerfCounters::new();
        c.record_branch(true, 130);
        let later = c;
        c.record_branch(false, 80);
        let d = later.since(&c); // swapped arguments: earlier is newer
        assert_eq!(d, PerfCounters::new());
        // Partial inversion (one field behind, others ahead) also degrades
        // field-wise rather than panicking.
        let skewed = PerfCounters { branches_retired: 0, branch_misses: 5, cycles: 100 };
        let d = c.since(&skewed);
        assert_eq!(d.branches_retired, 2);
        assert_eq!(d.branch_misses, 0);
        assert_eq!(d.cycles, 110);
    }
}
