//! Typed configuration errors for the simulated-core layer.
//!
//! [`NoiseConfig::validate`](crate::NoiseConfig::validate) and
//! [`MeasurementFuzz::validate`](crate::MeasurementFuzz::validate) used to
//! return `Result<(), String>`, and the setters on the core panicked on
//! invalid input; now an invalid configuration is a [`ConfigError`] that
//! the whole stack (`bscope-os`, `bscope-core`, the experiments binary)
//! propagates as a typed, attributable failure.

use std::error::Error;
use std::fmt;

/// A simulated-system configuration parameter outside its documented range.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric field violated its constraint.
    OutOfRange {
        /// Configuration struct the field belongs to (e.g. `NoiseConfig`).
        config: &'static str,
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint (e.g. `"within [0, 1]"`).
        constraint: &'static str,
    },
    /// An address range was empty.
    EmptyAddrRange {
        /// Configuration struct the range belongs to.
        config: &'static str,
        /// Field name.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange { config, field, value, constraint } => {
                write!(f, "{config}.{field} = {value} must be {constraint}")
            }
            ConfigError::EmptyAddrRange { config, field } => {
                write!(f, "{config}.{field} must be a non-empty address range")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_field() {
        let e = ConfigError::OutOfRange {
            config: "NoiseConfig",
            field: "taken_bias",
            value: 1.5,
            constraint: "within [0, 1]",
        };
        assert_eq!(e.to_string(), "NoiseConfig.taken_bias = 1.5 must be within [0, 1]");
        let e = ConfigError::EmptyAddrRange { config: "NoiseConfig", field: "addr_range" };
        assert!(e.to_string().contains("addr_range"));
    }
}
