//! Records produced by simulated branch execution.

use bscope_bpu::{Outcome, Prediction, VirtAddr};

/// Everything observable about one dynamically executed branch.
///
/// `latency` is the value an attacker timing the branch with back-to-back
/// `rdtscp` instructions would measure (paper §8); `mispredicted` is what
/// the `BR_MISP_RETIRED` performance counter records (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Virtual address of the branch instruction.
    pub addr: VirtAddr,
    /// Resolved direction.
    pub outcome: Outcome,
    /// Full front-end prediction that was made for this branch.
    pub prediction: Prediction,
    /// Whether the predicted direction was wrong.
    pub mispredicted: bool,
    /// Measured latency in cycles (timing channel).
    pub latency: u64,
    /// Whether this execution missed the instruction cache (first touch).
    pub cold: bool,
}

impl BranchEvent {
    /// Whether the prediction was correct — a prediction *hit* in the
    /// paper's H/M notation.
    #[must_use]
    pub fn hit(&self) -> bool {
        !self.mispredicted
    }

    /// The paper's single-letter observation for this branch: `H` for a
    /// correct prediction, `M` for a misprediction.
    #[must_use]
    pub fn letter(&self) -> char {
        if self.mispredicted {
            'M'
        } else {
            'H'
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::PredictorKind;

    fn event(mispredicted: bool) -> BranchEvent {
        BranchEvent {
            addr: 0x1000,
            outcome: Outcome::Taken,
            prediction: Prediction {
                direction: if mispredicted { Outcome::NotTaken } else { Outcome::Taken },
                used: PredictorKind::Bimodal,
                bimodal: Outcome::Taken,
                gshare: Outcome::Taken,
                btb_hit: false,
                target: None,
            },
            mispredicted,
            latency: 100,
            cold: false,
        }
    }

    #[test]
    fn letters_match_paper_notation() {
        assert_eq!(event(false).letter(), 'H');
        assert_eq!(event(true).letter(), 'M');
        assert!(event(false).hit());
        assert!(!event(true).hit());
    }
}
