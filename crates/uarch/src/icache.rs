//! A direct-mapped instruction cache model.

use bscope_bpu::VirtAddr;

/// Direct-mapped instruction cache tracking which code lines are resident.
///
/// Only *presence* matters for the reproduction: the paper's timing attack
/// (§8) executes "each branch instance two times, but only record\[s\] the
/// latency during the second execution, after the instruction has been
/// placed in the cache". The first touch of a line is reported cold; the
/// model feeds that into [`TimingModel`](crate::TimingModel).
#[derive(Debug, Clone)]
pub struct InstructionCache {
    tags: Vec<Option<u64>>,
    line_shift: u32,
    index_mask: u64,
    hits: u64,
    misses: u64,
}

impl InstructionCache {
    /// Cache line size in bytes (x86: 64).
    pub const LINE_BYTES: u64 = 64;

    /// Creates a cache of `lines` lines of 64 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or not a power of two.
    #[must_use]
    pub fn new(lines: usize) -> Self {
        assert!(lines.is_power_of_two(), "line count must be a power of two, got {lines}");
        InstructionCache {
            tags: vec![None; lines],
            line_shift: Self::LINE_BYTES.trailing_zeros(),
            index_mask: (lines - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// A 512-line (32 KiB) L1i, the geometry of all three paper machines.
    #[must_use]
    pub fn l1i_default() -> Self {
        InstructionCache::new(512)
    }

    fn index_and_tag(&self, addr: VirtAddr) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.index_mask) as usize, line >> self.index_mask.count_ones())
    }

    /// Accesses the line containing `addr`, filling it on a miss.
    /// Returns `true` on a hit (the line was already resident).
    pub fn touch(&mut self, addr: VirtAddr) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        let hit = self.tags[idx] == Some(tag);
        self.tags[idx] = Some(tag);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Whether the line containing `addr` is resident, without touching it.
    #[must_use]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        self.tags[idx] == Some(tag)
    }

    /// Flushes the whole cache (e.g. on a simulated context switch with a
    /// hostile OS, §9.2).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// (hits, misses) counted since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for InstructionCache {
    fn default() -> Self {
        InstructionCache::l1i_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut ic = InstructionCache::new(64);
        assert!(!ic.touch(0x1000));
        assert!(ic.touch(0x1000));
        assert!(ic.touch(0x1001), "same line");
        assert_eq!(ic.stats(), (2, 1));
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut ic = InstructionCache::new(64);
        ic.touch(0);
        assert!(!ic.touch(64), "next line is cold");
    }

    #[test]
    fn aliasing_lines_evict() {
        let mut ic = InstructionCache::new(64);
        ic.touch(0);
        // 64 lines of 64 B: addresses 64*64 bytes apart alias.
        ic.touch(64 * 64);
        assert!(!ic.contains(0), "original line evicted by alias");
    }

    #[test]
    fn flush_empties_cache() {
        let mut ic = InstructionCache::new(64);
        ic.touch(0x2000);
        ic.flush();
        assert!(!ic.contains(0x2000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = InstructionCache::new(100);
    }
}
