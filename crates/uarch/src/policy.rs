//! Hardware mitigation hooks (paper §10.2).
//!
//! The hardware defenses the paper proposes all intervene in the same two
//! places: how a branch address is mapped to predictor state (PHT index
//! randomization, BPU partitioning) and whether a branch engages the
//! predictor at all (no-prediction for flagged sensitive branches).
//! [`BpuPolicy`] exposes exactly those two decision points to the core;
//! concrete policies live in the `bscope-mitigations` crate.

use crate::config::ConfigError;
use crate::core_impl::ContextId;
use bscope_bpu::VirtAddr;
use rand::Rng;

/// A hardware-level branch prediction policy installed on a core.
///
/// The default implementation is the unmitigated machine: identity index
/// mapping and every branch predicted dynamically.
pub trait BpuPolicy: std::fmt::Debug + Send {
    /// The address presented to the predictor structures for a branch of
    /// context `ctx` at architectural address `addr`. Index randomization
    /// and partitioning override this.
    fn index_addr(&self, ctx: ContextId, addr: VirtAddr) -> VirtAddr {
        let _ = ctx;
        addr
    }

    /// Whether this branch must bypass the predictor entirely: statically
    /// predicted not-taken and no BPU state updated ("the CPU must avoid
    /// predicting these branches, rely always on static prediction and
    /// avoid updating any BPU structures", §10.2).
    fn bypass_prediction(&self, ctx: ContextId, addr: VirtAddr) -> bool {
        let _ = (ctx, addr);
        false
    }

    /// Invoked once per executed branch with the current cycle count;
    /// periodic-rerandomization policies re-key here.
    fn on_branch(&mut self, tsc: u64) {
        let _ = tsc;
    }

    /// Whether this branch's *update* to the predictor state should be
    /// suppressed. Returning `true` stochastically implements the paper's
    /// "change the prediction FSM to make it more stochastic" defense
    /// (§10.2): the FSM still predicts, but its transitions no longer
    /// deterministically follow the observed outcomes, so the attacker can
    /// no longer map probe patterns back to the victim's direction.
    fn suppress_update(&mut self, ctx: ContextId, addr: VirtAddr) -> bool {
        let _ = (ctx, addr);
        false
    }
}

/// The unmitigated baseline policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPolicy;

impl BpuPolicy for NoPolicy {}

/// Measurement-channel fuzzing (§10.2 "Other solutions"): degrade the
/// attacker's ability to observe branch outcomes by adding noise to the
/// performance counters and the timing measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementFuzz {
    /// Probability that a branch's misprediction bit is recorded flipped
    /// in the performance counters.
    pub counter_flip_probability: f64,
    /// Additional Gaussian jitter (standard deviation, cycles) added to
    /// every measured latency.
    pub extra_timing_sigma: f64,
}

impl MeasurementFuzz {
    /// A configuration strong enough to defeat single-shot probing.
    #[must_use]
    pub fn strong() -> Self {
        MeasurementFuzz { counter_flip_probability: 0.35, extra_timing_sigma: 60.0 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.counter_flip_probability) {
            return Err(ConfigError::OutOfRange {
                config: "MeasurementFuzz",
                field: "counter_flip_probability",
                value: self.counter_flip_probability,
                constraint: "within [0, 1]",
            });
        }
        if !self.extra_timing_sigma.is_finite() || self.extra_timing_sigma < 0.0 {
            return Err(ConfigError::OutOfRange {
                config: "MeasurementFuzz",
                field: "extra_timing_sigma",
                value: self.extra_timing_sigma,
                constraint: "finite and >= 0",
            });
        }
        Ok(())
    }

    /// Applies counter fuzz to a misprediction flag.
    pub(crate) fn fuzz_miss<R: Rng + ?Sized>(&self, rng: &mut R, mispredicted: bool) -> bool {
        if self.counter_flip_probability > 0.0 && rng.gen_bool(self.counter_flip_probability) {
            !mispredicted
        } else {
            mispredicted
        }
    }

    /// Applies timing fuzz to a measured latency.
    pub(crate) fn fuzz_latency<R: Rng + ?Sized>(&self, rng: &mut R, latency: u64) -> u64 {
        if self.extra_timing_sigma <= 0.0 {
            return latency;
        }
        let jitter = self.extra_timing_sigma * crate::timing::gaussian(rng);
        (latency as f64 + jitter).max(1.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_policy_is_identity() {
        let p = NoPolicy;
        assert_eq!(p.index_addr(3, 0x1234), 0x1234);
        assert!(!p.bypass_prediction(3, 0x1234));
    }

    #[test]
    fn fuzz_flips_at_configured_rate() {
        let fuzz = MeasurementFuzz { counter_flip_probability: 0.5, extra_timing_sigma: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let flips = (0..10_000).filter(|_| fuzz.fuzz_miss(&mut rng, false)).count();
        assert!((4_000..6_000).contains(&flips), "flips {flips}");
    }

    #[test]
    fn zero_fuzz_is_transparent() {
        let fuzz = MeasurementFuzz { counter_flip_probability: 0.0, extra_timing_sigma: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        assert!(fuzz.fuzz_miss(&mut rng, true));
        assert!(!fuzz.fuzz_miss(&mut rng, false));
        assert_eq!(fuzz.fuzz_latency(&mut rng, 120), 120);
    }

    #[test]
    fn validate_bounds() {
        MeasurementFuzz::strong().validate().unwrap();
        assert!(MeasurementFuzz { counter_flip_probability: 1.5, extra_timing_sigma: 0.0 }
            .validate()
            .is_err());
        assert!(MeasurementFuzz { counter_flip_probability: 0.0, extra_timing_sigma: -1.0 }
            .validate()
            .is_err());
    }
}
