//! The interpreter: runs a [`Program`] on a process's CPU view.

use crate::assemble::{Instr, Program};
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Workload};

/// Record of one retired conditional branch (ground truth for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedBranch {
    /// Code offset of the branch instruction.
    pub offset: u64,
    /// Resolved direction.
    pub outcome: Outcome,
}

/// Executes a [`Program`] instruction by instruction on the simulated
/// machine. Conditional branches go through the shared BPU at the exact
/// code offsets the assembler computed; everything else costs wall-clock
/// time only.
///
/// [`Workload::step`] advances execution until **one conditional branch
/// retires** (or the program halts) — the granularity at which the paper's
/// slowed-down victims are scheduled, so an `Interpreter` plugs directly
/// into the attack harness and the SGX single-stepper.
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    pc: usize,
    regs: [i64; 4],
    halted: bool,
    branch_log: Vec<ExecutedBranch>,
    instructions_retired: u64,
}

impl Interpreter {
    /// Interpreter positioned at the first instruction.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Interpreter {
            program,
            pc: 0,
            regs: [0; 4],
            halted: false,
            branch_log: Vec::new(),
            instructions_retired: 0,
        }
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current register file (diagnostics and tests).
    #[must_use]
    pub fn regs(&self) -> [i64; 4] {
        self.regs
    }

    /// Total instructions retired.
    #[must_use]
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Every conditional branch retired so far, in order.
    #[must_use]
    pub fn branch_log(&self) -> &[ExecutedBranch] {
        &self.branch_log
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes exactly one instruction. Returns `false` once halted.
    pub fn step_instruction(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.halted {
            return false;
        }
        let instr = self.program.instr(self.pc);
        let offset = self.program.offset(self.pc);
        self.instructions_retired += 1;
        let mut next = self.pc + 1;
        match instr {
            Instr::Nop => cpu.work(1),
            Instr::MovImm { dst, imm } => self.regs[dst.index()] = imm,
            Instr::Mov { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            Instr::Add { dst, src } => {
                self.regs[dst.index()] = self.regs[dst.index()].wrapping_add(self.regs[src.index()]);
            }
            Instr::AddImm { dst, imm } => {
                self.regs[dst.index()] = self.regs[dst.index()].wrapping_add(imm);
            }
            Instr::Sub { dst, src } => {
                self.regs[dst.index()] = self.regs[dst.index()].wrapping_sub(self.regs[src.index()]);
            }
            Instr::LoadSecret { dst, index } => {
                let secret = self.program.secret();
                let value = if secret.is_empty() {
                    0
                } else {
                    let i = self.regs[index.index()].rem_euclid(secret.len() as i64) as usize;
                    i64::from(secret[i])
                };
                self.regs[dst.index()] = value;
                cpu.work(4); // L1 load
            }
            Instr::Work { cycles } => cpu.work(u64::from(cycles)),
            Instr::BranchZero { cond, .. } => {
                let taken = self.regs[cond.index()] == 0;
                cpu.branch_at(offset, Outcome::from_bool(taken));
                self.branch_log.push(ExecutedBranch { offset, outcome: Outcome::from_bool(taken) });
                if taken {
                    next = self.program.target(self.pc);
                }
            }
            Instr::BranchNotZero { cond, .. } => {
                let taken = self.regs[cond.index()] != 0;
                cpu.branch_at(offset, Outcome::from_bool(taken));
                self.branch_log.push(ExecutedBranch { offset, outcome: Outcome::from_bool(taken) });
                if taken {
                    next = self.program.target(self.pc);
                }
            }
            Instr::Jump { .. } => next = self.program.target(self.pc),
            Instr::Halt => {
                self.halted = true;
                return false;
            }
        }
        self.pc = next;
        if self.pc >= self.program.len() {
            self.halted = true;
        }
        !self.halted
    }

    /// Runs until the program halts (no step budget — use [`Workload::run`]
    /// for bounded execution).
    pub fn run_to_halt(&mut self, cpu: &mut CpuView<'_>) {
        while self.step_instruction(cpu) {}
    }
}

impl Workload for Interpreter {
    /// One step = execute until one conditional branch retires (or halt).
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        let branches_before = self.branch_log.len();
        while !self.halted {
            let more = self.step_instruction(cpu);
            if self.branch_log.len() > branches_before || !more {
                break;
            }
        }
        !self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{ProgramBuilder, Reg};
    use bscope_bpu::MicroarchProfile;
    use bscope_os::{AslrPolicy, System};

    fn with_cpu<T>(f: impl FnOnce(&mut CpuView<'_>) -> T) -> T {
        let mut sys = System::new(MicroarchProfile::skylake(), 1);
        let pid = sys.spawn("p", AslrPolicy::Disabled);
        let mut cpu = sys.cpu(pid);
        f(&mut cpu)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut b = ProgramBuilder::new();
        b.push(Instr::MovImm { dst: Reg::R0, imm: 40 });
        b.push(Instr::AddImm { dst: Reg::R0, imm: 2 });
        b.push(Instr::MovImm { dst: Reg::R1, imm: 10 });
        b.push(Instr::Sub { dst: Reg::R0, src: Reg::R1 });
        b.push(Instr::Halt);
        let mut interp = Interpreter::new(b.assemble().unwrap());
        with_cpu(|cpu| interp.run_to_halt(cpu));
        assert!(interp.halted());
        assert_eq!(interp.regs()[0], 32);
        assert_eq!(interp.instructions_retired(), 5);
    }

    #[test]
    fn loop_executes_and_terminates() {
        // r0 = 5; loop: r0 -= 1; jne loop; halt
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.push(Instr::MovImm { dst: Reg::R0, imm: 5 });
        b.bind(top);
        b.push(Instr::AddImm { dst: Reg::R0, imm: -1 });
        b.push(Instr::BranchNotZero { cond: Reg::R0, target: top });
        b.push(Instr::Halt);
        let mut interp = Interpreter::new(b.assemble().unwrap());
        with_cpu(|cpu| interp.run_to_halt(cpu));
        assert_eq!(interp.regs()[0], 0);
        // 5 loop iterations: 4 taken, final not-taken.
        assert_eq!(interp.branch_log().len(), 5);
        assert_eq!(interp.branch_log().iter().filter(|b| b.outcome.is_taken()).count(), 4);
    }

    #[test]
    fn workload_step_granularity_is_one_branch() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.push(Instr::MovImm { dst: Reg::R0, imm: 3 });
        b.bind(top);
        b.push(Instr::AddImm { dst: Reg::R0, imm: -1 });
        b.push(Instr::BranchNotZero { cond: Reg::R0, target: top });
        b.push(Instr::Halt);
        let mut interp = Interpreter::new(b.assemble().unwrap());
        with_cpu(|cpu| {
            assert!(interp.step(cpu));
            assert_eq!(interp.branch_log().len(), 1, "exactly one branch per step");
            assert!(interp.step(cpu));
            assert_eq!(interp.branch_log().len(), 2);
        });
    }

    #[test]
    fn branches_hit_the_bpu_at_their_layout_offsets() {
        let mut sys = System::new(MicroarchProfile::skylake(), 2);
        let pid = sys.spawn("p", AslrPolicy::Disabled);
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.push(Instr::MovImm { dst: Reg::R0, imm: 0 }); // 0..5
        b.push(Instr::BranchZero { cond: Reg::R0, target: skip }); // at 5, taken
        b.push(Instr::Nop);
        b.bind(skip);
        b.push(Instr::Halt);
        let mut interp = Interpreter::new(b.assemble().unwrap());
        // Run it three times so the entry saturates.
        for _ in 0..3 {
            let mut fresh = Interpreter::new(interp.program().clone());
            let mut cpu = sys.cpu(pid);
            fresh.run_to_halt(&mut cpu);
            interp = fresh;
        }
        let addr = sys.process(pid).vaddr_of(5);
        assert_eq!(
            sys.core().bpu().pht_state(addr),
            bscope_bpu::PhtState::StronglyTaken,
            "the always-taken je trains the PHT entry at its layout offset"
        );
    }

    #[test]
    fn load_secret_reads_the_data_segment() {
        let mut b = ProgramBuilder::new();
        b.set_secret(vec![true, false, true]);
        b.push(Instr::MovImm { dst: Reg::R1, imm: 2 });
        b.push(Instr::LoadSecret { dst: Reg::R0, index: Reg::R1 });
        b.push(Instr::Halt);
        let mut interp = Interpreter::new(b.assemble().unwrap());
        with_cpu(|cpu| interp.run_to_halt(cpu));
        assert_eq!(interp.regs()[0], 1);
    }
}
