//! A tiny instruction set + interpreter for the BranchScope machine.
//!
//! The paper's artifacts are *programs*: the victim of Listing 2 is a
//! compiled `if` with a two-byte `je` at offset `0x6d`, and the
//! randomization code of Listing 1 derives its PHT coverage from the byte
//! layout of `je`/`jne`/`nop` runs. This crate lets such code be written
//! as an instruction stream with **byte-accurate layout**: the assembler
//! assigns every instruction its code offset, and the [`Interpreter`]
//! executes the stream on a process's [`CpuView`](bscope_os::CpuView), so
//! conditional branches hit the simulated BPU at exactly the addresses the
//! layout implies.
//!
//! # Example: the paper's Listing 2 victim, as machine code
//!
//! ```
//! use bscope_bpu::MicroarchProfile;
//! use bscope_isa::{programs, Interpreter};
//! use bscope_os::{AslrPolicy, System, Workload};
//!
//! let program = programs::secret_branch_victim(&[true, false, true]);
//! let mut sys = System::new(MicroarchProfile::skylake(), 1);
//! let pid = sys.spawn("victim", AslrPolicy::Disabled);
//! let mut interp = Interpreter::new(program);
//! let mut cpu = sys.cpu(pid);
//! while interp.step(&mut cpu) {}
//! assert!(interp.halted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod interp;
pub mod programs;

pub use assemble::{AssembleError, Instr, Label, Program, ProgramBuilder, Reg};
pub use interp::{ExecutedBranch, Interpreter};
