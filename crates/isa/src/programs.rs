//! The paper's listings, assembled as real programs.

use crate::assemble::{Instr, Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Code offset the secret-dependent `je` of
/// [`secret_branch_victim`] lands at — `<victim_f+0x6d>`, as in the
/// paper's Listing 2 disassembly.
pub const LISTING2_BRANCH_OFFSET: u64 = 0x6d;

/// The paper's Listing 2 victim as machine code: a loop over a secret bit
/// array whose body is
///
/// ```text
///   test %eax,%eax          ; LoadSecret r0, r1
///   je  <victim_f+0x6d>     ; BranchZero r0 — TAKEN when the bit is 0
///   nop
///   nop
///   i++                     ; AddImm r1, 1
/// ```
///
/// with NOP padding so the `je` sits at exactly offset `0x6d`. The loop's
/// own back-edge branch lives at a different offset, so it occupies a
/// different PHT entry and does not disturb the attacked one.
///
/// # Panics
///
/// Panics if `secret` is empty.
#[must_use]
pub fn secret_branch_victim(secret: &[bool]) -> Program {
    assert!(!secret.is_empty(), "the victim needs at least one secret bit");
    let mut b = ProgramBuilder::new();
    b.set_secret(secret.to_vec());
    let n = secret.len() as i64;

    let loop_top = b.new_label();
    let skip = b.new_label();

    b.push(Instr::MovImm { dst: Reg::R1, imm: 0 }); // i = 0          [0..5)
    b.bind(loop_top);
    b.push(Instr::LoadSecret { dst: Reg::R0, index: Reg::R1 }); //    [5..9)
    // Pad so the je lands at LISTING2_BRANCH_OFFSET.
    for _ in 9..LISTING2_BRANCH_OFFSET {
        b.push(Instr::Nop);
    }
    b.push(Instr::BranchZero { cond: Reg::R0, target: skip }); // je at 0x6d
    b.push(Instr::Nop);
    b.push(Instr::Nop);
    b.bind(skip);
    b.push(Instr::AddImm { dst: Reg::R1, imm: 1 }); // i++
    // r3 = i - n; jne loop_top
    b.push(Instr::Mov { dst: Reg::R3, src: Reg::R1 });
    b.push(Instr::MovImm { dst: Reg::R2, imm: n });
    b.push(Instr::Sub { dst: Reg::R3, src: Reg::R2 });
    b.push(Instr::BranchNotZero { cond: Reg::R3, target: loop_top });
    b.push(Instr::Halt);
    b.assemble().expect("victim program assembles")
}

/// The paper's Listing 1 PHT-randomization block as machine code:
///
/// ```text
/// randomize_pht:
///   cmp %rcx, %rcx          ; MovImm r0, 0 (fixes the "flags")
///   je .L0; nop; .L0: jne .L1; .L1: je .L2; …
/// ```
///
/// `len` branches, each a `je` (always taken, since r0 == 0) or `jne`
/// (never taken) chosen at generation time, with a one-byte `nop`
/// interposed with probability ½ — reproducing the byte layout that lets
/// the block touch a large number of PHT entries. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `len` is zero.
#[must_use]
pub fn randomize_pht(seed: u64, len: usize) -> Program {
    assert!(len > 0, "a randomization block needs at least one branch");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    b.push(Instr::MovImm { dst: Reg::R0, imm: 0 }); // cmp %rcx,%rcx
    for _ in 0..len {
        let next = b.new_label();
        if rng.gen_bool(0.5) {
            b.push(Instr::BranchZero { cond: Reg::R0, target: next }); // je: taken
        } else {
            b.push(Instr::BranchNotZero { cond: Reg::R0, target: next }); // jne: not taken
        }
        if rng.gen_bool(0.5) {
            b.push(Instr::Nop);
        }
        b.bind(next);
    }
    b.push(Instr::Halt);
    b.assemble().expect("randomization block assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
    use bscope_os::{AslrPolicy, System, Workload};

    #[test]
    fn listing2_branch_sits_at_0x6d() {
        let p = secret_branch_victim(&[true, false]);
        assert!(p.conditional_branch_offsets().contains(&LISTING2_BRANCH_OFFSET));
    }

    #[test]
    fn listing2_leaks_the_secret_through_its_branch() {
        let secret = [true, false, false, true, true];
        let program = secret_branch_victim(&secret);
        let mut sys = System::new(MicroarchProfile::skylake(), 3);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut interp = Interpreter::new(program);
        let mut cpu = sys.cpu(pid);
        interp.run_to_halt(&mut cpu);
        // The branch at 0x6d executed once per bit, je-taken exactly when
        // the bit is 0 — the Listing 2 semantics.
        let directions: Vec<Outcome> = interp
            .branch_log()
            .iter()
            .filter(|b| b.offset == LISTING2_BRANCH_OFFSET)
            .map(|b| b.outcome)
            .collect();
        let expected: Vec<Outcome> =
            secret.iter().map(|&bit| Outcome::from_bool(!bit)).collect();
        assert_eq!(directions, expected);
    }

    #[test]
    fn listing2_matches_the_handwritten_victim() {
        // The machine-code victim and bscope-victims' SecretBranchVictim
        // leave identical traces in the shared PHT.
        let secret = vec![false; 4]; // je always taken
        let program = secret_branch_victim(&secret);
        let mut sys = System::new(MicroarchProfile::skylake(), 4);
        let pid = sys.spawn("victim", AslrPolicy::Disabled);
        let mut interp = Interpreter::new(program);
        let mut cpu = sys.cpu(pid);
        interp.run_to_halt(&mut cpu);
        let addr = sys.process(pid).vaddr_of(LISTING2_BRANCH_OFFSET);
        assert_eq!(sys.core().bpu().pht_state(addr), PhtState::StronglyTaken);
    }

    #[test]
    fn randomize_pht_has_listing1_layout() {
        let p = randomize_pht(9, 2_000);
        let offsets = p.conditional_branch_offsets();
        assert_eq!(offsets.len(), 2_000);
        // Branches advance by 2 (je/jne) or 3 (with an interposed nop).
        for pair in offsets.windows(2) {
            let step = pair[1] - pair[0];
            assert!(step == 2 || step == 3, "step {step}");
        }
    }

    #[test]
    fn randomize_pht_scrambles_entries_and_terminates() {
        let program = randomize_pht(10, 4_096);
        let mut sys = System::new(MicroarchProfile::skylake(), 5);
        let pid = sys.spawn("spy", AslrPolicy::Disabled);
        let stats_before = sys.core().bpu().stats().branches;
        let mut interp = Interpreter::new(program);
        let mut cpu = sys.cpu(pid);
        interp.run_to_halt(&mut cpu);
        assert!(interp.halted());
        assert_eq!(sys.core().bpu().stats().branches - stats_before, 4_096);
        // je branches were all taken, jne all not taken ⇒ roughly half the
        // executed branches were taken.
        let taken = interp.branch_log().iter().filter(|b| b.outcome.is_taken()).count();
        assert!((1_500..2_600).contains(&taken), "taken {taken}");
    }

    #[test]
    fn interpreter_works_as_a_schedulable_workload() {
        // The assembled victim slots straight into the attack's stage-2
        // trigger via the Workload trait.
        let secret = [true, false, true];
        let mut sys = System::new(MicroarchProfile::skylake(), 6);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let mut interp = Interpreter::new(secret_branch_victim(&secret));
        let mut cpu = sys.cpu(victim);
        let mut steps = 0;
        while interp.step(&mut cpu) {
            steps += 1;
            assert!(steps < 100, "must terminate");
        }
        // Two branches per loop iteration (secret je + back-edge jne).
        assert_eq!(interp.branch_log().len(), 2 * secret.len());
    }
}
