//! Instructions, labels and the layout-computing assembler.

use std::error::Error;
use std::fmt;

/// One of the machine's four general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Register 0.
    pub const R0: Reg = Reg(0);
    /// Register 1.
    pub const R1: Reg = Reg(1);
    /// Register 2.
    pub const R2: Reg = Reg(2);
    /// Register 3.
    pub const R3: Reg = Reg(3);

    /// Register index (0–3).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

/// A branch target, created by [`ProgramBuilder::new_label`] and bound to a
/// code position with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// One instruction. Encoded sizes follow x86 conventions where the paper
/// depends on them: conditional branches (`je`/`jne`) are **two bytes** —
/// the increment visible in the paper's Listing 1 — and `nop` is one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// One-byte no-op (the layout-randomisation filler of Listing 1).
    Nop,
    /// Load an immediate into a register (5 bytes).
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Copy a register (2 bytes).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst += src` (3 bytes).
    Add {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst += imm` (4 bytes).
    AddImm {
        /// Destination register.
        dst: Reg,
        /// Immediate addend.
        imm: i64,
    },
    /// `dst -= src` (3 bytes).
    Sub {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Load bit `index mod len` of the program's secret data segment into
    /// `dst` as 0/1 (4 bytes) — the `sec_data[i]` access of Listing 2.
    LoadSecret {
        /// Destination register.
        dst: Reg,
        /// Register holding the bit index.
        index: Reg,
    },
    /// Spend `cycles` cycles of non-branch work (3 bytes) — models the
    /// arithmetic surrounding the interesting branches.
    Work {
        /// Wall-clock cycles to burn.
        cycles: u16,
    },
    /// `je`: branch to `target` when the register is zero (2 bytes).
    BranchZero {
        /// Condition register.
        cond: Reg,
        /// Branch target.
        target: Label,
    },
    /// `jne`: branch to `target` when the register is non-zero (2 bytes).
    BranchNotZero {
        /// Condition register.
        cond: Reg,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump (2 bytes). Does not engage the directional
    /// predictor (direction is architecturally fixed).
    Jump {
        /// Jump target.
        target: Label,
    },
    /// Stop execution (1 byte).
    Halt,
}

impl Instr {
    /// Encoded size in bytes — this is what gives programs their
    /// byte-accurate branch layout.
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            Instr::Nop | Instr::Halt => 1,
            Instr::Mov { .. } | Instr::BranchZero { .. } | Instr::BranchNotZero { .. }
            | Instr::Jump { .. } => 2,
            Instr::Add { .. } | Instr::Sub { .. } | Instr::Work { .. } => 3,
            Instr::AddImm { .. } | Instr::LoadSecret { .. } => 4,
            Instr::MovImm { .. } => 5,
        }
    }

    /// Whether this is a conditional branch (the instructions the BPU — and
    /// the attack — care about).
    #[must_use]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self, Instr::BranchZero { .. } | Instr::BranchNotZero { .. })
    }
}

/// Errors from [`ProgramBuilder::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(Label),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            AssembleError::Empty => f.write_str("program has no instructions"),
        }
    }
}

impl Error for AssembleError {}

/// An assembled program: instructions with their code offsets, resolved
/// branch targets and a secret data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    offsets: Vec<u64>,
    /// Branch/jump targets resolved to instruction indices, parallel to
    /// `instrs` (only meaningful for control-flow instructions).
    targets: Vec<usize>,
    secret: Vec<bool>,
}

impl Program {
    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true once assembled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total code bytes.
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        self.offsets.last().map_or(0, |&o| o + self.instrs.last().map_or(0, Instr::size))
    }

    /// Instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn instr(&self, index: usize) -> Instr {
        self.instrs[index]
    }

    /// Code offset of the instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn offset(&self, index: usize) -> u64 {
        self.offsets[index]
    }

    /// Resolved target instruction index for the control-flow instruction
    /// at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn target(&self, index: usize) -> usize {
        self.targets[index]
    }

    /// The secret data segment.
    #[must_use]
    pub fn secret(&self) -> &[bool] {
        &self.secret
    }

    /// Code offsets of all conditional branches — what an attacker reads
    /// out of the binary's disassembly.
    #[must_use]
    pub fn conditional_branch_offsets(&self) -> Vec<u64> {
        self.instrs
            .iter()
            .zip(&self.offsets)
            .filter(|(i, _)| i.is_conditional_branch())
            .map(|(_, &o)| o)
            .collect()
    }
}

/// Builds a [`Program`]: push instructions, create/bind labels, assemble.
///
/// ```
/// use bscope_isa::{Instr, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let skip = b.new_label();
/// b.push(Instr::MovImm { dst: Reg::R0, imm: 0 });
/// b.push(Instr::BranchZero { cond: Reg::R0, target: skip }); // je skip
/// b.push(Instr::Nop);
/// b.bind(skip);
/// b.push(Instr::Halt);
/// let program = b.assemble().unwrap();
/// assert_eq!(program.offset(1), 5, "je sits after the 5-byte mov");
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    secret: Vec<bool>,
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends an instruction; returns its index.
    pub fn push(&mut self, instr: Instr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the position of the *next* pushed instruction.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Installs the secret data segment (readable via
    /// [`Instr::LoadSecret`]).
    pub fn set_secret(&mut self, secret: Vec<bool>) {
        self.secret = secret;
    }

    /// Lays out the code and resolves every label.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError::Empty`] for an instruction-less program and
    /// [`AssembleError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn assemble(self) -> Result<Program, AssembleError> {
        if self.instrs.is_empty() {
            return Err(AssembleError::Empty);
        }
        let mut offsets = Vec::with_capacity(self.instrs.len());
        let mut offset = 0u64;
        for instr in &self.instrs {
            offsets.push(offset);
            offset += instr.size();
        }
        let resolve = |label: Label| -> Result<usize, AssembleError> {
            let position =
                self.labels[label.0].ok_or(AssembleError::UnboundLabel(label))?;
            // Binding after the last instruction targets the end (halt-like);
            // clamp to the final instruction which must be reachable.
            Ok(position.min(self.instrs.len() - 1))
        };
        let mut targets = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            targets.push(match instr {
                Instr::BranchZero { target, .. }
                | Instr::BranchNotZero { target, .. }
                | Instr::Jump { target } => resolve(*target)?,
                _ => 0,
            });
        }
        Ok(Program { instrs: self.instrs, offsets, targets, secret: self.secret })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_byte_accurate() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push(Instr::MovImm { dst: Reg::R0, imm: 7 }); // 0, 5 bytes
        b.push(Instr::Nop); // 5
        b.push(Instr::BranchZero { cond: Reg::R0, target: l }); // 6, 2 bytes
        b.bind(l);
        b.push(Instr::Halt); // 8
        let p = b.assemble().unwrap();
        assert_eq!(p.offset(0), 0);
        assert_eq!(p.offset(1), 5);
        assert_eq!(p.offset(2), 6);
        assert_eq!(p.offset(3), 8);
        assert_eq!(p.code_bytes(), 9);
        assert_eq!(p.target(2), 3);
        assert_eq!(p.conditional_branch_offsets(), vec![6]);
    }

    #[test]
    fn unbound_label_is_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push(Instr::Jump { target: l });
        assert!(matches!(b.assemble(), Err(AssembleError::UnboundLabel(_))));
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(ProgramBuilder::new().assemble().unwrap_err(), AssembleError::Empty);
    }

    #[test]
    fn branch_sizes_match_the_paper() {
        // Listing 1's layout arithmetic relies on je/jne being two bytes
        // and nop one byte.
        assert_eq!(Instr::BranchZero { cond: Reg::R0, target: Label(0) }.size(), 2);
        assert_eq!(Instr::BranchNotZero { cond: Reg::R0, target: Label(0) }.size(), 2);
        assert_eq!(Instr::Nop.size(), 1);
    }
}
