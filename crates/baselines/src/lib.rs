//! Prior BTB-based branch predictor attacks (paper §11), used as baselines.
//!
//! The attacks preceding BranchScope all exploit the *branch target buffer*:
//! because the BTB installs an entry only when a branch is taken, the
//! presence or absence of an entry leaks the branch's direction, and
//! presence is observable through the front-end fetch-redirect bubble a
//! taken branch suffers on a BTB miss.
//!
//! * [`BtbEvictAttack`] — Aciiçmez-style: the spy installs its own entry in
//!   the victim's BTB set and detects whether the victim's taken branch
//!   evicted it;
//! * [`ShadowingAttack`] — Lee et al. branch shadowing: the spy's shadow
//!   branch at the colliding address directly observes whether the victim's
//!   branch left a BTB entry;
//! * [`compare_attacks`] — runs both baselines and BranchScope against the same
//!   victim, with and without a BTB-flush defense, reproducing the paper's
//!   claim that *BranchScope is not affected by defenses against BTB-based
//!   attacks*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb_evict;
mod compare;
mod shadowing;

pub use btb_evict::BtbEvictAttack;
pub use compare::{compare_attacks, AttackComparison, ComparisonRow};
pub use shadowing::ShadowingAttack;
