//! BranchScope vs. BTB-based baselines, with and without a BTB defense.

use crate::btb_evict::BtbEvictAttack;
use crate::shadowing::ShadowingAttack;
use bscope_bpu::{MicroarchProfile, Outcome};
use bscope_core::{AttackConfig, BranchScope};
use bscope_os::{AslrPolicy, System};
use bscope_victims::VICTIM_BRANCH_OFFSET;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One attack's accuracy with and without the BTB defense.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Attack name.
    pub attack: &'static str,
    /// Which predictor structure the attack reads.
    pub channel: &'static str,
    /// Bit-recovery accuracy on the unprotected machine.
    pub accuracy_unprotected: f64,
    /// Bit-recovery accuracy with the BTB flushed on every context switch
    /// (a representative defense against the prior BTB attacks).
    pub accuracy_btb_defended: f64,
}

impl ComparisonRow {
    /// Whether the defense reduced this attack to guessing.
    #[must_use]
    pub fn defense_kills_attack(&self) -> bool {
        self.accuracy_btb_defended < 0.65 && self.accuracy_unprotected > 0.85
    }
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} ({:<22}) unprotected {:>5.1}%   BTB-defended {:>5.1}%",
            self.attack,
            self.channel,
            100.0 * self.accuracy_unprotected,
            100.0 * self.accuracy_btb_defended,
        )
    }
}

/// The full comparison (paper §11 + the §1 claim that "BranchScope is not
/// affected by defenses against BTB-based attacks").
#[derive(Debug, Clone, PartialEq)]
pub struct AttackComparison {
    /// One row per attack.
    pub rows: Vec<ComparisonRow>,
}

impl fmt::Display for AttackComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

fn accuracy(correct: usize, total: usize) -> f64 {
    correct as f64 / total as f64
}

/// Runs BranchScope, branch shadowing and the BTB eviction attack against
/// the same secret-branch victim, first on the unprotected machine and then
/// with the OS flushing the BTB at every victim↔spy switch (the defense
/// deployed against the prior BTB attacks — cache-style protection the
/// paper notes is applicable to the BTB but not to the directional
/// predictor).
#[must_use]
pub fn compare_attacks(profile: &MicroarchProfile, bits: usize, seed: u64) -> AttackComparison {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let secret: Vec<Outcome> = (0..bits).map(|_| Outcome::from_bool(rng.gen())).collect();

    // Each attack measures on a fresh machine so residue from one attack
    // cannot contaminate another's calibration.
    let fresh = |seed: u64| -> (System, bscope_os::Pid, bscope_os::Pid, u64) {
        let mut sys = System::new(profile.clone(), seed);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
        (sys, victim, spy, target)
    };

    let run = |flush_btb: bool, seed: u64| -> (f64, f64, f64) {
        // BranchScope.
        let (mut sys, victim, spy, target) = fresh(seed);
        let mut bscope =
            BranchScope::new(AttackConfig::for_profile(profile)).expect("valid config");
        let mut bscope_ok = 0;
        for &s in &secret {
            let read = bscope.read_bit(&mut sys, spy, target, |sys| {
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
                sys.cpu(victim).branch_at(VICTIM_BRANCH_OFFSET, s);
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
            });
            if read == s {
                bscope_ok += 1;
            }
        }

        // Branch shadowing.
        let (mut sys, victim, spy, target) = fresh(seed ^ 0x10);
        let mut shadow = ShadowingAttack::new(target);
        shadow.calibrate(&mut sys, spy);
        let mut shadow_ok = 0;
        for &s in &secret {
            let read = shadow.read_bit(&mut sys, spy, 81, |sys| {
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
                sys.cpu(victim).branch_at(VICTIM_BRANCH_OFFSET, s);
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
            });
            if read == s {
                shadow_ok += 1;
            }
        }

        // BTB eviction.
        let (mut sys, victim, spy, target) = fresh(seed ^ 0x20);
        let mut evict = BtbEvictAttack::new(target);
        evict.calibrate(&mut sys, spy, 60);
        let mut evict_ok = 0;
        for &s in &secret {
            let read = evict.read_bit(&mut sys, spy, 41, |sys| {
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
                sys.cpu(victim).branch_at(VICTIM_BRANCH_OFFSET, s);
                if flush_btb {
                    sys.core_mut().bpu_mut().btb_mut().clear();
                }
            });
            if read == s {
                evict_ok += 1;
            }
        }

        (
            accuracy(bscope_ok, bits),
            accuracy(shadow_ok, bits),
            accuracy(evict_ok, bits),
        )
    };

    let (bs_open, sh_open, ev_open) = run(false, seed ^ 1);
    let (bs_def, sh_def, ev_def) = run(true, seed ^ 2);

    rows.push(ComparisonRow {
        attack: "BranchScope",
        channel: "directional PHT",
        accuracy_unprotected: bs_open,
        accuracy_btb_defended: bs_def,
    });
    rows.push(ComparisonRow {
        attack: "branch shadowing",
        channel: "BTB presence",
        accuracy_unprotected: sh_open,
        accuracy_btb_defended: sh_def,
    });
    rows.push(ComparisonRow {
        attack: "BTB eviction",
        channel: "BTB eviction",
        accuracy_unprotected: ev_open,
        accuracy_btb_defended: ev_def,
    });
    AttackComparison { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branchscope_survives_btb_defense_baselines_die() {
        let cmp = compare_attacks(&MicroarchProfile::haswell(), 120, 0xC0DE);
        let by_name = |name: &str| cmp.rows.iter().find(|r| r.attack == name).unwrap();

        let bscope = by_name("BranchScope");
        assert!(bscope.accuracy_unprotected > 0.95, "{bscope}");
        assert!(bscope.accuracy_btb_defended > 0.95, "BranchScope must survive: {bscope}");

        for name in ["branch shadowing", "BTB eviction"] {
            let row = by_name(name);
            assert!(row.accuracy_unprotected > 0.85, "{row}");
            assert!(row.accuracy_btb_defended < 0.70, "defense must kill {row}");
        }
    }

    #[test]
    fn comparison_renders() {
        let cmp = compare_attacks(&MicroarchProfile::haswell(), 20, 1);
        let text = cmp.to_string();
        assert!(text.contains("BranchScope"));
        assert!(text.lines().count() >= 3);
    }
}
