//! BTB filling/eviction attack (Aciiçmez, Koç & Seifert, 2007).

use bscope_bpu::{Outcome, VirtAddr};
use bscope_os::{Pid, System};

/// The eviction-style BTB baseline: "the spy also executes in parallel and
/// fills the BTB … the spy detects evictions of its BTB entries when the
/// victim process executes taken branches" (paper §11, fourth Aciiçmez
/// attack).
///
/// Round structure:
///
/// 1. **Fill** — the spy installs *its own* entry in the victim branch's
///    BTB set by executing a taken branch that aliases the set;
/// 2. **Victim** — the victim executes its branch once. If taken, its BTB
///    install evicts the spy's entry (direct-mapped set conflict);
/// 3. **Detect** — the spy re-executes its filling branch and times it:
///    slow (BTB miss bubble) ⇒ evicted ⇒ victim **taken**; fast ⇒ entry
///    survived ⇒ victim **not taken**.
#[derive(Debug, Clone)]
pub struct BtbEvictAttack {
    target: VirtAddr,
    threshold: f64,
}

impl BtbEvictAttack {
    /// Attack against the victim branch at `target`.
    #[must_use]
    pub fn new(target: VirtAddr) -> Self {
        BtbEvictAttack { target, threshold: 0.0 }
    }

    /// The attacked address.
    #[must_use]
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    fn filler_addr(&self, sys: &System) -> VirtAddr {
        self.target + sys.core().profile().btb_size as u64
    }

    /// Calibrates the evicted/resident timing threshold on the spy's own
    /// branches. Must run before [`BtbEvictAttack::read_bit`].
    pub fn calibrate(&mut self, sys: &mut System, spy: Pid, samples: usize) {
        let btb_size = sys.core().profile().btb_size as u64;
        let scratch = self.target ^ 0x2a_0000;
        let mut resident = Vec::with_capacity(samples);
        let mut evicted = Vec::with_capacity(samples);
        for i in 0..samples {
            let addr = scratch + (i as u64) * 13;
            // Train the branch (installs the entry), then time it resident…
            sys.cpu(spy).branch_at_abs(addr, Outcome::Taken);
            resident.push(sys.cpu(spy).branch_at_abs(addr, Outcome::Taken).latency);
            // …evict through an alias and time the (taken-bias-trained)
            // branch again with a BTB miss.
            sys.cpu(spy).branch_at_abs(addr + btb_size, Outcome::Taken);
            evicted.push(sys.cpu(spy).branch_at_abs(addr, Outcome::Taken).latency);
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        self.threshold = (mean(&resident) + mean(&evicted)) / 2.0;
    }

    /// The calibrated decision threshold in cycles.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Stage 1: install the spy's filler entry in the victim's BTB set.
    pub fn fill(&self, sys: &mut System, spy: Pid) {
        let filler = self.filler_addr(sys);
        sys.cpu(spy).branch_at_abs(filler, Outcome::Taken);
    }

    /// Stage 3: re-execute the filler and decide from its latency whether
    /// the victim evicted it.
    ///
    /// # Panics
    ///
    /// Panics if [`BtbEvictAttack::calibrate`] has not run.
    pub fn detect(&self, sys: &mut System, spy: Pid) -> Outcome {
        assert!(self.threshold > 0.0, "calibrate() must run before detection");
        let filler = self.filler_addr(sys);
        let latency = sys.cpu(spy).branch_at_abs(filler, Outcome::Taken).latency;
        // Slow ⇒ our entry was evicted ⇒ the victim's branch was taken.
        Outcome::from_bool(latency as f64 > self.threshold)
    }

    /// Reads the victim's direction by majority voting over `rounds`
    /// fill → trigger → detect rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or calibration has not run.
    pub fn read_bit(
        &self,
        sys: &mut System,
        spy: Pid,
        rounds: usize,
        mut trigger: impl FnMut(&mut System),
    ) -> Outcome {
        assert!(rounds > 0, "need at least one round");
        let mut taken_votes = 0usize;
        for _ in 0..rounds {
            self.fill(sys, spy);
            trigger(sys);
            if self.detect(sys, spy).is_taken() {
                taken_votes += 1;
            }
        }
        Outcome::from_bool(2 * taken_votes >= rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn eviction_detection_recovers_directions() {
        let mut sys = System::new(MicroarchProfile::haswell(), 41);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        let mut attack = BtbEvictAttack::new(target);
        attack.calibrate(&mut sys, spy, 60);

        let mut rng = StdRng::seed_from_u64(8);
        let secret: Vec<Outcome> = (0..200).map(|_| Outcome::from_bool(rng.gen())).collect();
        let mut correct = 0;
        for &s in &secret {
            let read = attack.read_bit(&mut sys, spy, 41, |sys| {
                sys.cpu(victim).branch_at(0x6d, s);
            });
            if read == s {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / secret.len() as f64;
        assert!(accuracy > 0.85, "eviction-attack accuracy {accuracy:.3}");
    }

    #[test]
    fn threshold_sits_between_state_means() {
        let mut sys = System::new(MicroarchProfile::haswell(), 42);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let mut attack = BtbEvictAttack::new(0x40_006d);
        attack.calibrate(&mut sys, spy, 100);
        // Resident ≈ 85, evicted ≈ 99 ⇒ threshold ≈ low 90s.
        assert!((86.0..98.0).contains(&attack.threshold()), "threshold {}", attack.threshold());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let mut sys = System::new(MicroarchProfile::haswell(), 43);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let mut attack = BtbEvictAttack::new(0x40_006d);
        attack.calibrate(&mut sys, spy, 10);
        let _ = attack.read_bit(&mut sys, spy, 0, |_| {});
    }
}
