//! Branch shadowing (Lee et al., USENIX Security 2017) against the BTB.

use bscope_bpu::{Outcome, VirtAddr};
use bscope_os::{Pid, System};

/// Branch-shadowing baseline: the spy *shadows* the victim's branch with
/// its own branch at the colliding address and infers the victim's
/// direction from BTB presence.
///
/// Round structure:
///
/// 1. **Clear** — evict any entry in the victim branch's BTB slot by
///    executing a taken branch that aliases the set with a different tag.
/// 2. **Victim** — the victim executes its branch once; only a *taken*
///    execution installs a BTB entry.
/// 3. **Shadow** — the spy executes its shadow branch (same virtual
///    address) taken, timing it: a fast execution means the BTB entry was
///    present (victim taken); a slow one carries the fetch-redirect bubble
///    of a BTB miss (victim not taken).
///
/// Unlike BranchScope this channel reads the *BTB*, so BTB-focused
/// defenses (flushing, partitioning the BTB) kill it — see
/// [`compare_attacks`](crate::compare_attacks).
#[derive(Debug, Clone)]
pub struct ShadowingAttack {
    target: VirtAddr,
    threshold: f64,
    calibration_samples: usize,
}

impl ShadowingAttack {
    /// Attack against the victim branch at `target`.
    #[must_use]
    pub fn new(target: VirtAddr) -> Self {
        ShadowingAttack { target, threshold: 0.0, calibration_samples: 60 }
    }

    /// The attacked address.
    #[must_use]
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    /// Calibrates the present/absent timing threshold by measuring the
    /// spy's own branches in both BTB states. Must run before
    /// [`ShadowingAttack::read_bit`].
    pub fn calibrate(&mut self, sys: &mut System, spy: Pid) {
        let btb_size = sys.core().profile().btb_size as u64;
        let scratch = self.target ^ 0x15_0000; // unrelated address for calibration
        let mut present = Vec::with_capacity(self.calibration_samples);
        let mut absent = Vec::with_capacity(self.calibration_samples);
        for i in 0..self.calibration_samples {
            let addr = scratch + (i as u64) * 11;
            // Train once (warms the i-cache and the PHT entry, installs the
            // BTB entry) so the timed pair differs only in BTB presence.
            sys.cpu(spy).branch_at_abs(addr, Outcome::Taken);
            present.push(self.timed_shadow(sys, spy, addr));
            // Evict through an alias, then time the BTB miss.
            sys.cpu(spy).branch_at_abs(addr + btb_size, Outcome::Taken);
            absent.push(self.timed_shadow(sys, spy, addr));
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        self.threshold = (mean(&present) + mean(&absent)) / 2.0;
    }

    /// The calibrated decision threshold in cycles.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn timed_shadow(&self, sys: &mut System, spy: Pid, addr: VirtAddr) -> u64 {
        // Warm the shadow's PHT entry toward taken first so the measurement
        // isolates the BTB effect from direction mispredictions.
        sys.cpu(spy).branch_at_abs(addr, Outcome::Taken).latency
    }

    /// Stage 1: clear the victim's BTB slot.
    pub fn prime(&self, sys: &mut System, spy: Pid) {
        let btb_size = sys.core().profile().btb_size as u64;
        sys.cpu(spy).branch_at_abs(self.target + btb_size, Outcome::Taken);
    }

    /// Stage 3: shadow-execute and decode the victim's direction.
    ///
    /// # Panics
    ///
    /// Panics if [`ShadowingAttack::calibrate`] has not run.
    pub fn probe(&self, sys: &mut System, spy: Pid) -> Outcome {
        assert!(self.threshold > 0.0, "calibrate() must run before probing");
        // Average a few measurements to beat timing jitter; the first
        // execution carries the BTB signal, later ones always hit (our own
        // install), so only the first is used.
        let first = self.timed_shadow(sys, spy, self.target);
        Outcome::from_bool((first as f64) < self.threshold)
    }

    /// Reads the victim's branch direction with majority voting over
    /// `rounds` prime → trigger → probe rounds. The single-round timing
    /// signal (a ~14-cycle fetch bubble under ~40 cycles of measurement
    /// noise) is weak, so — like the original attacks, which repeatedly
    /// trigger the victim — several rounds are aggregated.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or calibration has not run.
    pub fn read_bit(
        &self,
        sys: &mut System,
        spy: Pid,
        rounds: usize,
        mut trigger: impl FnMut(&mut System),
    ) -> Outcome {
        assert!(rounds > 0, "need at least one round");
        let mut taken_votes = 0usize;
        for _ in 0..rounds {
            self.prime(sys, spy);
            trigger(sys);
            if self.probe(sys, spy).is_taken() {
                taken_votes += 1;
            }
        }
        Outcome::from_bool(2 * taken_votes >= rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_victim_directions_with_high_accuracy() {
        let mut sys = System::new(MicroarchProfile::haswell(), 31);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        let mut attack = ShadowingAttack::new(target);
        attack.calibrate(&mut sys, spy);

        let mut rng = StdRng::seed_from_u64(7);
        let secret: Vec<Outcome> = (0..300).map(|_| Outcome::from_bool(rng.gen())).collect();
        let mut correct = 0;
        for &s in &secret {
            let read = attack.read_bit(&mut sys, spy, 81, |sys| {
                sys.cpu(victim).branch_at(0x6d, s);
            });
            if read == s {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / secret.len() as f64;
        assert!(accuracy > 0.85, "shadowing accuracy {accuracy:.3}");
    }

    #[test]
    fn probe_without_calibration_panics() {
        let mut sys = System::new(MicroarchProfile::haswell(), 32);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let attack = ShadowingAttack::new(0x40_006d);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            attack.probe(&mut sys, spy);
        }));
        assert!(result.is_err());
    }
}
