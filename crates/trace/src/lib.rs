//! Structured event tracing and metrics for the BranchScope stack.
//!
//! Every layer of the reproduction — the predictor backends, the simulated
//! core, the attack stages, the trial-runner — is a deterministic function
//! of its seed, yet until this crate the only window into a surprising
//! result was `println!` archaeology. `bscope-trace` provides the missing
//! instrument: a lightweight, allocation-frugal structured-event layer that
//! is **exactly zero-cost when disabled** (one branch on an `Option` per
//! emit site, no event construction) and **deterministic when enabled**
//! (events carry only simulated time, never wall-clock, so the same seed
//! produces the same trace on any machine and any thread count).
//!
//! The pieces:
//!
//! * [`TraceEvent`] — the event vocabulary: per-branch predictor decisions
//!   (direction, selector choice, BTB hit, latency), BTB installs,
//!   background-noise bursts, and begin/end markers for attack-stage
//!   [`Span`]s (prime, victim window, probe, randomization block);
//! * [`TraceSink`] — where events go. The trait's methods default to
//!   no-ops; [`NullSink`] is the explicit "nowhere", [`RingSink`] keeps the
//!   most recent `capacity` events *and* feeds every event (kept or
//!   evicted) into a [`MetricsRegistry`], so aggregate statistics stay
//!   exact even when the ring wraps;
//! * [`Tracer`] — the handle the instrumented code holds: disabled by
//!   default, enabled by installing a sink. [`Tracer::emit_with`] takes a
//!   closure so a disabled tracer never constructs the event;
//! * [`MetricsRegistry`] — named monotonic counters plus log2-bucketed
//!   latency histograms with exact mean/min/max and bucket-resolution
//!   percentiles; registries merge deterministically across trials;
//! * [`jsonl`] — hand-rolled JSON-Lines rendering of traces (the workspace
//!   has no serialisation dependency), one event per line, with addresses
//!   and seeds as hex strings so no value is squeezed through an `f64`.
//!
//! The crate has no dependencies and does no I/O; writing a trace to disk
//! is the caller's business (the experiments binary does it atomically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod jsonl;
mod metrics;
mod sink;

pub use event::{Span, TraceEvent, TracedEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{NullSink, RingSink, TraceCapture, TraceSink};

/// The handle instrumented code holds: either disabled (the default — one
/// `Option` check per emit site, nothing constructed, nothing stored) or
/// attached to a [`TraceSink`] that receives every event with a
/// monotonically increasing per-tracer sequence number.
///
/// `Default` is the disabled tracer, so instrumented structures can own a
/// `Tracer` unconditionally and callers can `std::mem::take` it to move a
/// live tracer in and out (the experiments harness threads one tracer
/// through each trial this way).
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    seq: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("seq", &self.seq)
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every emit is a single branch and nothing more.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer recording into a fresh [`RingSink`] that keeps the most
    /// recent `capacity` events (and exact aggregate metrics for all of
    /// them, evicted or not).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn ring(capacity: usize) -> Self {
        Tracer::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// A tracer recording into an arbitrary sink.
    #[must_use]
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink), seq: 0 }
    }

    /// Whether a sink is attached. Emit sites may use this to skip work
    /// beyond event construction (which [`Tracer::emit_with`] already
    /// defers).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one event. The closure runs only when a sink is attached,
    /// so a disabled tracer never pays for building the event.
    #[inline]
    pub fn emit_with(&mut self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &mut self.sink {
            let seq = self.seq;
            self.seq += 1;
            sink.record(seq, &build());
        }
    }

    /// Detaches the sink and returns everything it captured; the tracer
    /// reverts to disabled. A disabled tracer drains to an empty capture.
    pub fn drain(&mut self) -> TraceCapture {
        self.seq = 0;
        match self.sink.take() {
            Some(mut sink) => sink.drain(),
            None => TraceCapture::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(latency: u64) -> TraceEvent {
        TraceEvent::Branch {
            ctx: 0,
            addr: 0x30_0000,
            taken: true,
            predicted_taken: false,
            mispredicted: true,
            two_level: false,
            btb_hit: false,
            latency,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| panic!("disabled tracer must not construct events"));
        let capture = t.drain();
        assert!(capture.events.is_empty());
        assert!(capture.metrics.is_empty());
    }

    #[test]
    fn ring_tracer_records_with_increasing_seq() {
        let mut t = Tracer::ring(16);
        assert!(t.is_enabled());
        for i in 0..5 {
            t.emit_with(|| branch(80 + i));
        }
        let capture = t.drain();
        assert!(!t.is_enabled(), "drain detaches the sink");
        assert_eq!(capture.events.len(), 5);
        assert_eq!(capture.dropped, 0);
        let seqs: Vec<u64> = capture.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(capture.metrics.counter("branches"), 5);
    }

    #[test]
    fn ring_eviction_keeps_newest_and_counts_all() {
        let mut t = Tracer::ring(3);
        for i in 0..10 {
            t.emit_with(|| branch(i));
        }
        let capture = t.drain();
        assert_eq!(capture.events.len(), 3);
        assert_eq!(capture.dropped, 7);
        assert_eq!(capture.events[0].seq, 7, "oldest events evicted first");
        // Metrics see every event, including the evicted ones.
        assert_eq!(capture.metrics.counter("branches"), 10);
    }

    #[test]
    fn same_emission_sequence_gives_identical_captures() {
        let run = || {
            let mut t = Tracer::ring(8);
            for i in 0..20 {
                t.emit_with(|| branch(50 + i * 3));
                if i % 4 == 0 {
                    t.emit_with(|| TraceEvent::SpanBegin { span: Span::Probe, tsc: i * 100 });
                    t.emit_with(|| TraceEvent::SpanEnd { span: Span::Probe, tsc: i * 100 + 7 });
                }
            }
            t.drain()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.dropped, b.dropped);
    }
}
