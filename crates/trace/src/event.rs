//! The trace event vocabulary.

/// An attack or harness stage whose extent is marked by
/// [`TraceEvent::SpanBegin`] / [`TraceEvent::SpanEnd`] pairs carrying the
/// simulated timestamp, so a trace reader can attribute the predictor
/// events between them to a stage of the attack round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Span {
    /// Stage 1: priming the target PHT entry (targeted or searched prime,
    /// plus the history-reinforcement rounds on history-indexed backends).
    Prime,
    /// Stage 2: the spy's wait window around the victim trigger (the
    /// `usleep` of the paper's Listing 3) — the interval in which the
    /// primed entry is exposed to background noise.
    VictimWindow,
    /// Stage 3: the back-to-back probe pair reading the entry back.
    Probe,
    /// Execution of a Listing-1 randomization block (PHT scrambling).
    Randomize,
}

impl Span {
    /// Stable lower-case name used in JSONL output and metric keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Span::Prime => "prime",
            Span::VictimWindow => "victim_window",
            Span::Probe => "probe",
            Span::Randomize => "randomize",
        }
    }

    /// The counter key a [`crate::MetricsRegistry`] files this span under.
    #[must_use]
    pub(crate) fn counter_key(self) -> &'static str {
        match self {
            Span::Prime => "spans/prime",
            Span::VictimWindow => "spans/victim_window",
            Span::Probe => "spans/probe",
            Span::Randomize => "spans/randomize",
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured event. Plain `Copy` data with **no wall-clock anywhere**:
/// the only time is the simulated TSC, so traces are a pure function of the
/// seed and compare byte-for-byte across runs, machines and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// One conditional branch retired by the simulated core: the full
    /// predictor decision (predicted direction, whether the hybrid's
    /// selector chose the 2-level side, BTB hit) plus the measured latency
    /// an `rdtscp` pair around the branch would report.
    Branch {
        /// Hardware context (logical CPU) that executed the branch.
        ctx: u32,
        /// Virtual address of the branch instruction.
        addr: u64,
        /// Actual direction.
        taken: bool,
        /// Predicted direction.
        predicted_taken: bool,
        /// Whether the branch mispredicted (as recorded by the counters,
        /// i.e. after any measurement fuzzing).
        mispredicted: bool,
        /// Whether the selector chose the 2-level (gshare) side.
        two_level: bool,
        /// Whether the BTB held the branch's target.
        btb_hit: bool,
        /// Measured latency in cycles.
        latency: u64,
    },
    /// A taken branch installed (or refreshed) its BTB entry.
    BtbInstall {
        /// Virtual address of the branch.
        addr: u64,
        /// Branch target installed.
        target: u64,
    },
    /// A burst of background (SMT-sibling) noise branches hit the shared
    /// BPU. Recorded as a count, not per branch — noise exists to perturb
    /// the predictor, not to fill the trace.
    NoiseBurst {
        /// Number of noise branches injected.
        injected: u32,
    },
    /// A [`Span`] opened at simulated time `tsc`.
    SpanBegin {
        /// The stage that opened.
        span: Span,
        /// Simulated timestamp counter at entry.
        tsc: u64,
    },
    /// A [`Span`] closed at simulated time `tsc`.
    SpanEnd {
        /// The stage that closed.
        span: Span,
        /// Simulated timestamp counter at exit.
        tsc: u64,
    },
}

/// An event stamped with its per-tracer sequence number. Sequence numbers
/// are dense and start at zero for every trial, so `(trial_index, seq)`
/// totally orders a run's trace regardless of the thread count that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Position of this event in its tracer's emission order.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_names_are_stable() {
        assert_eq!(Span::Prime.name(), "prime");
        assert_eq!(Span::VictimWindow.name(), "victim_window");
        assert_eq!(Span::Probe.name(), "probe");
        assert_eq!(Span::Randomize.name(), "randomize");
        assert_eq!(Span::Probe.to_string(), "probe");
    }
}
