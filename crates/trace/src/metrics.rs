//! Counters and latency histograms derived from trace events.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// Number of log2 buckets: one for zero, one per bit position of a `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples with exact count, sum, min
/// and max.
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. Percentiles are therefore bucket-resolution
/// approximations (the reported value is the lower bound of the bucket the
/// rank falls in) while the mean is exact — good enough to tell an
/// 85-cycle predicted branch from a 135-cycle mispredicted one at zero
/// allocation cost, which is what this histogram exists for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Lower bound of bucket `b` (the value a percentile query reports).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the samples (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`0` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket-resolution percentile: the lower bound of the bucket the
    /// nearest-rank `p` (in `0.0..=100.0`) falls in; `0` when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, n) in self.buckets.iter_mut().zip(other.buckets) {
            *b += n;
        }
    }
}

/// Named monotonic counters plus named [`Histogram`]s.
///
/// Keys are `&'static str` so the per-event hot path performs no
/// allocation; `BTreeMap` keeps [`MetricsRegistry::summary`] output in a
/// deterministic order. Registries from independent trials merge
/// commutatively (counters add, histograms combine), so a per-experiment
/// aggregate is identical for every thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Records a sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Current value of a counter (`0` if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds a trace event into the standard counters and histograms:
    /// `branches`, `mispredicts`, `two_level_predictions`, `btb_hits`,
    /// `btb_installs`, `noise_branches`, per-span `spans/...` counts and
    /// the `branch_latency` histogram.
    pub fn observe_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Branch { mispredicted, two_level, btb_hit, latency, .. } => {
                self.incr("branches", 1);
                if mispredicted {
                    self.incr("mispredicts", 1);
                }
                if two_level {
                    self.incr("two_level_predictions", 1);
                }
                if btb_hit {
                    self.incr("btb_hits", 1);
                }
                self.observe("branch_latency", latency);
            }
            TraceEvent::BtbInstall { .. } => self.incr("btb_installs", 1),
            TraceEvent::NoiseBurst { injected } => {
                self.incr("noise_branches", u64::from(injected));
            }
            TraceEvent::SpanBegin { span, .. } => self.incr(span.counter_key(), 1),
            TraceEvent::SpanEnd { .. } => {}
        }
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            self.incr(name, v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Flattens the registry into `(name, value)` pairs in deterministic
    /// (sorted) order: counters verbatim, each histogram as
    /// `_count`/`_mean`/`_min`/`_p50`/`_p90`/`_p99`/`_max` entries.
    #[must_use]
    pub fn summary(&self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.counters.len() + self.histograms.len() * 7);
        for (&name, &v) in &self.counters {
            out.push((name.to_owned(), v as f64));
        }
        for (&name, h) in &self.histograms {
            out.push((format!("{name}_count"), h.count() as f64));
            out.push((format!("{name}_mean"), h.mean()));
            out.push((format!("{name}_min"), h.min() as f64));
            out.push((format!("{name}_p50"), h.percentile(50.0) as f64));
            out.push((format!("{name}_p90"), h.percentile(90.0) as f64));
            out.push((format!("{name}_p99"), h.percentile(99.0) as f64));
            out.push((format!("{name}_max"), h.max() as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Span;

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [85u64, 90, 135, 140, 88] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 85);
        assert_eq!(h.max(), 140);
        assert!((h.mean() - 107.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_bucket_floors() {
        let mut h = Histogram::default();
        // 90 samples in [64, 128), 10 in [128, 256).
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(200);
        }
        assert_eq!(h.percentile(50.0), 64);
        assert_eq!(h.percentile(99.0), 128);
        assert_eq!(h.percentile(100.0), 128);
        // Zero lands in its own bucket.
        let mut z = Histogram::default();
        z.observe(0);
        assert_eq!(z.percentile(50.0), 0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let sample = |vals: &[u64]| {
            let mut r = MetricsRegistry::default();
            for &v in vals {
                r.observe_event(&TraceEvent::Branch {
                    ctx: 0,
                    addr: 1,
                    taken: true,
                    predicted_taken: v > 100,
                    mispredicted: v > 100,
                    two_level: false,
                    btb_hit: true,
                    latency: v,
                });
            }
            r
        };
        let (a, b) = (sample(&[85, 90, 135]), sample(&[140, 88]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("branches"), 5);
        assert_eq!(ab.counter("mispredicts"), 2);
        assert_eq!(ab.histogram("branch_latency").unwrap().count(), 5);
    }

    #[test]
    fn observe_event_covers_the_vocabulary() {
        let mut r = MetricsRegistry::default();
        r.observe_event(&TraceEvent::BtbInstall { addr: 1, target: 2 });
        r.observe_event(&TraceEvent::NoiseBurst { injected: 4 });
        r.observe_event(&TraceEvent::SpanBegin { span: Span::Prime, tsc: 0 });
        r.observe_event(&TraceEvent::SpanEnd { span: Span::Prime, tsc: 9 });
        assert_eq!(r.counter("btb_installs"), 1);
        assert_eq!(r.counter("noise_branches"), 4);
        assert_eq!(r.counter("spans/prime"), 1);
    }

    #[test]
    fn summary_is_sorted_and_complete() {
        let mut r = MetricsRegistry::default();
        r.incr("branches", 3);
        r.incr("mispredicts", 1);
        r.observe("branch_latency", 85);
        let summary = r.summary();
        let names: Vec<&str> = summary.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted_counters = names[..2].to_vec();
        sorted_counters.sort_unstable();
        assert_eq!(&names[..2], &sorted_counters[..], "counters in sorted order");
        assert!(names.contains(&"branch_latency_mean"));
        assert!(names.contains(&"branch_latency_p99"));
        assert_eq!(summary[0], ("branches".to_owned(), 3.0));
    }
}
