//! Trace sinks: where emitted events go.

use crate::event::{TraceEvent, TracedEvent};
use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;

/// Everything a sink captured: the retained events (in emission order),
/// exact aggregate metrics over *all* recorded events (including any the
/// sink evicted), and how many events were evicted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCapture {
    /// Retained events in emission order.
    pub events: Vec<TracedEvent>,
    /// Aggregates over every recorded event, evicted or not.
    pub metrics: MetricsRegistry,
    /// Events evicted to respect the sink's capacity.
    pub dropped: u64,
}

/// Destination for trace events.
///
/// Both methods default to no-ops, so a sink only implements what it needs
/// ([`NullSink`] implements nothing). Sinks must be `Send`: the trial
/// runner hands each worker thread its own tracer, and instrumented
/// structures owning a tracer must not lose their `Send`-ness.
pub trait TraceSink: Send {
    /// Records one event with its per-tracer sequence number. Default:
    /// discard.
    fn record(&mut self, seq: u64, event: &TraceEvent) {
        let _ = (seq, event);
    }

    /// Returns everything captured so far, resetting the sink. Default:
    /// an empty capture.
    fn drain(&mut self) -> TraceCapture {
        TraceCapture::default()
    }
}

/// The explicit no-op sink: accepts and discards everything. Useful for
/// measuring the enabled-path dispatch cost in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A bounded ring buffer of the most recent `capacity` events.
///
/// Allocation-frugal: the backing store is allocated once at construction
/// and eviction reuses it, so a trial emitting millions of events performs
/// no per-event allocation. Every event — kept or evicted — is folded into
/// a [`MetricsRegistry`], so aggregate counts and latency statistics remain
/// exact however small the ring.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TracedEvent>,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl RingSink {
    /// A ring keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring sink needs room for at least one event");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
            metrics: MetricsRegistry::default(),
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, seq: u64, event: &TraceEvent) {
        self.metrics.observe_event(event);
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TracedEvent { seq, event: *event });
    }

    fn drain(&mut self) -> TraceCapture {
        TraceCapture {
            events: std::mem::take(&mut self.events).into(),
            metrics: std::mem::take(&mut self.metrics),
            dropped: std::mem::replace(&mut self.dropped, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_discards_everything() {
        let mut s = NullSink;
        s.record(0, &TraceEvent::NoiseBurst { injected: 3 });
        assert_eq!(s.drain(), TraceCapture::default());
    }

    #[test]
    fn ring_drain_resets() {
        let mut s = RingSink::new(2);
        for i in 0..5 {
            s.record(i, &TraceEvent::NoiseBurst { injected: 1 });
        }
        let first = s.drain();
        assert_eq!(first.events.len(), 2);
        assert_eq!(first.dropped, 3);
        assert_eq!(first.metrics.counter("noise_branches"), 5);
        let second = s.drain();
        assert!(second.events.is_empty());
        assert_eq!(second.dropped, 0);
        assert!(second.metrics.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_capacity_rejected() {
        let _ = RingSink::new(0);
    }
}
