//! Hand-rolled JSON-Lines rendering of traces (the workspace has no JSON
//! serialisation dependency; see `bscope-experiments`' `json.rs` for the
//! same approach applied to the report format).
//!
//! One event per line, each a complete JSON object. Addresses, targets and
//! seeds are rendered as `"0x..."` hex *strings*: a `u64` does not fit a
//! JSON number's `f64` mantissa, and hex is what you want to read when
//! cross-referencing PHT indices anyway. Everything a line contains is
//! deterministic — the `(trial, seq)` pair totally orders a run's trace
//! whatever thread count produced it.

use crate::event::{TraceEvent, TracedEvent};
use std::fmt::Write as _;

/// JSON string escaping: quotes, backslashes, control characters and DEL.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The common prefix of every line: type, experiment, trial.
fn head(kind: &str, experiment: &str, trial: usize) -> String {
    format!("{{\"type\":\"{kind}\",\"experiment\":\"{}\",\"trial\":{trial}", escape(experiment))
}

/// The line opening a trial's events: carries the trial's replay seed.
#[must_use]
pub fn trial_begin_line(experiment: &str, trial: usize, seed: u64) -> String {
    format!("{},\"seed\":\"{seed:#018x}\"}}\n", head("trial_begin", experiment, trial))
}

/// The line closing a trial: how many events the sink retained and how
/// many it evicted (a nonzero `dropped` says the ring wrapped — the
/// aggregate metrics still saw every event).
#[must_use]
pub fn trial_end_line(experiment: &str, trial: usize, events: usize, dropped: u64) -> String {
    format!(
        "{},\"events\":{events},\"dropped\":{dropped}}}\n",
        head("trial_end", experiment, trial)
    )
}

/// One event line.
#[must_use]
pub fn event_line(experiment: &str, trial: usize, e: &TracedEvent) -> String {
    let mut out = match e.event {
        TraceEvent::Branch { .. } => head("branch", experiment, trial),
        TraceEvent::BtbInstall { .. } => head("btb_install", experiment, trial),
        TraceEvent::NoiseBurst { .. } => head("noise_burst", experiment, trial),
        TraceEvent::SpanBegin { .. } => head("span_begin", experiment, trial),
        TraceEvent::SpanEnd { .. } => head("span_end", experiment, trial),
    };
    let _ = write!(out, ",\"seq\":{}", e.seq);
    match e.event {
        TraceEvent::Branch {
            ctx,
            addr,
            taken,
            predicted_taken,
            mispredicted,
            two_level,
            btb_hit,
            latency,
        } => {
            let _ = write!(
                out,
                ",\"ctx\":{ctx},\"addr\":\"{addr:#x}\",\"taken\":{taken},\
                 \"predicted_taken\":{predicted_taken},\"mispredicted\":{mispredicted},\
                 \"two_level\":{two_level},\"btb_hit\":{btb_hit},\"latency\":{latency}"
            );
        }
        TraceEvent::BtbInstall { addr, target } => {
            let _ = write!(out, ",\"addr\":\"{addr:#x}\",\"target\":\"{target:#x}\"");
        }
        TraceEvent::NoiseBurst { injected } => {
            let _ = write!(out, ",\"injected\":{injected}");
        }
        TraceEvent::SpanBegin { span, tsc } | TraceEvent::SpanEnd { span, tsc } => {
            let _ = write!(out, ",\"span\":\"{}\",\"tsc\":{tsc}", span.name());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Span;

    #[test]
    fn lines_are_single_complete_objects() {
        let lines = [
            trial_begin_line("table2", 3, 0x1234),
            event_line(
                "table2",
                3,
                &TracedEvent {
                    seq: 0,
                    event: TraceEvent::Branch {
                        ctx: 0,
                        addr: 0x30_0000,
                        taken: true,
                        predicted_taken: false,
                        mispredicted: true,
                        two_level: false,
                        btb_hit: false,
                        latency: 131,
                    },
                },
            ),
            event_line(
                "table2",
                3,
                &TracedEvent { seq: 1, event: TraceEvent::BtbInstall { addr: 5, target: 7 } },
            ),
            event_line(
                "table2",
                3,
                &TracedEvent { seq: 2, event: TraceEvent::NoiseBurst { injected: 4 } },
            ),
            event_line(
                "table2",
                3,
                &TracedEvent { seq: 3, event: TraceEvent::SpanBegin { span: Span::Prime, tsc: 9 } },
            ),
            trial_end_line("table2", 3, 4, 0),
        ];
        for line in &lines {
            assert!(line.starts_with("{\"type\":\""), "line: {line}");
            assert!(line.ends_with("}\n"), "line: {line}");
            assert_eq!(line.matches('\n').count(), 1, "one line per event: {line}");
            // Cheap well-formedness: balanced braces and an even quote count.
            assert_eq!(
                line.chars().filter(|&c| c == '{').count(),
                line.chars().filter(|&c| c == '}').count()
            );
            assert_eq!(line.chars().filter(|&c| c == '"').count() % 2, 0);
        }
        assert!(lines[0].contains("\"seed\":\"0x0000000000001234\""));
        assert!(lines[1].contains("\"addr\":\"0x300000\"") && lines[1].contains("\"latency\":131"));
        assert!(lines[4].contains("\"span\":\"prime\"") && lines[4].contains("\"tsc\":9"));
        assert!(lines[5].contains("\"events\":4") && lines[5].contains("\"dropped\":0"));
    }

    #[test]
    fn experiment_names_are_escaped() {
        let line = trial_begin_line("we\"ird\x7f", 0, 1);
        assert!(line.contains("we\\\"ird\\u007f"), "line: {line}");
    }
}
