//! Deterministic parallel trial-runner.
//!
//! Every experiment in this repo is a Monte Carlo loop: run N independent
//! simulated trials, aggregate. This crate runs those trials across
//! threads while keeping the output a pure function of `(n, base_seed)`:
//!
//! * each trial's RNG seed is derived from `(base_seed, trial_index)` by
//!   [`trial_seed`] — never from a worker index or scheduling order;
//! * results come back in trial order regardless of which worker ran
//!   which trial.
//!
//! So `run_trials(n, seed, threads, f)` is bit-identical for any
//! `threads`, including 1 — verified by tests here and regression tests
//! in the experiments binary. This replaces per-worker seed sharding
//! (previously in fig4), where changing the thread count changed which
//! seeds were run and therefore the results.
//!
//! Work distribution is a shared atomic counter, so long and short trials
//! interleave without any static partitioning assumptions.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 mixing step: maps any `u64` to a well-scrambled `u64`.
///
/// This is the finalizer from Vigna's SplitMix64; single-bit input
/// differences flip about half the output bits, so consecutive trial
/// indices yield statistically independent seeds.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed for trial `trial_idx` of a run with `base_seed`.
///
/// Pure function of its arguments: independent of thread count, worker
/// identity, and scheduling. XORing the mixed index into the mixed base
/// (rather than `base ^ idx` directly) decorrelates both low-bit-only
/// base seeds and consecutive indices.
#[inline]
#[must_use]
pub fn trial_seed(base_seed: u64, trial_idx: u64) -> u64 {
    splitmix64(base_seed) ^ splitmix64(trial_idx.wrapping_add(0x5EED))
}

/// Resolves a requested thread count: `0` means available parallelism.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    }
}

/// Runs `n` independent trials of `f` on `threads` worker threads and
/// returns the results in trial order.
///
/// `f` receives `(trial_idx, seed)` with `seed = trial_seed(base_seed,
/// trial_idx)`; it must derive all its randomness from that seed. Under
/// that contract the returned vector is bit-identical for every value of
/// `threads` (`0` means all available cores).
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn run_trials<T, F>(n: usize, base_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(|idx| f(idx, trial_seed(base_seed, idx as u64))).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let result = f(idx, trial_seed(base_seed, idx as u64));
                *slots[idx].lock().expect("trial slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.into_inner()
                .expect("trial slot poisoned")
                .unwrap_or_else(|| panic!("trial {idx} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn seeds_are_pure_and_distinct() {
        assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
        let seeds: HashSet<u64> = (0..10_000).map(|i| trial_seed(0xB5C0_9E01, i)).collect();
        assert_eq!(seeds.len(), 10_000, "trial seeds must not collide in practice");
        // A low-entropy base seed must still give unrelated streams.
        assert_ne!(trial_seed(0, 0) & 0xFFFF_FFFF, trial_seed(1, 0) & 0xFFFF_FFFF);
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for the standard SplitMix64 finalizer,
        // state = input (output of the first next() call).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let out = run_trials(100, 42, 4, |idx, _seed| idx * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_invariant_across_thread_counts() {
        // The tentpole property: same base seed => identical results for
        // any thread count. Each trial folds its seed through some mixing
        // so ordering bugs would corrupt the comparison.
        let run = |threads| {
            run_trials(64, 0xDEAD_BEEF, threads, |idx, seed| {
                let mut acc = seed;
                for _ in 0..(idx % 7) {
                    acc = splitmix64(acc);
                }
                (idx, acc)
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
        let out = run_trials(16, 1, 0, |_idx, seed| seed);
        assert_eq!(out, run_trials(16, 1, 1, |_idx, seed| seed));
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(run_trials(0, 9, 8, |idx, _| idx).is_empty());
        assert_eq!(run_trials(1, 9, 8, |idx, _| idx), vec![0]);
    }

    #[test]
    fn all_trials_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_trials(257, 5, 8, |idx, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            idx
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let out = run_trials(3, 11, 64, |idx, seed| (idx, seed));
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].1, trial_seed(11, 2));
    }
}
