//! Deterministic parallel trial-runner with panic isolation.
//!
//! Every experiment in this repo is a Monte Carlo loop: run N independent
//! simulated trials, aggregate. This crate runs those trials across
//! threads while keeping the output a pure function of `(n, base_seed)`:
//!
//! * each trial's RNG seed is derived from `(base_seed, trial_index)` by
//!   [`trial_seed`] — never from a worker index or scheduling order;
//! * results come back in trial order regardless of which worker ran
//!   which trial.
//!
//! So `run_trials(n, seed, threads, f)` is bit-identical for any
//! `threads`, including 1 — verified by tests here and regression tests
//! in the experiments binary. This replaces per-worker seed sharding
//! (previously in fig4), where changing the thread count changed which
//! seeds were run and therefore the results.
//!
//! Work distribution is a shared atomic counter, so long and short trials
//! interleave without any static partitioning assumptions.
//!
//! # Fault tolerance
//!
//! A panicking trial no longer takes the whole run (or process) down
//! silently. Every trial body executes under [`std::panic::catch_unwind`];
//! what happens next is governed by a [`FaultPolicy`]:
//!
//! * [`FaultPolicy::Propagate`] (the [`run_trials`] default) re-raises the
//!   panic of the lowest-index failed trial, with the trial index and seed
//!   prepended so the failure is attributable and replayable;
//! * [`FaultPolicy::RecordAndSkip`] records each failure as a
//!   [`TrialError`] and keeps going; the resulting [`TrialReport`] (a
//!   `None` slot per failed trial plus the index-sorted failure list) is
//!   bit-identical across thread counts, because trial seeds — and
//!   therefore which trials fail — never depend on scheduling.
//!
//! [`FaultPlan`] provides deterministic fault *injection* for exercising
//! these paths in CI: per-trial panic/delay decisions keyed off the trial
//! seed, so an injected fault fires on the same trials for every thread
//! count.
//!
//! # Tracing
//!
//! [`run_trials_traced`] extends the same contract to observability: each
//! trial gets its own [`bscope_trace::Tracer`] and the captured events come
//! back as [`TrialTrace`]s stamped with `(trial_index, seed)`, collected in
//! trial order. A run's concatenated trace is therefore bit-identical
//! across thread counts, just like its results.

#![forbid(unsafe_code)]

use bscope_trace::{MetricsRegistry, TracedEvent, Tracer};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// SplitMix64 mixing step: maps any `u64` to a well-scrambled `u64`.
///
/// This is the finalizer from Vigna's SplitMix64; single-bit input
/// differences flip about half the output bits, so consecutive trial
/// indices yield statistically independent seeds.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed for trial `trial_idx` of a run with `base_seed`.
///
/// Pure function of its arguments: independent of thread count, worker
/// identity, and scheduling. XORing the mixed index into the mixed base
/// (rather than `base ^ idx` directly) decorrelates both low-bit-only
/// base seeds and consecutive indices.
#[inline]
#[must_use]
pub fn trial_seed(base_seed: u64, trial_idx: u64) -> u64 {
    splitmix64(base_seed) ^ splitmix64(trial_idx.wrapping_add(0x5EED))
}

/// Resolves a requested thread count: `0` means available parallelism.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    }
}

/// What the runner does when a trial panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Re-raise the panic of the lowest-index failed trial, with the trial
    /// index and seed prepended to the payload. This is the behaviour of
    /// the plain [`run_trials`] entry point.
    #[default]
    Propagate,
    /// Record each failure as a [`TrialError`], leave `None` in that
    /// trial's result slot, and keep running the remaining trials. The
    /// resulting [`TrialReport`] is bit-identical across thread counts.
    RecordAndSkip,
}

/// One trial's failure: which trial, its (replayable) seed, and the panic
/// payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    /// Index of the failed trial.
    pub index: usize,
    /// The seed the trial ran with (`trial_seed(base_seed, index)`), so the
    /// failure can be replayed in isolation.
    pub seed: u64,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case), or a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {} (seed {:#018x}) panicked: {}", self.index, self.seed, self.message)
    }
}

impl std::error::Error for TrialError {}

/// Renders a `catch_unwind` payload as text (`&str` / `String` payloads
/// verbatim, anything else as a placeholder).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Outcome of a [`run_trials_with`] run: per-trial results in trial order
/// (`None` where the trial panicked under [`FaultPolicy::RecordAndSkip`])
/// plus the failures sorted by trial index.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport<T> {
    /// One slot per trial, in trial order; `None` marks a skipped failure.
    pub results: Vec<Option<T>>,
    /// All trial failures, sorted by trial index.
    pub failures: Vec<TrialError>,
}

impl<T> TrialReport<T> {
    /// `true` when every trial produced a result.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwraps a fully successful report into the plain result vector.
    ///
    /// # Panics
    ///
    /// Panics with the first failure if any trial failed.
    #[must_use]
    pub fn expect_complete(self) -> Vec<T> {
        if let Some(first) = self.failures.first() {
            panic!("{first}");
        }
        self.results.into_iter().map(|r| r.expect("complete report has all results")).collect()
    }
}

/// Deterministic per-trial fault injection: panic and/or delay decisions
/// keyed off the trial seed (and optionally a specific trial index), so an
/// injected fault fires on the same trials regardless of thread count.
///
/// Delays perturb *scheduling* without touching results — useful for
/// demonstrating that [`FaultPolicy::RecordAndSkip`] output really is
/// invariant under worker-interleaving changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    salt: u64,
    panic_one_in: u64,
    panic_on_index: Option<usize>,
    delay_one_in: u64,
    delay_micros: u64,
}

/// Prefix of every panic message raised by [`FaultPlan::apply`].
pub const INJECTED_FAULT_PREFIX: &str = "injected fault";

impl FaultPlan {
    /// An inert plan (injects nothing) keyed with `salt`; chain the
    /// builder methods to arm it.
    #[must_use]
    pub fn keyed(salt: u64) -> Self {
        FaultPlan { salt, panic_one_in: 0, panic_on_index: None, delay_one_in: 0, delay_micros: 0 }
    }

    /// Panic on roughly one in `one_in` trials, selected by the trial seed
    /// (`0` disables seed-keyed panics).
    #[must_use]
    pub fn panic_one_in(mut self, one_in: u64) -> Self {
        self.panic_one_in = one_in;
        self
    }

    /// Panic on exactly the trial with this index.
    #[must_use]
    pub fn panic_on_index(mut self, index: usize) -> Self {
        self.panic_on_index = Some(index);
        self
    }

    /// Sleep `micros` on roughly one in `one_in` trials (seed-keyed), to
    /// shake worker scheduling without changing any result.
    #[must_use]
    pub fn delay_one_in(mut self, one_in: u64, micros: u64) -> Self {
        self.delay_one_in = one_in;
        self.delay_micros = micros;
        self
    }

    /// Whether the plan panics this trial. Pure function of `(index, seed)`.
    #[must_use]
    pub fn should_panic(&self, index: usize, seed: u64) -> bool {
        if self.panic_on_index == Some(index) {
            return true;
        }
        self.panic_one_in > 0 && splitmix64(seed ^ self.salt).is_multiple_of(self.panic_one_in)
    }

    /// Applies the plan to one trial: possibly sleeps, then possibly
    /// panics with a message carrying the trial index and seed.
    ///
    /// # Panics
    ///
    /// Panics when [`FaultPlan::should_panic`] selects this trial — that
    /// is the plan's entire purpose.
    pub fn apply(&self, index: usize, seed: u64) {
        if self.delay_one_in > 0
            && self.delay_micros > 0
            && splitmix64(seed ^ self.salt ^ 0xDE1A).is_multiple_of(self.delay_one_in)
        {
            std::thread::sleep(Duration::from_micros(self.delay_micros));
        }
        if self.should_panic(index, seed) {
            panic!("{INJECTED_FAULT_PREFIX} at trial {index} (seed {seed:#018x})");
        }
    }
}

/// Options for [`run_trials_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// What to do when a trial panics.
    pub policy: FaultPolicy,
    /// Optional deterministic fault injection applied before each trial.
    pub fault: Option<FaultPlan>,
}

/// Runs `n` independent trials of `f` and returns a [`TrialReport`]:
/// results in trial order, with panicking trials handled per
/// `opts.policy`. See [`run_trials`] for the seed/threading contract.
///
/// # Panics
///
/// Under [`FaultPolicy::Propagate`], re-raises the panic of the
/// lowest-index failed trial with its index and seed prepended.
pub fn run_trials_with<T, F>(n: usize, base_seed: u64, opts: &RunOptions, f: F) -> TrialReport<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let threads = resolve_threads(opts.threads).min(n.max(1));
    // Runs one trial under catch_unwind. `AssertUnwindSafe` is sound here
    // for the same reason it is in rayon-style runners: on Err we either
    // abort the whole run (Propagate) or record the failure and never read
    // this trial's partial state — each trial owns its state, derived only
    // from (index, seed).
    let one_trial = |idx: usize| -> Result<T, TrialError> {
        let seed = trial_seed(base_seed, idx as u64);
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &opts.fault {
                plan.apply(idx, seed);
            }
            f(idx, seed)
        }))
        .map_err(|payload| TrialError { index: idx, seed, message: panic_message(&*payload) })
    };

    let mut failures: Vec<TrialError>;
    let results: Vec<Option<T>>;
    if threads <= 1 {
        failures = Vec::new();
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            match one_trial(idx) {
                Ok(v) => out.push(Some(v)),
                Err(e) => {
                    if opts.policy == FaultPolicy::Propagate {
                        panic!("{e}");
                    }
                    failures.push(e);
                    out.push(None);
                }
            }
        }
        results = out;
    } else {
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failed: Mutex<Vec<TrialError>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    match one_trial(idx) {
                        Ok(v) => *slots[idx].lock().expect("trial slot poisoned") = Some(v),
                        Err(e) => {
                            failed.lock().expect("failure list poisoned").push(e);
                            if opts.policy == FaultPolicy::Propagate {
                                // No point finishing the run we are about
                                // to abandon; results are discarded.
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
        });

        failures = failed.into_inner().expect("failure list poisoned");
        failures.sort_by_key(|e| e.index);
        if opts.policy == FaultPolicy::Propagate {
            if let Some(first) = failures.first() {
                panic!("{first}");
            }
        }
        results = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("trial slot poisoned"))
            .collect();
    }

    if opts.policy == FaultPolicy::RecordAndSkip {
        debug_assert!(
            results.iter().filter(|r| r.is_none()).count() == failures.len(),
            "every empty slot must have a matching failure"
        );
    }
    TrialReport { results, failures }
}

/// One trial's trace: the events its tracer captured, stamped with the
/// `(trial_index, seed)` pair that makes any line replayable in isolation
/// (`trial_seed(base_seed, trial_index)` reproduces the trial exactly).
///
/// Collected in trial order by [`run_trials_traced`], so the concatenated
/// trace of a run is bit-identical for every thread count — the same
/// guarantee the runner gives for results extends to observability.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialTrace {
    /// Index of the trial that produced these events.
    pub trial_index: usize,
    /// The trial's seed (`trial_seed(base_seed, trial_index)`).
    pub seed: u64,
    /// Retained events in emission order (per-trial `seq` starts at 0).
    pub events: Vec<TracedEvent>,
    /// Exact aggregates over every event the trial emitted, including any
    /// the ring sink evicted.
    pub metrics: MetricsRegistry,
    /// Events evicted by the trial's ring sink.
    pub dropped: u64,
}

/// Traced variant of [`run_trials_with`]: each trial additionally receives
/// a `&mut Tracer` — ring-buffered with `capacity.unwrap()` slots when
/// `capacity` is `Some`, disabled (and free) when `None` — and the traces
/// come back as [`TrialTrace`]s in trial order alongside the report.
///
/// The tracer is constructed, used and drained entirely inside the trial,
/// so trial isolation and thread-count invariance are preserved by
/// construction: a trace line's position depends only on
/// `(trial_index, seq)`, never on scheduling. With `capacity = None` the
/// trace list is empty and the only cost over [`run_trials_with`] is
/// passing the disabled tracer.
///
/// Trials that panic under [`FaultPolicy::RecordAndSkip`] contribute no
/// trace (their events unwound with them); their failure is still listed
/// in the report.
///
/// # Panics
///
/// Under [`FaultPolicy::Propagate`], re-raises the panic of the
/// lowest-index failed trial, exactly as [`run_trials_with`].
pub fn run_trials_traced<T, F>(
    n: usize,
    base_seed: u64,
    opts: &RunOptions,
    capacity: Option<usize>,
    f: F,
) -> (TrialReport<T>, Vec<TrialTrace>)
where
    T: Send,
    F: Fn(usize, u64, &mut Tracer) -> T + Sync,
{
    let combined = run_trials_with(n, base_seed, opts, |idx, seed| {
        let mut tracer = match capacity {
            Some(cap) => Tracer::ring(cap),
            None => Tracer::disabled(),
        };
        let value = f(idx, seed, &mut tracer);
        (value, tracer.drain())
    });

    let mut results = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(if capacity.is_some() { n } else { 0 });
    for (idx, slot) in combined.results.into_iter().enumerate() {
        match slot {
            Some((value, capture)) => {
                results.push(Some(value));
                if capacity.is_some() {
                    traces.push(TrialTrace {
                        trial_index: idx,
                        seed: trial_seed(base_seed, idx as u64),
                        events: capture.events,
                        metrics: capture.metrics,
                        dropped: capture.dropped,
                    });
                }
            }
            None => results.push(None),
        }
    }
    (TrialReport { results, failures: combined.failures }, traces)
}

/// Runs `n` independent trials of `f` on `threads` worker threads and
/// returns the results in trial order.
///
/// `f` receives `(trial_idx, seed)` with `seed = trial_seed(base_seed,
/// trial_idx)`; it must derive all its randomness from that seed. Under
/// that contract the returned vector is bit-identical for every value of
/// `threads` (`0` means all available cores).
///
/// # Panics
///
/// A panicking trial is re-raised with its trial index and seed prepended
/// ([`FaultPolicy::Propagate`]); use [`run_trials_with`] to record and
/// skip failures instead.
pub fn run_trials<T, F>(n: usize, base_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    run_trials_with(
        n,
        base_seed,
        &RunOptions { threads, policy: FaultPolicy::Propagate, fault: None },
        f,
    )
    .expect_complete()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn seeds_are_pure_and_distinct() {
        assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
        let seeds: HashSet<u64> = (0..10_000).map(|i| trial_seed(0xB5C0_9E01, i)).collect();
        assert_eq!(seeds.len(), 10_000, "trial seeds must not collide in practice");
        // A low-entropy base seed must still give unrelated streams.
        assert_ne!(trial_seed(0, 0) & 0xFFFF_FFFF, trial_seed(1, 0) & 0xFFFF_FFFF);
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for the standard SplitMix64 finalizer,
        // state = input (output of the first next() call).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let out = run_trials(100, 42, 4, |idx, _seed| idx * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_invariant_across_thread_counts() {
        // The tentpole property: same base seed => identical results for
        // any thread count. Each trial folds its seed through some mixing
        // so ordering bugs would corrupt the comparison.
        let run = |threads| {
            run_trials(64, 0xDEAD_BEEF, threads, |idx, seed| {
                let mut acc = seed;
                for _ in 0..(idx % 7) {
                    acc = splitmix64(acc);
                }
                (idx, acc)
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
        let out = run_trials(16, 1, 0, |_idx, seed| seed);
        assert_eq!(out, run_trials(16, 1, 1, |_idx, seed| seed));
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(run_trials(0, 9, 8, |idx, _| idx).is_empty());
        assert_eq!(run_trials(1, 9, 8, |idx, _| idx), vec![0]);
    }

    #[test]
    fn all_trials_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_trials(257, 5, 8, |idx, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            idx
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let out = run_trials(3, 11, 64, |idx, seed| (idx, seed));
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].1, trial_seed(11, 2));
    }

    // --- fault tolerance ---

    /// Runs `body` under catch_unwind and returns the panic payload text.
    fn panic_text(body: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(body).expect_err("body must panic");
        panic_message(&*payload)
    }

    #[test]
    fn propagating_panic_names_trial_index_and_seed() {
        for threads in [1, 4] {
            let msg = panic_text(move || {
                let _ = run_trials(16, 0xB5C0_9E01, threads, |idx, _seed| {
                    assert!(idx != 7, "boom");
                    idx
                });
            });
            let seed = trial_seed(0xB5C0_9E01, 7);
            assert!(msg.contains("trial 7"), "missing index in: {msg}");
            assert!(msg.contains(&format!("{seed:#018x}")), "missing seed in: {msg}");
            assert!(msg.contains("boom"), "missing payload in: {msg}");
        }
    }

    #[test]
    fn skip_policy_records_failures_and_keeps_going() {
        let opts = RunOptions { threads: 1, policy: FaultPolicy::RecordAndSkip, fault: None };
        let report = run_trials_with(10, 3, &opts, |idx, _seed| {
            assert!(idx % 4 != 1, "trial dies");
            idx * 2
        });
        assert_eq!(report.failures.len(), 3); // trials 1, 5, 9
        assert_eq!(report.failures.iter().map(|e| e.index).collect::<Vec<_>>(), vec![1, 5, 9]);
        for e in &report.failures {
            assert_eq!(e.seed, trial_seed(3, e.index as u64));
            assert!(e.message.contains("trial dies"));
        }
        assert_eq!(report.results.len(), 10);
        assert!(report.results[1].is_none() && report.results[5].is_none());
        assert_eq!(report.results[2], Some(4));
        assert!(!report.is_complete());
    }

    #[test]
    fn skip_policy_output_is_thread_count_invariant() {
        // Panics are seed-keyed and a seed-keyed delay shakes scheduling;
        // the report must still be identical for every thread count.
        let plan = FaultPlan::keyed(0xFA17).panic_one_in(5).delay_one_in(3, 200);
        let run = |threads| {
            let opts = RunOptions { threads, policy: FaultPolicy::RecordAndSkip, fault: Some(plan) };
            run_trials_with(48, 0xB5C0_9E01, &opts, |idx, seed| (idx, splitmix64(seed)))
        };
        let reference = run(1);
        assert!(!reference.is_complete(), "plan should fault some trials");
        assert!(reference.failures.len() < 48, "plan should not fault every trial");
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn fault_plan_is_deterministic_and_targeted() {
        let plan = FaultPlan::keyed(9).panic_on_index(4);
        assert!(plan.should_panic(4, 12345));
        assert!(!plan.should_panic(5, 12345));
        let msg = panic_text(move || plan.apply(4, trial_seed(1, 4)));
        assert!(msg.starts_with(INJECTED_FAULT_PREFIX));
        assert!(msg.contains("trial 4"));

        // Seed-keyed selection is a pure function of the seed.
        let keyed = FaultPlan::keyed(0xAB).panic_one_in(4);
        let hits: Vec<bool> = (0..64).map(|i| keyed.should_panic(i, trial_seed(7, i as u64))).collect();
        assert_eq!(
            hits,
            (0..64).map(|i| keyed.should_panic(i, trial_seed(7, i as u64))).collect::<Vec<_>>()
        );
        assert!(hits.iter().any(|&h| h) && !hits.iter().all(|&h| h));
    }

    // --- tracing ---

    use bscope_trace::TraceEvent;

    /// A deterministic trial body that emits through the tracer: the seed
    /// drives both the result and the emitted events.
    fn traced_body(idx: usize, seed: u64, tracer: &mut Tracer) -> u64 {
        let mut acc = seed;
        for round in 0..(idx % 5) + 1 {
            acc = splitmix64(acc);
            let latency = 60 + (acc % 100);
            tracer.emit_with(|| TraceEvent::Branch {
                ctx: 0,
                addr: 0x1000 + round as u64,
                taken: acc & 1 == 1,
                predicted_taken: acc & 2 == 2,
                mispredicted: acc & 3 == 3,
                two_level: false,
                btb_hit: true,
                latency,
            });
        }
        acc
    }

    #[test]
    fn traced_runner_matches_untraced_results_and_stamps_traces() {
        let opts = RunOptions::default();
        let (report, traces) = run_trials_traced(12, 0xB5C0_9E01, &opts, Some(64), traced_body);
        let plain = run_trials(12, 0xB5C0_9E01, 1, |idx, seed| {
            traced_body(idx, seed, &mut Tracer::disabled())
        });
        assert_eq!(report.expect_complete(), plain, "tracing must not change results");
        assert_eq!(traces.len(), 12);
        for (idx, t) in traces.iter().enumerate() {
            assert_eq!(t.trial_index, idx, "traces come back in trial order");
            assert_eq!(t.seed, trial_seed(0xB5C0_9E01, idx as u64), "stamped with the replay seed");
            assert_eq!(t.events.len(), idx % 5 + 1);
            assert_eq!(t.metrics.counter("branches"), (idx % 5 + 1) as u64);
            assert_eq!(t.events[0].seq, 0, "per-trial sequence numbers restart at zero");
        }
    }

    #[test]
    fn traces_are_thread_count_invariant() {
        let run = |threads| {
            let opts = RunOptions { threads, ..RunOptions::default() };
            run_trials_traced(24, 0xFACE, &opts, Some(64), traced_body)
        };
        let (ref_report, ref_traces) = run(1);
        for threads in [2, 3, 8] {
            let (report, traces) = run(threads);
            assert_eq!(report, ref_report, "threads={threads}");
            assert_eq!(traces, ref_traces, "threads={threads} trace diverged");
        }
    }

    #[test]
    fn no_capacity_means_no_traces_and_no_ring() {
        let calls = AtomicUsize::new(0);
        let opts = RunOptions::default();
        let (report, traces) = run_trials_traced(8, 5, &opts, None, |idx, seed, tracer| {
            assert!(!tracer.is_enabled(), "capacity=None hands trials a disabled tracer");
            calls.fetch_add(1, Ordering::Relaxed);
            traced_body(idx, seed, tracer)
        });
        assert!(traces.is_empty());
        assert_eq!(report.results.len(), 8);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn failed_trials_contribute_no_trace_but_are_reported() {
        let plan = FaultPlan::keyed(0x7E57).panic_on_index(3);
        let opts =
            RunOptions { threads: 1, policy: FaultPolicy::RecordAndSkip, fault: Some(plan) };
        let (report, traces) = run_trials_traced(6, 9, &opts, Some(16), traced_body);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 3);
        assert!(report.results[3].is_none());
        assert_eq!(traces.len(), 5, "the failed trial's trace unwound with it");
        assert!(traces.iter().all(|t| t.trial_index != 3));
    }

    #[test]
    fn trial_error_display_is_replayable() {
        let e = TrialError { index: 12, seed: 0xABCD, message: "oops".into() };
        let s = e.to_string();
        assert!(s.contains("trial 12") && s.contains("0x000000000000abcd") && s.contains("oops"));
    }
}
