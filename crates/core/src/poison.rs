//! Branch poisoning (paper §1): using the shared PHT to *change* the
//! victim's predictor behaviour instead of reading it.
//!
//! "The attacker may also change the predictor state, changing its behavior
//! in the victim. … The branch poisoning attack presented in Spectre is
//! based on the same basic principle as BranchScope — exploiting collisions
//! between different branch instructions in the branch predictor data
//! structures."
//!
//! The primitive is the mirror image of the read attack: instead of priming
//! an entry and probing it afterwards, the attacker saturates the entry in
//! the direction *opposite* to the victim's next execution, forcing a
//! misprediction (and hence transient execution down the wrong path) at a
//! branch of the attacker's choosing.

use bscope_bpu::{Outcome, PhtState, VirtAddr};
use bscope_os::{CpuView, Pid, System};
use crate::prime::TargetedPrime;

/// A branch-poisoning attacker: forces the prediction of a chosen victim
/// branch.
#[derive(Debug)]
pub struct BranchPoisoner {
    target: VirtAddr,
    prime: Option<TargetedPrime>,
}

impl BranchPoisoner {
    /// Poisoner for the victim branch at `target`.
    #[must_use]
    pub fn new(target: VirtAddr) -> Self {
        BranchPoisoner { target, prime: None }
    }

    /// The poisoned address.
    #[must_use]
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    /// Steers the next prediction of the victim's branch to `direction` by
    /// saturating the colliding PHT entry (and evicting the victim's BTB
    /// entry so the simply-indexed 1-level predictor is in charge, exactly
    /// as in the read attack's stage 1).
    pub fn steer(&mut self, cpu: &mut CpuView<'_>, direction: Outcome) {
        let state = match direction {
            Outcome::Taken => PhtState::StronglyTaken,
            Outcome::NotTaken => PhtState::StronglyNotTaken,
        };
        let needs_new = !matches!(&self.prime, Some(p) if p.state() == state);
        if needs_new {
            self.prime = Some(TargetedPrime::new(self.target, state));
        }
        self.prime.as_mut().expect("just set").prime(cpu);
    }

    /// Forces the victim's next execution of the branch to *mispredict*,
    /// given the direction it will actually resolve to (the Spectre-v1
    /// setup: the attacker knows the in-bounds branch will be taken and
    /// trains it not-taken, or vice versa).
    pub fn force_misprediction(&mut self, cpu: &mut CpuView<'_>, victim_resolves: Outcome) {
        self.steer(cpu, victim_resolves.flipped());
    }

    /// Measures the victim misprediction rate the poisoner achieves over
    /// `rounds` rounds of steer → victim-execute, where the victim's branch
    /// always resolves to `victim_direction` (benchmark helper).
    pub fn misprediction_rate(
        &mut self,
        sys: &mut System,
        spy: Pid,
        victim: Pid,
        victim_offset: u64,
        victim_direction: Outcome,
        rounds: usize,
    ) -> f64 {
        let mut missed = 0usize;
        for _ in 0..rounds {
            self.force_misprediction(&mut sys.cpu(spy), victim_direction);
            if sys.cpu(victim).branch_at(victim_offset, victim_direction).mispredicted {
                missed += 1;
            }
        }
        missed as f64 / rounds.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;

    fn setup() -> (System, Pid, Pid, VirtAddr) {
        let mut sys = System::new(MicroarchProfile::skylake(), 0xB01);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        (sys, victim, spy, target)
    }

    #[test]
    fn steering_controls_the_victims_prediction() {
        let (mut sys, victim, spy, target) = setup();
        let mut poisoner = BranchPoisoner::new(target);
        for direction in [Outcome::Taken, Outcome::NotTaken, Outcome::Taken] {
            poisoner.steer(&mut sys.cpu(spy), direction);
            let ev = sys.cpu(victim).branch_at(0x6d, direction);
            assert!(!ev.mispredicted, "steered prediction must match when victim agrees");
        }
    }

    #[test]
    fn poisoning_forces_persistent_mispredictions() {
        // Without poisoning, an always-taken victim branch converges to
        // ~zero mispredictions; a poisoner pins it near 100%.
        let (mut sys, victim, spy, target) = setup();

        // Baseline: train then count.
        for _ in 0..4 {
            sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
        }
        let baseline: usize = (0..50)
            .filter(|_| sys.cpu(victim).branch_at(0x6d, Outcome::Taken).mispredicted)
            .count();
        assert_eq!(baseline, 0, "a biased branch is perfectly predicted unpoisoned");

        let mut poisoner = BranchPoisoner::new(target);
        let rate =
            poisoner.misprediction_rate(&mut sys, spy, victim, 0x6d, Outcome::Taken, 50);
        assert!(rate > 0.95, "poisoned misprediction rate {rate}");
    }

    #[test]
    fn poisoning_survives_victim_training_between_rounds() {
        // Even if the victim executes its branch several times between
        // poisoning rounds (partially retraining the entry), one steer
        // re-saturates it.
        let (mut sys, victim, spy, target) = setup();
        let mut poisoner = BranchPoisoner::new(target);
        let mut missed = 0;
        for _ in 0..20 {
            for _ in 0..3 {
                sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
            }
            poisoner.force_misprediction(&mut sys.cpu(spy), Outcome::Taken);
            if sys.cpu(victim).branch_at(0x6d, Outcome::Taken).mispredicted {
                missed += 1;
            }
        }
        assert_eq!(missed, 20, "every poisoned execution mispredicts");
    }
}
