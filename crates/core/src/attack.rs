//! Three-stage attack orchestration.

use crate::decode::DirectionDict;
use crate::error::AttackError;
use crate::prime::{SearchedPrime, TargetedPrime};
use crate::probe::{probe_once, probe_with_counters, ProbeKind, ProbePattern};
use bscope_bpu::{BackendKind, CounterKind, MicroarchProfile, Outcome, PhtState, VirtAddr};
use bscope_os::{Pid, System};
use bscope_uarch::Span;

/// Configuration of a BranchScope instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackConfig {
    /// Strong state the target entry is primed into before each victim
    /// execution. Default: strongly not-taken.
    pub primed: PhtState,
    /// Probe direction pair. Must oppose the primed state; default:
    /// taken-taken. (This SN + TT default works on all three paper
    /// machines, including Skylake with its ST/WT ambiguity.)
    pub probe: ProbeKind,
    /// Counter flavour of the attacked machine (fixes the decode
    /// dictionary).
    pub counter_kind: CounterKind,
    /// Cycles the spy waits around the victim trigger (the `usleep` of
    /// Listing 3 that lets the slowed-down victim execute its branch).
    /// This is the window in which the primed PHT entry is exposed to
    /// background noise; Table 2's error rates scale with it.
    pub victim_wait_cycles: u64,
}

impl AttackConfig {
    /// The canonical configuration for a machine profile: prime SN, probe
    /// TT, dictionary for the profile's counter flavour.
    #[must_use]
    pub fn for_profile(profile: &MicroarchProfile) -> Self {
        AttackConfig {
            primed: PhtState::StronglyNotTaken,
            probe: ProbeKind::TakenTaken,
            counter_kind: profile.counter_kind,
            victim_wait_cycles: 40_000,
        }
    }

    /// The canonical configuration for a machine profile running on an
    /// explicit predictor backend.
    ///
    /// The hybrid attacks the profile's native counter flavour; TAGE and
    /// perceptron backends normalise their effective counter kind to
    /// [`CounterKind::TwoBit`] (see [`BackendKind::build`]), so the decode
    /// dictionary must be built for that flavour regardless of the machine.
    #[must_use]
    pub fn for_backend(profile: &MicroarchProfile, backend: BackendKind) -> Self {
        let counter_kind = match backend {
            BackendKind::Hybrid => profile.counter_kind,
            BackendKind::Tage | BackendKind::Perceptron => CounterKind::TwoBit,
        };
        AttackConfig { counter_kind, ..AttackConfig::for_profile(profile) }
    }
}

/// A configured BranchScope attack: primes, triggers the victim, probes and
/// decodes (paper §4, §7).
///
/// The attack object is stateful only in that each round derives fresh
/// GHR-scramble randomness; the decode dictionary is fixed at construction.
#[derive(Debug)]
pub struct BranchScope {
    config: AttackConfig,
    dict: DirectionDict,
    searched: Option<SearchedPrime>,
    targeted: Option<TargetedPrime>,
    /// Round counter feeding the pre-probe history scramble on
    /// history-indexed backends (see [`BranchScope::scramble_probe_history`]).
    scramble_round: u64,
}

impl BranchScope {
    /// Builds the attack for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::AmbiguousConfiguration`] if the prime/probe
    /// combination cannot distinguish victim directions on this counter
    /// (see [`DirectionDict::build`]).
    pub fn new(config: AttackConfig) -> Result<Self, AttackError> {
        let dict = DirectionDict::build(config.counter_kind, config.primed, config.probe)?;
        Ok(BranchScope { config, dict, searched: None, targeted: None, scramble_round: 0 })
    }

    /// Uses a pre-searched randomization block (the paper's full §6.2
    /// prime) instead of the fast targeted prime.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] if the block's desired
    /// state differs from the configured prime state.
    pub fn with_searched_prime(mut self, prime: SearchedPrime) -> Result<Self, AttackError> {
        if prime.desired() != self.config.primed {
            return Err(AttackError::InvalidParameter(format!(
                "searched prime leaves {} but the attack expects {}",
                prime.desired(),
                self.config.primed
            )));
        }
        self.searched = Some(prime);
        Ok(self)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> AttackConfig {
        self.config
    }

    /// The decode dictionary in use.
    #[must_use]
    pub fn dict(&self) -> &DirectionDict {
        &self.dict
    }

    /// Stage 1 for `target`. The targeted prime is cached across rounds so
    /// its per-round GHR scramble actually varies — replaying an identical
    /// scramble would hand the 2-level predictor a learnable context, which
    /// is precisely what stage 1 must prevent.
    fn run_prime(&mut self, sys: &mut System, spy: Pid, target: VirtAddr) {
        if let Some(s) = &self.searched {
            if s.target() == target {
                s.prime(&mut sys.cpu(spy));
                return;
            }
        }
        let needs_new = !matches!(&self.targeted, Some(t) if t.target() == target);
        if needs_new {
            self.targeted = Some(TargetedPrime::new(target, self.config.primed));
        }
        let prime = self.targeted.as_mut().expect("just ensured");
        prime.prime(&mut sys.cpu(spy));
    }

    /// Runs stage 1 (prime) only. Useful when composing a custom stage-3
    /// observation, e.g. probing through the §8 timing channel instead of
    /// the performance counters.
    pub fn prime(&mut self, sys: &mut System, spy: Pid, target: VirtAddr) {
        sys.core_mut().trace_span_begin(Span::Prime);
        self.run_prime(sys, spy, target);
        sys.core_mut().trace_span_end(Span::Prime);
    }

    /// Runs one full prime → victim → probe round and returns the raw
    /// observed pattern (stage 3 observation, before decoding).
    ///
    /// `trigger` is the stage-2 action: it must cause the victim to execute
    /// the monitored branch exactly once (slowed-down scheduling or SGX
    /// single-stepping provide this; see `bscope-os`).
    pub fn observe_bit(
        &mut self,
        sys: &mut System,
        spy: Pid,
        target: VirtAddr,
        trigger: impl FnOnce(&mut System),
    ) -> ProbePattern {
        sys.core_mut().trace_span_begin(Span::Prime);
        self.run_prime(sys, spy, target); // stage 1
        let history_indexed = sys.core().bpu().kind() != BackendKind::Hybrid;
        if history_indexed {
            // Reinforce the prime under fresh history contexts: on a
            // tagged/history-indexed substrate, individual saturation steps
            // can be absorbed by stale tagged entries, so the spy repeats
            // the saturating execution with a re-scramble before each step
            // (harmlessly redundant when the base entry is already
            // saturated). The final scramble leaves the *victim's* upcoming
            // execution in a fresh context too.
            let direction = self.config.primed.predicted();
            for _ in 0..4 {
                self.scramble_history(sys, spy, target);
                sys.cpu(spy).branch_at_abs(target, direction);
            }
            self.scramble_history(sys, spy, target);
        }
        sys.core_mut().trace_span_end(Span::Prime);
        // Stage 2: wait for the slowed-down victim to reach and execute the
        // monitored branch (Listing 3's usleep). Background noise keeps
        // running on the shared BPU throughout.
        sys.core_mut().trace_span_begin(Span::VictimWindow);
        sys.cpu(spy).work(self.config.victim_wait_cycles / 2);
        trigger(sys);
        sys.cpu(spy).work(self.config.victim_wait_cycles / 2);
        sys.core_mut().trace_span_end(Span::VictimWindow);
        sys.core_mut().trace_span_begin(Span::Probe);
        let pattern = if history_indexed {
            // Stage 3 on a history-indexed backend: each probe observation
            // gets its own fresh history context (see `scramble_history`).
            self.scramble_history(sys, spy, target);
            let first = probe_once(&mut sys.cpu(spy), target, self.config.probe);
            self.scramble_history(sys, spy, target);
            let second = probe_once(&mut sys.cpu(spy), target, self.config.probe);
            ProbePattern::from_hits(first, second)
        } else {
            // stage 3, the paper's back-to-back probe pair
            probe_with_counters(&mut sys.cpu(spy), target, self.config.probe)
        };
        sys.core_mut().trace_span_end(Span::Probe);
        pattern
    }

    /// Spy-side history re-randomization, used around every
    /// prime/victim/probe step on history-indexed predictor backends only
    /// (the caller gates on the backend kind, keeping the canonical hybrid
    /// round byte-for-byte identical — there, stage 1's BTB eviction
    /// already forces the probes into address-indexed prediction).
    ///
    /// On TAGE, the attack round is a near-fixed branch-outcome sequence,
    /// so without this the short-history tagged contexts recur across
    /// rounds and stale tagged entries — allocated whenever the target
    /// mispredicted, which the attack provokes constantly — train to
    /// confidence and shadow the base table. The spy defeats that the same
    /// way Listing 1's randomization block defeats the 2-level predictor:
    /// it executes a burst of junk branches with round-varying addresses
    /// and outcomes before each step that touches the target, leaving the
    /// global history in a context whose tagged entries (if any) have never
    /// seen a consistent outcome stream, so they stay weak and prediction
    /// falls back to the address-indexed base table (see `bscope_bpu::tage`
    /// on the weak-entry/alternate-prediction policy this leans on).
    /// Beyond scrambling, the burst's branches are not arbitrary: they are
    /// drawn from the target's *tagged-set alias family*. The tagged tables
    /// index with `pc ^ (pc >> 7) ^ folded_history`, which is XOR-linear in
    /// `pc`, so any displacement `d = p | p << 7 | p << 14` (7-bit `p`)
    /// yields an address `target ^ d` that lands in the **same tagged slot
    /// as the target in every component at every history** while carrying a
    /// different tag and a different base-table index. Every time one of
    /// these aliases mispredicts, its allocation claims exactly a slot a
    /// stale target entry could be squatting in, evicting it — at a far
    /// higher rate than the target's own mispredictions re-allocate. This
    /// is the §6.2 "one-time effort" search extended to the tagged tables:
    /// the attacker characterises the index function offline, then replays
    /// colliding junk branches forever after.
    fn scramble_history(&mut self, sys: &mut System, spy: Pid, target: VirtAddr) {
        let pht_mask = (sys.core().profile().pht_size - 1) as u64;
        self.scramble_round = self.scramble_round.wrapping_add(1);
        // SplitMix64 stream over the round counter: deterministic, but
        // different in every round.
        let mut x = self.scramble_round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut cpu = sys.cpu(spy);
        for _ in 0..64 {
            x ^= x >> 27;
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            x ^= x >> 31;
            // p ranges over 1..=126: zero would alias the base slot, and
            // the all-ones pattern has a zero *tag* displacement (it would
            // impersonate the target rather than evict it).
            let p = ((x >> 8) % 126) + 1;
            let d = p | p << 7 | p << 14;
            let addr = target ^ d;
            debug_assert_ne!(addr & pht_mask, target & pht_mask, "alias must miss the base slot");
            cpu.branch_at_abs(addr, Outcome::from_bool(x & 1 == 1));
        }
    }

    /// Reads the direction of one victim branch execution.
    pub fn read_bit(
        &mut self,
        sys: &mut System,
        spy: Pid,
        target: VirtAddr,
        trigger: impl FnOnce(&mut System),
    ) -> Outcome {
        let pattern = self.observe_bit(sys, spy, target, trigger);
        self.dict.decode(pattern)
    }

    /// Reads `n` consecutive victim branch directions; `trigger` is called
    /// once per bit with the bit index.
    pub fn read_bits(
        &mut self,
        sys: &mut System,
        spy: Pid,
        target: VirtAddr,
        n: usize,
        mut trigger: impl FnMut(&mut System, usize),
    ) -> Vec<Outcome> {
        (0..n).map(|i| self.read_bit(sys, spy, target, |sys| trigger(sys, i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_os::AslrPolicy;
    use bscope_uarch::NoiseConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(profile: MicroarchProfile, seed: u64) -> (System, Pid, Pid, VirtAddr) {
        let mut sys = System::new(profile, seed);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        (sys, victim, spy, target)
    }

    #[test]
    fn reads_single_bits_on_all_three_machines() {
        for profile in MicroarchProfile::paper_machines() {
            let (mut sys, victim, spy, target) = setup(profile.clone(), 42);
            let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
            for &secret in &[Outcome::Taken, Outcome::NotTaken, Outcome::Taken] {
                let read = attack.read_bit(&mut sys, spy, target, |sys| {
                    sys.cpu(victim).branch_at(0x6d, secret);
                });
                assert_eq!(read, secret, "{}", profile.arch);
            }
        }
    }

    #[test]
    fn observed_patterns_match_the_dictionary() {
        let profile = MicroarchProfile::haswell();
        let (mut sys, victim, spy, target) = setup(profile.clone(), 7);
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        let pattern = attack.observe_bit(&mut sys, spy, target, |sys| {
            sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
        });
        assert_eq!(pattern, attack.dict().expected(Outcome::Taken));
    }

    #[test]
    fn recovers_a_random_bitstream_noiselessly() {
        let profile = MicroarchProfile::skylake();
        let (mut sys, victim, spy, target) = setup(profile.clone(), 13);
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let secret: Vec<Outcome> = (0..200).map(|_| Outcome::from_bool(rng.gen())).collect();
        let read = attack.read_bits(&mut sys, spy, target, secret.len(), |sys, i| {
            sys.cpu(victim).branch_at(0x6d, secret[i]);
        });
        assert_eq!(read, secret, "noiseless recovery must be exact");
    }

    #[test]
    fn tolerates_system_noise_with_low_error() {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 31).with_noise(NoiseConfig::system_activity()).unwrap();
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let target = sys.process(victim).vaddr_of(0x6d);
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let secret: Vec<Outcome> = (0..2_000).map(|_| Outcome::from_bool(rng.gen())).collect();
        let read = attack.read_bits(&mut sys, spy, target, secret.len(), |sys, i| {
            sys.cpu(victim).branch_at(0x6d, secret[i]);
        });
        let errors = read.iter().zip(&secret).filter(|(a, b)| a != b).count();
        let rate = errors as f64 / secret.len() as f64;
        assert!(rate < 0.05, "error rate {rate:.4} too high under system noise");
    }

    #[test]
    fn works_with_searched_prime() {
        let profile = MicroarchProfile::skylake();
        let (mut sys, victim, spy, target) = setup(profile.clone(), 23);
        let searched = SearchedPrime::search(
            &mut sys,
            spy,
            target,
            PhtState::StronglyNotTaken,
            3,
            64,
            500,
        )
        .unwrap();
        let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))
            .unwrap()
            .with_searched_prime(searched)
            .unwrap();
        for &secret in &[Outcome::NotTaken, Outcome::Taken] {
            let read = attack.read_bit(&mut sys, spy, target, |sys| {
                sys.cpu(victim).branch_at(0x6d, secret);
            });
            assert_eq!(read, secret);
        }
    }

    #[test]
    fn mismatched_searched_prime_rejected() {
        let profile = MicroarchProfile::haswell();
        let (mut sys, _victim, spy, target) = setup(profile.clone(), 3);
        let searched =
            SearchedPrime::search(&mut sys, spy, target, PhtState::StronglyTaken, 3, 64, 800)
                .unwrap();
        let res = BranchScope::new(AttackConfig::for_profile(&profile))
            .unwrap()
            .with_searched_prime(searched);
        assert!(matches!(res, Err(AttackError::InvalidParameter(_))));
    }

    #[test]
    fn ambiguous_config_rejected_at_construction() {
        let res = BranchScope::new(AttackConfig {
            primed: PhtState::StronglyTaken,
            probe: ProbeKind::TakenTaken,
            counter_kind: CounterKind::TwoBit,
            victim_wait_cycles: 0,
        });
        assert!(matches!(res, Err(AttackError::AmbiguousConfiguration { .. })));
    }
}
