//! Stage-1 PHT randomization code (the paper's Listing 1).

use bscope_bpu::{Counter, CounterKind, MicroarchProfile, Outcome, PhtState, VirtAddr};
use bscope_os::CpuView;
use bscope_uarch::Span;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated block of branch instructions that randomizes the PHT and
/// disables 2-level prediction for the victim's next branch (paper §5.2).
///
/// The block mirrors Listing 1: a long run of conditional branches whose
/// directions are "randomly picked with no inter-branch dependencies"
/// (unlearnable by the 2-level predictor) and whose addresses are
/// randomized "by either placing or not placing a NOP instruction between
/// them" (each `je`/`jne` is two bytes, an optional `nop` adds one), so a
/// large number of PHT entries is touched. The outcome pattern "is
/// randomized only once (when the block is generated) and \[is\] not
/// re-randomized during execution": executing the same block twice replays
/// the identical branch sequence.
///
/// ```
/// use bscope_core::RandomizationBlock;
///
/// let block = RandomizationBlock::generate(7, 1_000, 0x70_0000);
/// assert_eq!(block.len(), 1_000);
/// assert!(block.span_bytes() >= 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct RandomizationBlock {
    region_base: VirtAddr,
    branches: Vec<(u32, Outcome)>,
    seed: u64,
}

/// Default code region the spy maps its randomization block at — far from
/// typical victim code so the *block body* addresses do not accidentally
/// share BTB tags with the victim (entry collisions via PHT folding are the
/// point, and happen regardless).
pub const DEFAULT_BLOCK_REGION: VirtAddr = 0x70_0000;

impl RandomizationBlock {
    /// Generates a block of `len` branches at `region_base`, deterministic
    /// in `seed`. Regenerating with the same seed yields the same block —
    /// the property the paper's pre-attack block search relies on.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn generate(seed: u64, len: usize, region_base: VirtAddr) -> Self {
        assert!(len > 0, "a randomization block needs at least one branch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut branches = Vec::with_capacity(len);
        let mut offset: u32 = 0;
        for _ in 0..len {
            let outcome = Outcome::from_bool(rng.gen_bool(0.5));
            branches.push((offset, outcome));
            // je/jne is two bytes; with probability ½ a one-byte nop follows.
            offset += 2 + u32::from(rng.gen_bool(0.5));
        }
        RandomizationBlock { region_base, branches, seed }
    }

    /// A block sized for a specific machine: six branches per PHT entry on
    /// average, matching the paper's empirically-sufficient 100 000
    /// branches for the 2^14-entry Skylake PHT. Fewer than ~3 updates per
    /// entry would leave entries whose final state still depends on their
    /// prior state, defeating the pre-attack block search.
    #[must_use]
    pub fn for_profile(profile: &MicroarchProfile, seed: u64) -> Self {
        RandomizationBlock::generate(seed, profile.pht_size * 6, DEFAULT_BLOCK_REGION)
    }

    /// Number of branches in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether the block is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Seed the block was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Base virtual address of the block's code.
    #[must_use]
    pub fn region_base(&self) -> VirtAddr {
        self.region_base
    }

    /// Code bytes spanned by the block.
    #[must_use]
    pub fn span_bytes(&self) -> u64 {
        self.branches.last().map_or(0, |&(off, _)| u64::from(off) + 2)
    }

    /// Executes the whole block on the spy's CPU view (stage 1).
    pub fn execute(&self, cpu: &mut CpuView<'_>) {
        cpu.core_mut().trace_span_begin(Span::Randomize);
        for &(off, outcome) in &self.branches {
            cpu.branch_at_abs(self.region_base + u64::from(off), outcome);
        }
        cpu.core_mut().trace_span_end(Span::Randomize);
    }

    /// How many of the block's branches collide with `addr` in a bimodal
    /// PHT of `pht_size` entries (analysis helper; the attacker's offline
    /// "which block touches my target entry how" question).
    #[must_use]
    pub fn collisions_with(&self, pht_size: usize, addr: VirtAddr) -> usize {
        let mask = (pht_size - 1) as u64;
        let want = addr & mask;
        self.branches
            .iter()
            .filter(|&&(off, _)| (self.region_base + u64::from(off)) & mask == want)
            .count()
    }

    /// Offline convergence analysis of one PHT entry under this block: the
    /// state the entry ends in after one block execution, *if* that state
    /// is independent of the entry's prior contents.
    ///
    /// Replays the entry's update subsequence from every possible counter
    /// level; returns the common final state when all trajectories
    /// coalesce, `None` otherwise. A `None` entry is useless for priming —
    /// its post-block state leaks its pre-block state — and corresponds to
    /// the unstable blocks the paper's Fig. 4 experiment filters out. The
    /// attacker can run this analysis entirely offline (it only needs the
    /// block and the FSM model), which is what makes the paper's one-time
    /// pre-attack block search cheap.
    #[must_use]
    pub fn converged_state(
        &self,
        pht_size: usize,
        kind: CounterKind,
        addr: VirtAddr,
    ) -> Option<PhtState> {
        let mask = (pht_size - 1) as u64;
        let want = addr & mask;
        let max = Counter::new(kind).max_level();
        let mut levels: Vec<Counter> = (0..=max)
            .map(|_| Counter::new(kind))
            .collect();
        for (i, c) in levels.iter_mut().enumerate() {
            // Set raw level i by stepping from the bottom.
            c.set_state(PhtState::StronglyNotTaken);
            for _ in 0..i {
                c.update(Outcome::Taken);
            }
        }
        for &(off, outcome) in &self.branches {
            if (self.region_base + u64::from(off)) & mask == want {
                for c in &mut levels {
                    c.update(outcome);
                }
            }
        }
        let first = levels[0].state();
        levels.iter().all(|c| c.state() == first).then_some(first)
    }

    /// Fraction of the PHT's entries touched by at least one block branch.
    #[must_use]
    pub fn pht_coverage(&self, pht_size: usize) -> f64 {
        let mask = (pht_size - 1) as u64;
        let mut touched = vec![false; pht_size];
        for &(off, _) in &self.branches {
            touched[((self.region_base + u64::from(off)) & mask) as usize] = true;
        }
        touched.iter().filter(|&&t| t).count() as f64 / pht_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::PhtState;
    use bscope_os::{AslrPolicy, System};

    #[test]
    fn generation_is_deterministic() {
        let a = RandomizationBlock::generate(3, 500, 0x70_0000);
        let b = RandomizationBlock::generate(3, 500, 0x70_0000);
        assert_eq!(a.branches, b.branches);
        let c = RandomizationBlock::generate(4, 500, 0x70_0000);
        assert_ne!(a.branches, c.branches);
    }

    #[test]
    fn offsets_advance_by_two_or_three() {
        let block = RandomizationBlock::generate(9, 2_000, 0);
        for pair in block.branches.windows(2) {
            let step = pair[1].0 - pair[0].0;
            assert!(step == 2 || step == 3, "step {step}");
        }
    }

    #[test]
    fn outcomes_are_roughly_balanced() {
        let block = RandomizationBlock::generate(1, 10_000, 0);
        let taken = block.branches.iter().filter(|(_, o)| o.is_taken()).count();
        assert!((4_500..=5_500).contains(&taken), "taken {taken}");
    }

    #[test]
    fn profile_sized_block_covers_most_of_the_pht() {
        // §5.2: the block must "affect a large number of entries inside the
        // PHT".
        let profile = bscope_bpu::MicroarchProfile::skylake();
        let block = RandomizationBlock::for_profile(&profile, 11);
        let coverage = block.pht_coverage(profile.pht_size);
        assert!(coverage > 0.85, "coverage {coverage:.3}");
    }

    #[test]
    fn execution_scrambles_pht_and_evicts_btb() {
        let mut sys = System::new(bscope_bpu::MicroarchProfile::skylake(), 5);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);

        // Victim trains its branch strongly taken; it lands in the BTB.
        let victim_addr = sys.process(victim).vaddr_of(0x6d);
        for _ in 0..3 {
            sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
        }
        assert!(sys.core().bpu().btb().contains(victim_addr));
        assert_eq!(sys.core().bpu().pht_state(victim_addr), PhtState::StronglyTaken);

        let block =
            RandomizationBlock::for_profile(&bscope_bpu::MicroarchProfile::skylake(), 17);
        block.execute(&mut sys.cpu(spy));

        // The victim's BTB entry must be gone (1-level fallback restored)…
        assert!(
            !sys.core().bpu().btb().contains(victim_addr),
            "randomization block must evict the victim's BTB entry"
        );
        // …and the block must have rewritten the victim's PHT entry
        // (it collides with several block branches).
        let pht = sys.core().profile().pht_size;
        assert!(block.collisions_with(pht, victim_addr) > 0);
    }

    #[test]
    fn replaying_a_block_reconverges_the_target_entry() {
        // Because the block's outcomes are fixed at generation time, the
        // final state of any entry it touches ≥3 times is independent of
        // the entry's prior state — the property that makes the paper's
        // pre-attack block search meaningful.
        let profile = bscope_bpu::MicroarchProfile::skylake();
        let probe_addr = 0x30_0000u64;
        // Pick (offline, as the attacker would) a block whose update
        // sequence provably coalesces for this entry.
        let (block, expected) = (0u64..200)
            .find_map(|seed| {
                let b = RandomizationBlock::for_profile(&profile, 23 + seed);
                b.converged_state(profile.pht_size, profile.counter_kind, probe_addr)
                    .map(|s| (b, s))
            })
            .expect("a converging block exists among 200 seeds");
        let mut states = Vec::new();
        let mut sys = System::new(profile, 6);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        for round in 0..3u64 {
            // Perturb the entry differently each round…
            let st = if round % 2 == 0 { PhtState::StronglyTaken } else { PhtState::StronglyNotTaken };
            sys.core_mut().bpu_mut().set_pht_state(probe_addr, st);
            block.execute(&mut sys.cpu(spy));
            states.push(sys.core().bpu().pht_state(probe_addr));
        }
        assert!(states.iter().all(|&s| s == expected), "states {states:?} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_block_rejected() {
        let _ = RandomizationBlock::generate(0, 0, 0);
    }
}
