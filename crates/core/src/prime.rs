//! Stage-1 priming strategies.

use crate::decode::{decode_state, DecodedState};
use crate::error::AttackError;
use crate::probe::{probe_with_counters, ProbeKind};
use crate::randomize::RandomizationBlock;
use bscope_bpu::{Outcome, PhtState, VirtAddr};
use bscope_os::{CpuView, Pid, System};

/// How the spy primes the victim-colliding PHT entry before stage 2.
#[derive(Debug, Clone)]
pub enum PrimeStrategy {
    /// The fast targeted prime (see [`TargetedPrime`]).
    Targeted(TargetedPrime),
    /// The paper's full randomization-block prime (see [`SearchedPrime`]).
    Searched(SearchedPrime),
}

impl PrimeStrategy {
    /// Executes the prime on the spy's CPU view.
    pub fn prime(&mut self, cpu: &mut CpuView<'_>) {
        match self {
            PrimeStrategy::Targeted(t) => t.prime(cpu),
            PrimeStrategy::Searched(s) => s.prime(cpu),
        }
    }

    /// The state the target entry is left in.
    #[must_use]
    pub fn primed_state(&self) -> PhtState {
        match self {
            PrimeStrategy::Targeted(t) => t.state(),
            PrimeStrategy::Searched(s) => s.desired(),
        }
    }
}

/// The short, surgical prime the paper sketches as future work: "if we
/// focus only on evicting a particular branch, we may be able to come up
/// with a shorter sequence of branches" (§5.2).
///
/// Per attack round it:
///
/// 1. **evicts the victim's BTB entry** by executing a taken branch that
///    aliases the victim's BTB set (address + BTB size), forcing the
///    victim's next execution back into 1-level mode, and — because that
///    alias also shares the victim's *selector* entry — repeatedly trains
///    the selector back toward the bimodal side;
/// 2. **scrambles the GHR** with a burst of unrelated random branches so
///    the 2-level predictor sees fresh, useless context;
/// 3. **primes the target PHT entry** by executing the colliding spy
///    branch three times in the desired strong direction (Table 1's
///    prime stage).
///
/// It is 3–4 orders of magnitude cheaper than replaying a full
/// randomization block, which is what makes million-bit covert-channel
/// benchmarks practical; the full-fidelity block prime remains available
/// as [`SearchedPrime`].
#[derive(Debug, Clone)]
pub struct TargetedPrime {
    target: VirtAddr,
    state: PhtState,
    pollution: usize,
    lcg: u64,
}

impl TargetedPrime {
    /// Region the GHR-scramble branches execute in.
    const SCRAMBLE_REGION: VirtAddr = 0x7a_0000;

    /// Targeted prime leaving the entry colliding with `target` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is a weak state: a single victim execution must
    /// start from a *strong* state for the Table 1 decoding to work.
    #[must_use]
    pub fn new(target: VirtAddr, state: PhtState) -> Self {
        assert!(state.is_strong(), "prime state must be strong (ST or SN), got {state}");
        TargetedPrime { target, state, pollution: 256, lcg: target ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Target address whose PHT entry is primed.
    #[must_use]
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    /// State the entry is left in.
    #[must_use]
    pub fn state(&self) -> PhtState {
        self.state
    }

    /// Number of pattern-free pollution branches per prime (default 256).
    ///
    /// These branches keep the 2-level predictor inaccurate (paper §5.2,
    /// goal 2): without them gshare eventually memorises the attack's own
    /// recurring history contexts, the selector migrates the probe branch
    /// to the 2-level side and the probe observations stop reflecting the
    /// primed PHT entry. Lowering this trades prime cost against decode
    /// reliability.
    pub fn set_pollution(&mut self, n: usize) {
        self.pollution = n;
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64 step: cheap deterministic per-round variation.
        self.lcg = self.lcg.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.lcg;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Runs the prime on the spy's view.
    pub fn prime(&mut self, cpu: &mut CpuView<'_>) {
        // This runs once per transmitted bit; copy out the three scalars
        // needed rather than cloning the whole profile.
        let (btb_size, pht_size, counter_kind) = {
            let profile = cpu.profile();
            (profile.btb_size, profile.pht_size, profile.counter_kind)
        };
        let btb_alias = self.target + btb_size as u64;

        // 1. Scramble the global history and pollute the 2-level predictor
        //    with pattern-free branches at varying addresses (avoiding the
        //    target's own PHT entry). This is the scaled-down core of the
        //    paper's Listing 1: random directions with no inter-branch
        //    dependencies, unpredictable for gshare.
        let pht_mask = (pht_size - 1) as u64;
        for _ in 0..self.pollution {
            let r = self.next_rand();
            let mut addr = Self::SCRAMBLE_REGION + (r & 0xffff);
            if addr & pht_mask == self.target & pht_mask {
                addr += 1;
            }
            let outcome = Outcome::from_bool(r >> 63 == 1);
            cpu.branch_at_abs(addr, outcome);
        }

        // 2. Evict the victim's BTB entry and scrub the shared selector
        //    entry back toward the bimodal side: the alias branch is
        //    perfectly bimodal-predictable (always taken) but — with the
        //    2-level tables just polluted — unpredictable for gshare, so
        //    every execution pulls the selector toward the 1-level side.
        for _ in 0..4 {
            cpu.branch_at_abs(btb_alias, Outcome::Taken);
        }

        // 3. Drive the target entry into the strong prime state. The
        //    textbook counter saturates from any state in three updates;
        //    Skylake's deeper taken side needs one more (its max level).
        let direction = self.state.predicted();
        let saturation_steps = bscope_bpu::Counter::new(counter_kind).max_level();
        for _ in 0..saturation_steps {
            cpu.branch_at_abs(self.target, direction);
        }
    }
}

/// The paper's §6.2 prime: a pre-attack search finds a randomization block
/// that both randomizes the PHT / disables 2-level prediction *and* leaves
/// the target entry in the attacker's desired state, verified statistically
/// through the probe channel ("Finding the appropriate randomization code
/// is a one-time effort by the attacker").
#[derive(Debug, Clone)]
pub struct SearchedPrime {
    block: RandomizationBlock,
    desired: PhtState,
    target: VirtAddr,
}

impl SearchedPrime {
    /// Searches candidate blocks (seeds `seed`, `seed+1`, …) until one
    /// reliably leaves the entry colliding with `target` in `desired`
    /// state, using only attacker-visible observations (probe patterns and
    /// the state dictionary of §6.2).
    ///
    /// `trials` prime-and-probe repetitions are run per candidate and per
    /// probing variant; a candidate is accepted when every trial decodes to
    /// the desired state (the paper's ≥85 % dominance criterion, tightened
    /// to "all" for the small trial counts used here).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::PrimeSearchExhausted`] when `max_attempts`
    /// candidates all fail, and [`AttackError::InvalidParameter`] for a
    /// zero `trials`/`max_attempts`.
    pub fn search(
        sys: &mut System,
        spy: Pid,
        target: VirtAddr,
        desired: PhtState,
        trials: usize,
        max_attempts: usize,
        seed: u64,
    ) -> Result<Self, AttackError> {
        if trials == 0 || max_attempts == 0 {
            return Err(AttackError::InvalidParameter(
                "trials and max_attempts must be positive".to_owned(),
            ));
        }
        let profile = sys.core().profile().clone();
        for attempt in 0..max_attempts {
            let block = RandomizationBlock::for_profile(&profile, seed.wrapping_add(attempt as u64));
            if Self::candidate_accepted(sys, spy, target, desired, trials, &block, &profile) {
                return Ok(SearchedPrime { block, desired, target });
            }
        }
        Err(AttackError::PrimeSearchExhausted { desired, attempts: max_attempts })
    }

    fn candidate_accepted(
        sys: &mut System,
        spy: Pid,
        target: VirtAddr,
        desired: PhtState,
        trials: usize,
        block: &RandomizationBlock,
        profile: &bscope_bpu::MicroarchProfile,
    ) -> bool {
        // Offline pre-filter (the attacker's one-time analysis): the block
        // must drive the target entry to the desired state regardless of
        // its prior contents.
        if block.converged_state(profile.pht_size, profile.counter_kind, target)
            != Some(desired)
        {
            return false;
        }
        let mut dominants = [None; 2];
        for (slot, kind) in
            dominants.iter_mut().zip([ProbeKind::TakenTaken, ProbeKind::NotTakenNotTaken])
        {
            let mut dominant = None;
            for _ in 0..trials {
                block.execute(&mut sys.cpu(spy));
                let pattern = probe_with_counters(&mut sys.cpu(spy), target, kind);
                match dominant {
                    None => dominant = Some(pattern),
                    Some(d) if d != pattern => return false, // unstable block
                    Some(_) => {}
                }
            }
            *slot = dominant;
        }
        let (Some(tt), Some(nn)) = (dominants[0], dominants[1]) else {
            return false; // unreachable: trials > 0 is validated by search()
        };
        decode_state(profile.counter_kind, tt, nn) == DecodedState::Known(desired)
    }

    /// The accepted randomization block.
    #[must_use]
    pub fn block(&self) -> &RandomizationBlock {
        &self.block
    }

    /// The state the block leaves the target entry in.
    #[must_use]
    pub fn desired(&self) -> PhtState {
        self.desired
    }

    /// The primed target address.
    #[must_use]
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    /// Stage 1: replay the block.
    pub fn prime(&self, cpu: &mut CpuView<'_>) {
        self.block.execute(cpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;

    fn setup() -> (System, Pid, Pid) {
        let mut sys = System::new(MicroarchProfile::skylake(), 21);
        let victim = sys.spawn("victim", AslrPolicy::Disabled);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        (sys, victim, spy)
    }

    #[test]
    fn targeted_prime_sets_state_and_evicts_btb() {
        let (mut sys, victim, spy) = setup();
        let target = sys.process(victim).vaddr_of(0x6d);

        // Victim has been running: entry strongly taken, BTB resident.
        for _ in 0..3 {
            sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
        }
        assert!(sys.core().bpu().btb().contains(target));

        let mut prime = TargetedPrime::new(target, PhtState::StronglyNotTaken);
        prime.prime(&mut sys.cpu(spy));

        assert_eq!(sys.core().bpu().pht_state(target), PhtState::StronglyNotTaken);
        assert!(!sys.core().bpu().btb().contains(target), "victim BTB entry evicted");
    }

    #[test]
    fn targeted_prime_scrambles_ghr() {
        let (mut sys, _victim, spy) = setup();
        let mut prime = TargetedPrime::new(0x40_006d, PhtState::StronglyNotTaken);
        prime.prime(&mut sys.cpu(spy));
        let h1 = sys.core().bpu().ghr().value();
        prime.prime(&mut sys.cpu(spy));
        let h2 = sys.core().bpu().ghr().value();
        assert_ne!(h1, h2, "per-round scramble must vary the history");
    }

    #[test]
    #[should_panic(expected = "strong")]
    fn weak_prime_state_rejected() {
        let _ = TargetedPrime::new(0x1000, PhtState::WeaklyTaken);
    }

    #[test]
    fn searched_prime_finds_a_block() {
        let (mut sys, victim, spy) = setup();
        let target = sys.process(victim).vaddr_of(0x6d);
        let prime =
            SearchedPrime::search(&mut sys, spy, target, PhtState::StronglyNotTaken, 3, 64, 1000)
                .expect("a suitable block exists within 64 candidates");
        // Replaying the found block must leave the entry in the desired
        // state even from adversarial starting conditions.
        sys.core_mut().bpu_mut().set_pht_state(target, PhtState::StronglyTaken);
        prime.prime(&mut sys.cpu(spy));
        assert_eq!(sys.core().bpu().pht_state(target), PhtState::StronglyNotTaken);
        assert_eq!(prime.desired(), PhtState::StronglyNotTaken);
        assert_eq!(prime.target(), target);
    }

    #[test]
    fn searched_prime_validates_parameters() {
        let (mut sys, _victim, spy) = setup();
        let err = SearchedPrime::search(&mut sys, spy, 0x1000, PhtState::StronglyNotTaken, 0, 4, 0);
        assert!(matches!(err, Err(AttackError::InvalidParameter(_))));
    }

    #[test]
    fn strategy_dispatches() {
        let (mut sys, victim, spy) = setup();
        let target = sys.process(victim).vaddr_of(0x6d);
        let mut strategy =
            PrimeStrategy::Targeted(TargetedPrime::new(target, PhtState::StronglyTaken));
        assert_eq!(strategy.primed_state(), PhtState::StronglyTaken);
        strategy.prime(&mut sys.cpu(spy));
        assert_eq!(sys.core().bpu().pht_state(target), PhtState::StronglyTaken);
    }
}
