//! The BranchScope attack (Evtyushkin et al., ASPLOS 2018).
//!
//! BranchScope infers the direction of a victim's conditional branch by
//! manipulating the *directional* component of the shared branch prediction
//! unit — the pattern history table (PHT) — rather than the branch target
//! buffer targeted by earlier work. The attack proceeds in three stages
//! (paper §4):
//!
//! 1. **Prime** — drive the PHT entry that collides with the victim's
//!    branch into a known strong state, while forcing both processes into
//!    the simply-indexed 1-level prediction mode
//!    ([`RandomizationBlock`], [`PrimeStrategy`]);
//! 2. **Victim execution** — let the slowed-down victim execute the target
//!    branch exactly once;
//! 3. **Probe** — execute two spy branches at the colliding address and
//!    observe their prediction outcomes ([`ProbePattern`]) through
//!    performance counters (§7) or `rdtscp` timing (§8,
//!    [`TimingDetector`]), then decode the victim's direction with the
//!    FSM dictionary ([`DirectionDict`], Table 1).
//!
//! On top of the single-bit primitive the crate builds the paper's covert
//! channel ([`covert`]), the PHT reverse-engineering tooling of §6.3
//! ([`reverse`]: state scans, Hamming-distance size discovery) and the
//! randomization-block stability analysis of Fig. 4 ([`stability`]).
//!
//! # Example: reading one victim branch
//!
//! ```
//! use bscope_bpu::{MicroarchProfile, Outcome};
//! use bscope_core::{AttackConfig, BranchScope};
//! use bscope_os::{AslrPolicy, System};
//!
//! let mut sys = System::new(MicroarchProfile::skylake(), 1);
//! let victim = sys.spawn("victim", AslrPolicy::Disabled);
//! let spy = sys.spawn("spy", AslrPolicy::Disabled);
//! let target = sys.process(victim).vaddr_of(0x6d);
//!
//! let mut attack = BranchScope::new(AttackConfig::for_profile(sys.core().profile())).unwrap();
//! let read = attack.read_bit(&mut sys, spy, target, |sys| {
//!     // Stage 2: the triggered victim executes its secret branch once.
//!     sys.cpu(victim).branch_at(0x6d, Outcome::Taken);
//! });
//! assert_eq!(read, Outcome::Taken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
pub mod covert;
mod decode;
mod error;
mod poison;
mod prime;
mod probe;
pub mod reverse;
pub mod stability;
pub mod timing_probe;

mod randomize;

pub use attack::{AttackConfig, BranchScope};
pub use decode::{decode_state, fsm_transition_row, table1, DecodedState, DirectionDict, Table1Row};
pub use error::{AttackError, BscopeError, ConfigError};
pub use poison::BranchPoisoner;
pub use prime::{PrimeStrategy, SearchedPrime, TargetedPrime};
pub use probe::{probe_once, probe_with_counters, ProbeKind, ProbePattern};
pub use randomize::RandomizationBlock;
pub use timing_probe::TimingDetector;
