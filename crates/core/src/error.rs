//! Typed errors for the attack stack.
//!
//! [`AttackError`] covers failures of the BranchScope primitive itself;
//! [`BscopeError`] is the workspace-wide hierarchy that experiment-level
//! code propagates, folding in the configuration errors of the simulated
//! substrate ([`ConfigError`] from `bscope-uarch`). Everything converts
//! upward with `?` via the `From` impls below.

use bscope_bpu::{Outcome, PhtState};
pub use bscope_uarch::ConfigError;
use std::error::Error;
use std::fmt;

/// Errors from configuring or running the BranchScope attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The chosen prime-state / probe-direction combination cannot
    /// distinguish a taken from a not-taken victim branch on this counter
    /// (e.g. priming ST and probing taken-taken always observes `HH`, and
    /// on Skylake priming ST and probing not-taken observes `MM` for both
    /// directions — the ST/WT ambiguity of Table 1, footnote 1).
    AmbiguousConfiguration {
        /// State the entry is primed to.
        primed: PhtState,
        /// Probe direction that fails to discriminate.
        probe: Outcome,
    },
    /// No randomization block leaving the target entry in the desired state
    /// was found within the search budget (paper §6.2 pre-attack search).
    PrimeSearchExhausted {
        /// Desired target-entry state.
        desired: PhtState,
        /// Candidate blocks tried.
        attempts: usize,
    },
    /// A parameter was out of its documented range.
    InvalidParameter(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::AmbiguousConfiguration { primed, probe } => write!(
                f,
                "priming {primed} and probing with {probe} branches cannot distinguish the victim direction"
            ),
            AttackError::PrimeSearchExhausted { desired, attempts } => write!(
                f,
                "no randomization block left the target entry in {desired} after {attempts} candidates"
            ),
            AttackError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for AttackError {}

/// Workspace-wide error hierarchy: everything a BranchScope experiment can
/// fail with, short of a panic.
///
/// Each variant wraps the typed error of the layer it came from, so
/// callers can match on the failure class while `Display` keeps the
/// layer's own message.
#[derive(Debug, Clone, PartialEq)]
pub enum BscopeError {
    /// The attack primitive was misconfigured or its pre-attack search
    /// failed ([`AttackError`]).
    Attack(AttackError),
    /// The simulated system was configured outside its documented ranges
    /// ([`ConfigError`], e.g. an invalid [`bscope_uarch::NoiseConfig`]).
    Config(ConfigError),
}

impl fmt::Display for BscopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BscopeError::Attack(e) => write!(f, "attack error: {e}"),
            BscopeError::Config(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl Error for BscopeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BscopeError::Attack(e) => Some(e),
            BscopeError::Config(e) => Some(e),
        }
    }
}

impl From<AttackError> for BscopeError {
    fn from(e: AttackError) -> Self {
        BscopeError::Attack(e)
    }
}

impl From<ConfigError> for BscopeError {
    fn from(e: ConfigError) -> Self {
        BscopeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AttackError::AmbiguousConfiguration {
            primed: PhtState::StronglyTaken,
            probe: Outcome::Taken,
        };
        assert!(e.to_string().contains("ST"));
        let e = AttackError::PrimeSearchExhausted {
            desired: PhtState::StronglyNotTaken,
            attempts: 32,
        };
        assert!(e.to_string().contains("32"));
        let e = AttackError::InvalidParameter("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }

    #[test]
    fn hierarchy_converts_and_sources() {
        let attack = AttackError::InvalidParameter("bad k".into());
        let e: BscopeError = attack.clone().into();
        assert_eq!(e, BscopeError::Attack(attack));
        assert!(e.to_string().contains("bad k"));
        assert!(e.source().is_some(), "wrapped error is exposed as the source");

        let cfg = bscope_uarch::NoiseConfig { taken_bias: 2.0, ..bscope_uarch::NoiseConfig::system_activity() }
            .validate()
            .unwrap_err();
        let e: BscopeError = cfg.into();
        assert!(matches!(e, BscopeError::Config(ConfigError::OutOfRange { .. })));
        assert!(e.to_string().contains("taken_bias"));
    }
}
