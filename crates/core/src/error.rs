//! Attack error types.

use bscope_bpu::{Outcome, PhtState};
use std::error::Error;
use std::fmt;

/// Errors from configuring or running the BranchScope attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The chosen prime-state / probe-direction combination cannot
    /// distinguish a taken from a not-taken victim branch on this counter
    /// (e.g. priming ST and probing taken-taken always observes `HH`, and
    /// on Skylake priming ST and probing not-taken observes `MM` for both
    /// directions — the ST/WT ambiguity of Table 1, footnote 1).
    AmbiguousConfiguration {
        /// State the entry is primed to.
        primed: PhtState,
        /// Probe direction that fails to discriminate.
        probe: Outcome,
    },
    /// No randomization block leaving the target entry in the desired state
    /// was found within the search budget (paper §6.2 pre-attack search).
    PrimeSearchExhausted {
        /// Desired target-entry state.
        desired: PhtState,
        /// Candidate blocks tried.
        attempts: usize,
    },
    /// A parameter was out of its documented range.
    InvalidParameter(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::AmbiguousConfiguration { primed, probe } => write!(
                f,
                "priming {primed} and probing with {probe} branches cannot distinguish the victim direction"
            ),
            AttackError::PrimeSearchExhausted { desired, attempts } => write!(
                f,
                "no randomization block left the target entry in {desired} after {attempts} candidates"
            ),
            AttackError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for AttackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AttackError::AmbiguousConfiguration {
            primed: PhtState::StronglyTaken,
            probe: Outcome::Taken,
        };
        assert!(e.to_string().contains("ST"));
        let e = AttackError::PrimeSearchExhausted {
            desired: PhtState::StronglyNotTaken,
            attempts: 32,
        };
        assert!(e.to_string().contains("32"));
        let e = AttackError::InvalidParameter("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }
}
