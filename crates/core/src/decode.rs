//! FSM dictionaries: Table 1, direction decoding and PHT state decoding.

use crate::error::AttackError;
use crate::probe::{ProbeKind, ProbePattern};
use bscope_bpu::{Counter, CounterKind, Outcome, PhtState};
use std::fmt;

/// Simulates one probe pair on a counter, returning the observed pattern
/// and leaving the counter in its post-probe state.
fn run_probe(counter: &mut Counter, probe: ProbeKind) -> ProbePattern {
    let first = counter.access(probe.outcome());
    let second = counter.access(probe.outcome());
    ProbePattern::from_hits(first, second)
}

/// One row of the paper's Table 1: a prime / target / probe experiment on a
/// single PHT entry and the resulting observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Direction the three prime branches execute with.
    pub prime: Outcome,
    /// FSM state after the prime stage.
    pub state_after_prime: PhtState,
    /// Direction of the single target-stage branch (the victim's).
    pub target: Outcome,
    /// FSM state after the target stage.
    pub state_after_target: PhtState,
    /// Probe direction pair.
    pub probe: ProbeKind,
    /// Observed prediction pattern of the two probing branches.
    pub observation: ProbePattern,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.prime.letter();
        let t = self.target.letter();
        write!(
            f,
            "{p}{p}{p} | {:>2} | {t} | {:>2} | {}{} | {}",
            self.state_after_prime,
            self.state_after_target,
            self.probe.outcome().letter(),
            self.probe.outcome().letter(),
            self.observation,
        )
    }
}

/// Computes one Table 1 row by driving a fresh counter FSM through the
/// paper's three stages: three prime executions, one target execution, two
/// probe executions.
#[must_use]
pub fn fsm_transition_row(
    kind: CounterKind,
    prime: Outcome,
    target: Outcome,
    probe: ProbeKind,
) -> Table1Row {
    let mut c = Counter::new(kind);
    for _ in 0..3 {
        c.update(prime);
    }
    let state_after_prime = c.state();
    c.update(target);
    let state_after_target = c.state();
    let observation = run_probe(&mut c, probe);
    Table1Row { prime, state_after_prime, target, state_after_target, probe, observation }
}

/// All eight rows of Table 1 in the paper's order (prime TTT first, probe
/// TT before NN within each target direction).
#[must_use]
pub fn table1(kind: CounterKind) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(8);
    for prime in [Outcome::Taken, Outcome::NotTaken] {
        for target in [Outcome::Taken, Outcome::NotTaken] {
            for probe in [ProbeKind::TakenTaken, ProbeKind::NotTakenNotTaken] {
                rows.push(fsm_transition_row(kind, prime, target, probe));
            }
        }
    }
    rows
}

/// The spy's decoding dictionary: maps an observed probe pattern to the
/// victim's branch direction, for a given primed state and probe kind.
///
/// The two *expected* patterns come from simulating the FSM (Table 1); the
/// two remaining patterns — "rarely observed misprediction patterns" the
/// paper adds "in order to include all four possible combinations" (§7,
/// Fig. 6) — are assigned by the observation position that actually
/// discriminates the two expected patterns. For the canonical SN-primed,
/// TT-probed configuration this yields the familiar dictionary
/// `MM, HM → not-taken; MH, HH → taken`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionDict {
    primed: PhtState,
    probe: ProbeKind,
    expected_taken: ProbePattern,
    expected_not_taken: ProbePattern,
    map: [Outcome; 4],
}

impl DirectionDict {
    /// Builds the dictionary for an entry primed to `primed` and probed
    /// with `probe` on a counter of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::AmbiguousConfiguration`] when both victim
    /// directions produce the same observation — probing in the primed
    /// direction always does, and on Skylake so does priming ST and probing
    /// NN (the ST/WT indistinguishability of Table 1, footnote 1).
    pub fn build(
        kind: CounterKind,
        primed: PhtState,
        probe: ProbeKind,
    ) -> Result<Self, AttackError> {
        let pattern_after = |victim: Outcome| {
            let mut c = kind.counter_in(primed);
            c.update(victim);
            run_probe(&mut c, probe)
        };
        let expected_taken = pattern_after(Outcome::Taken);
        let expected_not_taken = pattern_after(Outcome::NotTaken);
        if expected_taken == expected_not_taken {
            return Err(AttackError::AmbiguousConfiguration { primed, probe: probe.outcome() });
        }
        // Pick the discriminating observation position; prefer the second,
        // which §8 shows is also the reliable one for timing measurements.
        let use_second = expected_taken.second_hit() != expected_not_taken.second_hit();
        let classify = |p: ProbePattern| {
            let flag = if use_second { p.second_hit() } else { p.first_hit() };
            let taken_flag =
                if use_second { expected_taken.second_hit() } else { expected_taken.first_hit() };
            if flag == taken_flag {
                Outcome::Taken
            } else {
                Outcome::NotTaken
            }
        };
        let mut map = [Outcome::Taken; 4];
        for (i, p) in ProbePattern::ALL.into_iter().enumerate() {
            map[i] = classify(p);
        }
        Ok(DirectionDict { primed, probe, expected_taken, expected_not_taken, map })
    }

    /// State the attack primes the entry into.
    #[must_use]
    pub fn primed(&self) -> PhtState {
        self.primed
    }

    /// Probe kind this dictionary decodes.
    #[must_use]
    pub fn probe(&self) -> ProbeKind {
        self.probe
    }

    /// The pattern expected when the victim's branch was `victim`.
    #[must_use]
    pub fn expected(&self, victim: Outcome) -> ProbePattern {
        match victim {
            Outcome::Taken => self.expected_taken,
            Outcome::NotTaken => self.expected_not_taken,
        }
    }

    /// Decodes an observed pattern into the inferred victim direction.
    #[must_use]
    pub fn decode(&self, pattern: ProbePattern) -> Outcome {
        let idx = ProbePattern::ALL.iter().position(|&p| p == pattern).expect("pattern in ALL");
        self.map[idx]
    }
}

/// A PHT state as decoded from the two probing variants (§6.2, Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DecodedState {
    /// The observations match a specific FSM state.
    Known(PhtState),
    /// Both probing variants predicted perfectly (`HH`/`HH`): the
    /// randomization had no effect and the 2-level predictor is covering
    /// this branch — the paper's "dirty" case.
    Dirty,
    /// Observations match no state and are not the dirty signature —
    /// unstable/noisy measurements the paper drops from its statistics.
    Unknown,
}

impl fmt::Display for DecodedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodedState::Known(s) => write!(f, "{s}"),
            DecodedState::Dirty => f.write_str("dirty"),
            DecodedState::Unknown => f.write_str("unknown"),
        }
    }
}

/// Decodes a PHT entry state from the dominant patterns of the TT-probing
/// and NN-probing experiment variants (the paper's "dictionary that
/// translates the prediction outcomes of the probing code to the PHT
/// state", §6.3).
///
/// On Skylake, `StronglyTaken` and `WeaklyTaken` produce identical
/// signatures; the shared signature decodes as `StronglyTaken` by
/// convention.
#[must_use]
pub fn decode_state(kind: CounterKind, tt: ProbePattern, nn: ProbePattern) -> DecodedState {
    if tt == ProbePattern::HH && nn == ProbePattern::HH {
        return DecodedState::Dirty;
    }
    // Match against each state's simulated signature, strongest first so
    // the merged Skylake taken states decode as ST.
    for state in [
        PhtState::StronglyTaken,
        PhtState::WeaklyTaken,
        PhtState::WeaklyNotTaken,
        PhtState::StronglyNotTaken,
    ] {
        let sig_tt = run_probe(&mut kind.counter_in(state), ProbeKind::TakenTaken);
        let sig_nn = run_probe(&mut kind.counter_in(state), ProbeKind::NotTakenNotTaken);
        if (tt, nn) == (sig_tt, sig_nn) {
            return DecodedState::Known(state);
        }
    }
    DecodedState::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact contents of the paper's Table 1 for the textbook counter
    /// (Haswell / Sandy Bridge column).
    #[test]
    fn table1_matches_paper_two_bit() {
        use Outcome::{NotTaken as N, Taken as T};
        use ProbePattern as P;
        let rows = table1(CounterKind::TwoBit);
        let want: [(Outcome, PhtState, Outcome, PhtState, ProbeKind, ProbePattern); 8] = [
            (T, PhtState::StronglyTaken, T, PhtState::StronglyTaken, ProbeKind::TakenTaken, P::HH),
            (T, PhtState::StronglyTaken, T, PhtState::StronglyTaken, ProbeKind::NotTakenNotTaken, P::MM),
            (T, PhtState::StronglyTaken, N, PhtState::WeaklyTaken, ProbeKind::TakenTaken, P::HH),
            (T, PhtState::StronglyTaken, N, PhtState::WeaklyTaken, ProbeKind::NotTakenNotTaken, P::MH),
            (N, PhtState::StronglyNotTaken, T, PhtState::WeaklyNotTaken, ProbeKind::TakenTaken, P::MH),
            (N, PhtState::StronglyNotTaken, T, PhtState::WeaklyNotTaken, ProbeKind::NotTakenNotTaken, P::HH),
            (N, PhtState::StronglyNotTaken, N, PhtState::StronglyNotTaken, ProbeKind::TakenTaken, P::MM),
            (N, PhtState::StronglyNotTaken, N, PhtState::StronglyNotTaken, ProbeKind::NotTakenNotTaken, P::HH),
        ];
        assert_eq!(rows.len(), 8);
        for (row, (prime, sp, target, st, probe, obs)) in rows.iter().zip(want) {
            assert_eq!(row.prime, prime);
            assert_eq!(row.state_after_prime, sp, "{row}");
            assert_eq!(row.target, target);
            assert_eq!(row.state_after_target, st, "{row}");
            assert_eq!(row.probe, probe);
            assert_eq!(row.observation, obs, "{row}");
        }
    }

    /// Footnote 1: on Skylake the `TTT | ST | N | WT | NN` row observes MM
    /// instead of MH; all other rows match the textbook column.
    #[test]
    fn table1_skylake_footnote() {
        let two_bit = table1(CounterKind::TwoBit);
        let skylake = table1(CounterKind::SkylakeAsymmetric);
        for (a, b) in two_bit.iter().zip(&skylake) {
            let is_footnote_row = a.prime == Outcome::Taken
                && a.target == Outcome::NotTaken
                && a.probe == ProbeKind::NotTakenNotTaken;
            if is_footnote_row {
                assert_eq!(a.observation, ProbePattern::MH, "Haswell/SB observe MH");
                assert_eq!(b.observation, ProbePattern::MM, "Skylake observes MM");
            } else {
                assert_eq!(a.observation, b.observation, "row {a} differs");
            }
        }
    }

    #[test]
    fn canonical_dictionary_matches_figure_6() {
        // SN-primed, TT-probed: victim taken → MH, not-taken → MM; the
        // extended dictionary groups by the second observation:
        // {MH, HH} → taken, {MM, HM} → not-taken.
        let d =
            DirectionDict::build(CounterKind::TwoBit, PhtState::StronglyNotTaken, ProbeKind::TakenTaken)
                .unwrap();
        assert_eq!(d.expected(Outcome::Taken), ProbePattern::MH);
        assert_eq!(d.expected(Outcome::NotTaken), ProbePattern::MM);
        assert_eq!(d.decode(ProbePattern::MH), Outcome::Taken);
        assert_eq!(d.decode(ProbePattern::HH), Outcome::Taken);
        assert_eq!(d.decode(ProbePattern::MM), Outcome::NotTaken);
        assert_eq!(d.decode(ProbePattern::HM), Outcome::NotTaken);
    }

    #[test]
    fn st_primed_nn_probe_works_on_two_bit_only() {
        // Haswell / Sandy Bridge: prime ST, probe NN distinguishes (MM vs
        // MH). Skylake: ambiguous (footnote 1) — build must refuse.
        let ok = DirectionDict::build(
            CounterKind::TwoBit,
            PhtState::StronglyTaken,
            ProbeKind::NotTakenNotTaken,
        )
        .unwrap();
        assert_eq!(ok.expected(Outcome::Taken), ProbePattern::MM);
        assert_eq!(ok.expected(Outcome::NotTaken), ProbePattern::MH);
        let err = DirectionDict::build(
            CounterKind::SkylakeAsymmetric,
            PhtState::StronglyTaken,
            ProbeKind::NotTakenNotTaken,
        );
        assert!(matches!(err, Err(AttackError::AmbiguousConfiguration { .. })));
    }

    #[test]
    fn probing_in_primed_direction_is_always_ambiguous() {
        for kind in [CounterKind::TwoBit, CounterKind::SkylakeAsymmetric] {
            assert!(DirectionDict::build(kind, PhtState::StronglyTaken, ProbeKind::TakenTaken)
                .is_err());
            assert!(DirectionDict::build(
                kind,
                PhtState::StronglyNotTaken,
                ProbeKind::NotTakenNotTaken
            )
            .is_err());
        }
    }

    #[test]
    fn skylake_canonical_dictionary_still_works() {
        // The paper's workaround: "the attacker can always pick a PHT
        // randomization code that places the target PHT entry into a state
        // without such ambiguity" — SN priming with TT probing.
        let d = DirectionDict::build(
            CounterKind::SkylakeAsymmetric,
            PhtState::StronglyNotTaken,
            ProbeKind::TakenTaken,
        )
        .unwrap();
        assert_eq!(d.decode(d.expected(Outcome::Taken)), Outcome::Taken);
        assert_eq!(d.decode(d.expected(Outcome::NotTaken)), Outcome::NotTaken);
    }

    #[test]
    fn state_decoding_identifies_all_two_bit_states() {
        use ProbePattern as P;
        let k = CounterKind::TwoBit;
        assert_eq!(decode_state(k, P::HH, P::MM), DecodedState::Known(PhtState::StronglyTaken));
        assert_eq!(decode_state(k, P::HH, P::MH), DecodedState::Known(PhtState::WeaklyTaken));
        assert_eq!(decode_state(k, P::MH, P::HH), DecodedState::Known(PhtState::WeaklyNotTaken));
        assert_eq!(decode_state(k, P::MM, P::HH), DecodedState::Known(PhtState::StronglyNotTaken));
        assert_eq!(decode_state(k, P::HH, P::HH), DecodedState::Dirty);
        assert_eq!(decode_state(k, P::HM, P::HM), DecodedState::Unknown);
    }

    #[test]
    fn skylake_taken_states_merge_to_st() {
        // ST and WT share a signature on Skylake; the decoder reports ST.
        let k = CounterKind::SkylakeAsymmetric;
        assert_eq!(
            decode_state(k, ProbePattern::HH, ProbePattern::MM),
            DecodedState::Known(PhtState::StronglyTaken)
        );
        // And no observation pair decodes to WT.
        for tt in ProbePattern::ALL {
            for nn in ProbePattern::ALL {
                assert_ne!(
                    decode_state(k, tt, nn),
                    DecodedState::Known(PhtState::WeaklyTaken),
                    "({tt},{nn})"
                );
            }
        }
    }

    #[test]
    fn row_display_matches_paper_layout() {
        let row = fsm_transition_row(
            CounterKind::TwoBit,
            Outcome::Taken,
            Outcome::NotTaken,
            ProbeKind::NotTakenNotTaken,
        );
        assert_eq!(row.to_string(), "TTT | ST | N | WT | NN | MH");
    }

    #[test]
    fn decoded_state_displays() {
        assert_eq!(DecodedState::Known(PhtState::StronglyTaken).to_string(), "ST");
        assert_eq!(DecodedState::Dirty.to_string(), "dirty");
        assert_eq!(DecodedState::Unknown.to_string(), "unknown");
    }
}
