//! Randomization-block stability analysis (paper §6.2, Fig. 4).
//!
//! The attacker needs a randomization block that leaves the target PHT
//! entry in a *reliable* state. This module reproduces the paper's
//! characterization: for many freshly generated blocks, repeatedly execute
//! the block and probe a fixed address with both probing variants; a block
//! is *stable* when the dominant prediction pattern of each variant occurs
//! in at least 85 % of repetitions, and the stable pattern pair decodes to
//! a PHT state (or to the "dirty" 2-level-predictor signature).

use crate::decode::{decode_state, DecodedState};
use crate::probe::{probe_with_counters, ProbeKind, ProbePattern};
use crate::randomize::RandomizationBlock;
use bscope_bpu::VirtAddr;
use bscope_os::{Pid, System};
use serde::{Deserialize, Serialize};

/// Parameters of the stability experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityConfig {
    /// Number of randomization blocks to generate and characterise
    /// (the paper uses 10 000; scale to budget).
    pub blocks: usize,
    /// Executions per block and per probing variant (the paper uses 1 000).
    pub reps: usize,
    /// Dominance threshold for stability (the paper's 85 %).
    pub threshold: f64,
    /// Fixed address whose PHT entry is probed.
    pub probe_addr: VirtAddr,
    /// Base seed for block generation (block *i* uses `seed + i`).
    pub seed: u64,
    /// Average block updates per PHT entry (block length = PHT size × this).
    /// The paper's 100 000 branches on a 2^14-entry PHT correspond to ~6.
    pub updates_per_entry: usize,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig {
            blocks: 200,
            reps: 50,
            threshold: 0.85,
            probe_addr: 0x30_0000,
            seed: 0xB10C,
            updates_per_entry: 6,
        }
    }
}

/// Characterisation of one randomization block (one point of Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockStability {
    /// Seed the block was generated from.
    pub block_seed: u64,
    /// Dominant pattern of the TT probing variant.
    pub tt_dominant: ProbePattern,
    /// Frequency of the TT dominant pattern in `[0, 1]` (x-axis of Fig. 4a).
    pub tt_frequency: f64,
    /// Dominant pattern of the NN probing variant.
    pub nn_dominant: ProbePattern,
    /// Frequency of the NN dominant pattern in `[0, 1]` (y-axis of Fig. 4a).
    pub nn_frequency: f64,
    /// Decoded state; `Unknown` when either variant is below threshold
    /// (the paper's "too noisy, dropped from statistics" case).
    pub state: DecodedState,
}

impl BlockStability {
    /// Whether both probing variants met the dominance threshold.
    #[must_use]
    pub fn is_stable(&self, threshold: f64) -> bool {
        self.tt_frequency >= threshold && self.nn_frequency >= threshold
    }
}

/// Distribution of decoded states across blocks (Fig. 4b's pie chart).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDistribution {
    /// Blocks decoding to strongly taken.
    pub st: usize,
    /// Blocks decoding to weakly taken.
    pub wt: usize,
    /// Blocks decoding to weakly not-taken.
    pub wn: usize,
    /// Blocks decoding to strongly not-taken.
    pub sn: usize,
    /// Blocks with the dirty (2-level) signature.
    pub dirty: usize,
    /// Unstable or undecodable blocks.
    pub unknown: usize,
}

impl StateDistribution {
    /// Tallies a set of block characterisations.
    #[must_use]
    pub fn from_blocks(blocks: &[BlockStability]) -> Self {
        use bscope_bpu::PhtState as S;
        let mut d = StateDistribution::default();
        for b in blocks {
            match b.state {
                DecodedState::Known(S::StronglyTaken) => d.st += 1,
                DecodedState::Known(S::WeaklyTaken) => d.wt += 1,
                DecodedState::Known(S::WeaklyNotTaken) => d.wn += 1,
                DecodedState::Known(S::StronglyNotTaken) => d.sn += 1,
                DecodedState::Dirty => d.dirty += 1,
                DecodedState::Unknown => d.unknown += 1,
            }
        }
        d
    }

    /// Total number of blocks tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.st + self.wt + self.wn + self.sn + self.dirty + self.unknown
    }

    /// Fraction of blocks that decoded to a usable state (not unknown).
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (total - self.unknown) as f64 / total as f64
        }
    }
}

/// Characterises a single randomization block (one point of Fig. 4a): the
/// block generated from `block_seed`, executed and probed `config.reps`
/// times per probing variant on the given system.
///
/// This is the per-trial unit the parallel experiment harness fans out
/// over; [`analyze_stability`] is the sequential convenience wrapper.
pub fn characterize_block(
    sys: &mut System,
    spy: Pid,
    config: &StabilityConfig,
    block_seed: u64,
) -> BlockStability {
    let (pht_size, counter_kind) = {
        let profile = sys.core().profile();
        (profile.pht_size, profile.counter_kind)
    };
    let block_len = pht_size * config.updates_per_entry.max(1);
    let block =
        RandomizationBlock::generate(block_seed, block_len, crate::randomize::DEFAULT_BLOCK_REGION);
    let mut dominants = [(ProbePattern::HH, 0.0f64); 2];
    for (slot, kind) in
        [ProbeKind::TakenTaken, ProbeKind::NotTakenNotTaken].into_iter().enumerate()
    {
        let mut counts = [0usize; 4];
        for _ in 0..config.reps {
            block.execute(&mut sys.cpu(spy));
            let pattern = probe_with_counters(&mut sys.cpu(spy), config.probe_addr, kind);
            let idx = ProbePattern::ALL.iter().position(|&p| p == pattern).expect("in ALL");
            counts[idx] += 1;
        }
        let (best, &n) = counts.iter().enumerate().max_by_key(|&(_, &n)| n).expect("four counts");
        dominants[slot] = (ProbePattern::ALL[best], n as f64 / config.reps as f64);
    }
    let (tt_dominant, tt_frequency) = dominants[0];
    let (nn_dominant, nn_frequency) = dominants[1];
    let state = if tt_frequency >= config.threshold && nn_frequency >= config.threshold {
        decode_state(counter_kind, tt_dominant, nn_dominant)
    } else {
        DecodedState::Unknown
    };
    BlockStability { block_seed, tt_dominant, tt_frequency, nn_dominant, nn_frequency, state }
}

/// Runs the Fig. 4 experiment: characterises `config.blocks` randomization
/// blocks on the given system (enable noise on the system beforehand to
/// reproduce the paper's environment).
pub fn analyze_stability(
    sys: &mut System,
    spy: Pid,
    config: &StabilityConfig,
) -> Vec<BlockStability> {
    (0..config.blocks)
        .map(|i| characterize_block(sys, spy, config, config.seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{CounterKind, Microarch, MicroarchProfile, PhtState};
    use bscope_os::AslrPolicy;
    use bscope_uarch::NoiseConfig;

    fn small_profile() -> MicroarchProfile {
        MicroarchProfile {
            arch: Microarch::Custom,
            pht_size: 1_024,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 10,
            selector_size: 256,
            btb_size: 256,
            timing: Default::default(),
        }
    }

    fn config(blocks: usize, reps: usize) -> StabilityConfig {
        StabilityConfig { blocks, reps, ..StabilityConfig::default() }
    }

    #[test]
    fn noiseless_blocks_are_overwhelmingly_stable() {
        let mut sys = System::new(small_profile(), 91);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let points = analyze_stability(&mut sys, spy, &config(20, 8));
        let dist = StateDistribution::from_blocks(&points);
        assert_eq!(dist.total(), 20);
        assert!(
            dist.stable_fraction() > 0.8,
            "noiseless stability {:.2}, dist {dist:?}",
            dist.stable_fraction()
        );
    }

    #[test]
    fn noise_reduces_stability_but_most_blocks_survive() {
        // A mid-size 2-bit machine keeps the runtime reasonable; the noise
        // exposure per entry scales inversely with PHT size, so the small
        // test profiles would show nothing stable. Denser blocks (10
        // updates/entry) give the entry-convergence the paper's stable
        // blocks exhibit; see EXPERIMENTS.md for the full-size calibration.
        let profile = MicroarchProfile {
            arch: Microarch::Custom,
            pht_size: 4_096,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 12,
            selector_size: 1_024,
            btb_size: 1_024,
            timing: Default::default(),
        };
        let mut sys = System::new(profile, 92).with_noise(NoiseConfig::isolated_core()).unwrap();
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let cfg = StabilityConfig { updates_per_entry: 10, ..config(8, 40) };
        let points = analyze_stability(&mut sys, spy, &cfg);
        let dist = StateDistribution::from_blocks(&points);
        // Fig. 4: 83 % of blocks stable under system noise. The exact value
        // is configuration-dependent; assert the qualitative claim on this
        // reduced sample.
        assert!(
            dist.stable_fraction() >= 0.5,
            "noisy stability {:.2}",
            dist.stable_fraction()
        );
    }

    #[test]
    fn stable_blocks_cover_multiple_states() {
        let mut sys = System::new(small_profile(), 93);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let points = analyze_stability(&mut sys, spy, &config(30, 6));
        let dist = StateDistribution::from_blocks(&points);
        let populated = [dist.st, dist.wt, dist.wn, dist.sn].iter().filter(|&&n| n > 0).count();
        assert!(populated >= 2, "expected several states populated: {dist:?}");
    }

    #[test]
    fn distribution_tally_is_exhaustive() {
        let blocks = [
            BlockStability {
                block_seed: 0,
                tt_dominant: ProbePattern::HH,
                tt_frequency: 1.0,
                nn_dominant: ProbePattern::MM,
                nn_frequency: 1.0,
                state: DecodedState::Known(PhtState::StronglyTaken),
            },
            BlockStability {
                block_seed: 1,
                tt_dominant: ProbePattern::HH,
                tt_frequency: 0.5,
                nn_dominant: ProbePattern::MM,
                nn_frequency: 0.5,
                state: DecodedState::Unknown,
            },
        ];
        let dist = StateDistribution::from_blocks(&blocks);
        assert_eq!(dist.st, 1);
        assert_eq!(dist.unknown, 1);
        assert_eq!(dist.total(), 2);
        assert!((dist.stable_fraction() - 0.5).abs() < 1e-12);
        assert!(blocks[0].is_stable(0.85));
        assert!(!blocks[1].is_stable(0.85));
    }
}
