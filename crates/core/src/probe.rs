//! Stage-3 probing: two spy branches observed through performance counters.

use bscope_bpu::{Outcome, VirtAddr};
use bscope_os::CpuView;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction both probing branches execute with.
///
/// The paper probes either with two taken branches (`TT`) or two not-taken
/// branches (`NN`); the useful direction is the one *opposite* to the primed
/// state (probing in the primed direction observes `HH` regardless of the
/// victim, Table 1 rows 1/3/6/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Two taken probe branches (`TT`).
    TakenTaken,
    /// Two not-taken probe branches (`NN`).
    NotTakenNotTaken,
}

impl ProbeKind {
    /// The outcome each probe branch executes with.
    #[must_use]
    pub fn outcome(self) -> Outcome {
        match self {
            ProbeKind::TakenTaken => Outcome::Taken,
            ProbeKind::NotTakenNotTaken => Outcome::NotTaken,
        }
    }

    /// The probe kind executing with `outcome`.
    #[must_use]
    pub fn from_outcome(outcome: Outcome) -> Self {
        match outcome {
            Outcome::Taken => ProbeKind::TakenTaken,
            Outcome::NotTaken => ProbeKind::NotTakenNotTaken,
        }
    }

    /// The paper's two-letter mnemonic: `TT` or `NN`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            ProbeKind::TakenTaken => "TT",
            ProbeKind::NotTakenNotTaken => "NN",
        }
    }
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Prediction observations of the two probing branches, in the paper's
/// notation: `H` = correct prediction (hit), `M` = misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProbePattern {
    /// Both probes predicted correctly.
    HH,
    /// First correct, second mispredicted.
    HM,
    /// First mispredicted, second correct.
    MH,
    /// Both probes mispredicted.
    MM,
}

impl ProbePattern {
    /// All four patterns.
    pub const ALL: [ProbePattern; 4] =
        [ProbePattern::HH, ProbePattern::HM, ProbePattern::MH, ProbePattern::MM];

    /// Builds a pattern from the two per-probe hit flags.
    #[must_use]
    pub fn from_hits(first_hit: bool, second_hit: bool) -> Self {
        match (first_hit, second_hit) {
            (true, true) => ProbePattern::HH,
            (true, false) => ProbePattern::HM,
            (false, true) => ProbePattern::MH,
            (false, false) => ProbePattern::MM,
        }
    }

    /// Whether the first probe predicted correctly.
    #[must_use]
    pub fn first_hit(self) -> bool {
        matches!(self, ProbePattern::HH | ProbePattern::HM)
    }

    /// Whether the second probe predicted correctly.
    ///
    /// Per §8, the second observation alone suffices to decode the victim's
    /// direction for a well-chosen prime state, which is what makes the
    /// timing variant practical despite noisy first (cold) measurements.
    #[must_use]
    pub fn second_hit(self) -> bool {
        matches!(self, ProbePattern::HH | ProbePattern::MH)
    }

    /// Number of mispredictions in the pattern (0–2).
    #[must_use]
    pub fn mispredictions(self) -> u32 {
        u32::from(!self.first_hit()) + u32::from(!self.second_hit())
    }
}

impl fmt::Display for ProbePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProbePattern::HH => "HH",
            ProbePattern::HM => "HM",
            ProbePattern::MH => "MH",
            ProbePattern::MM => "MM",
        })
    }
}

/// Executes the two probing branches at `addr` and reads their prediction
/// outcomes from the branch-misprediction performance counter, exactly as
/// the paper's `spy_function()` (Listing 3) does: read counter → branch →
/// read counter → store delta, twice.
pub fn probe_with_counters(cpu: &mut CpuView<'_>, addr: VirtAddr, kind: ProbeKind) -> ProbePattern {
    let mut hits = [false; 2];
    for hit in &mut hits {
        *hit = probe_once(cpu, addr, kind);
    }
    ProbePattern::from_hits(hits[0], hits[1])
}

/// Executes a single probing branch at `addr` and reports whether it was
/// predicted correctly (one counter-delta observation).
///
/// [`probe_with_counters`] runs the two probes back to back, which is all
/// the hybrid needs; on history-indexed backends the attacker re-scrambles
/// the global history *between* the two observations (see
/// `BranchScope::observe_bit`), so the stages are also available singly.
pub fn probe_once(cpu: &mut CpuView<'_>, addr: VirtAddr, kind: ProbeKind) -> bool {
    let before = cpu.counters().branch_misses;
    cpu.branch_at_abs(addr, kind.outcome());
    let after = cpu.counters().branch_misses;
    after == before
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{MicroarchProfile, PhtState};
    use bscope_os::{AslrPolicy, System};

    #[test]
    fn pattern_round_trips() {
        assert_eq!(ProbePattern::from_hits(true, true), ProbePattern::HH);
        assert_eq!(ProbePattern::from_hits(false, true), ProbePattern::MH);
        assert!(ProbePattern::MH.second_hit());
        assert!(!ProbePattern::MH.first_hit());
        assert_eq!(ProbePattern::MM.mispredictions(), 2);
        assert_eq!(ProbePattern::HH.mispredictions(), 0);
        assert_eq!(ProbePattern::HM.to_string(), "HM");
    }

    #[test]
    fn probe_kind_round_trips() {
        assert_eq!(ProbeKind::from_outcome(Outcome::Taken), ProbeKind::TakenTaken);
        assert_eq!(ProbeKind::NotTakenNotTaken.outcome(), Outcome::NotTaken);
        assert_eq!(ProbeKind::TakenTaken.to_string(), "TT");
    }

    /// Reproduces Table 1 row 7 end-to-end through the counter channel:
    /// entry in SN probed with TT observes MM.
    #[test]
    fn counter_probe_observes_table1_row() {
        let mut sys = System::new(MicroarchProfile::haswell(), 1);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let addr = sys.process(spy).vaddr_of(0x100);
        sys.core_mut().bpu_mut().set_pht_state(addr, PhtState::StronglyNotTaken);
        let pattern = probe_with_counters(&mut sys.cpu(spy), addr, ProbeKind::TakenTaken);
        assert_eq!(pattern, ProbePattern::MM);
    }

    /// Entry in WN probed with TT observes MH (Table 1 row 5 after-target
    /// state).
    #[test]
    fn counter_probe_distinguishes_weak_state() {
        let mut sys = System::new(MicroarchProfile::haswell(), 2);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let addr = sys.process(spy).vaddr_of(0x100);
        sys.core_mut().bpu_mut().set_pht_state(addr, PhtState::WeaklyNotTaken);
        let pattern = probe_with_counters(&mut sys.cpu(spy), addr, ProbeKind::TakenTaken);
        assert_eq!(pattern, ProbePattern::MH);
    }
}
