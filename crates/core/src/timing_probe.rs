//! Timing-based branch-event detection (paper §8).
//!
//! When the attacker cannot read performance counters, mispredictions are
//! detected through their latency cost via `rdtscp`: a mispredicted branch
//! restarts the pipeline and costs tens of extra cycles (Fig. 7). Because
//! the *first* execution of a branch is polluted by instruction-cache
//! misses, the paper executes each branch twice and relies on the second
//! measurement, and amortises residual noise by averaging several
//! measurements (Fig. 8).

use crate::error::AttackError;
use crate::probe::{ProbeKind, ProbePattern};
use bscope_bpu::{Outcome, PhtState, VirtAddr};
use bscope_os::{CpuView, Pid, System};
use serde::{Deserialize, Serialize};

/// Classifier separating correctly-predicted from mispredicted branch
/// latencies.
///
/// Calibrated from labelled samples (the attacker can generate those on its
/// own branches: train an entry to a strong state, then execute agreeing /
/// disagreeing branches and time them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingDetector {
    threshold: f64,
}

impl TimingDetector {
    /// Builds a detector from labelled latency samples: the threshold is
    /// the midpoint of the two sample means.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] if either sample set is
    /// empty or the means are not separated (hits at least as slow as
    /// misses).
    pub fn from_samples(hits: &[u64], misses: &[u64]) -> Result<Self, AttackError> {
        if hits.is_empty() || misses.is_empty() {
            return Err(AttackError::InvalidParameter(
                "calibration needs at least one sample of each class".to_owned(),
            ));
        }
        let mean = |s: &[u64]| s.iter().sum::<u64>() as f64 / s.len() as f64;
        let (mh, mm) = (mean(hits), mean(misses));
        if mh >= mm {
            return Err(AttackError::InvalidParameter(format!(
                "hit mean {mh:.1} not below miss mean {mm:.1}; latencies are not separable"
            )));
        }
        Ok(TimingDetector { threshold: (mh + mm) / 2.0 })
    }

    /// Calibrates against the live machine by timing branches with known
    /// prediction outcomes (the pre-attack step an attacker would run).
    ///
    /// # Errors
    ///
    /// Propagates [`TimingDetector::from_samples`] errors.
    pub fn calibrate(
        sys: &mut System,
        spy: Pid,
        samples: usize,
    ) -> Result<Self, AttackError> {
        let hits = collect_latency_samples(sys, spy, samples, false, false);
        let misses = collect_latency_samples(sys, spy, samples, true, false);
        TimingDetector::from_samples(&hits, &misses)
    }

    /// Decision threshold in cycles.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classifies the mean of `measurements`: `true` = mispredicted.
    ///
    /// # Panics
    ///
    /// Panics if `measurements` is empty.
    #[must_use]
    pub fn classify_mean(&self, measurements: &[u64]) -> bool {
        assert!(!measurements.is_empty(), "need at least one measurement");
        let mean = measurements.iter().sum::<u64>() as f64 / measurements.len() as f64;
        mean > self.threshold
    }

    /// Runs the stage-3 probe through the timing channel instead of the
    /// performance counters: each probing branch's latency is classified
    /// individually.
    pub fn probe_with_timing(
        &self,
        cpu: &mut CpuView<'_>,
        addr: VirtAddr,
        kind: ProbeKind,
    ) -> ProbePattern {
        let first = cpu.branch_at_abs(addr, kind.outcome()).latency;
        let second = cpu.branch_at_abs(addr, kind.outcome()).latency;
        ProbePattern::from_hits(!self.classify_mean(&[first]), !self.classify_mean(&[second]))
    }
}

/// Generates `n` labelled latency samples on the live machine:
/// `mispredicted` selects whether the timed branch agrees with its trained
/// (strongly-taken) entry; `cold` flushes the i-cache before the timed
/// execution so it is a first-execution measurement (Fig. 7/8's "1st
/// measurement" condition).
///
/// Each sample uses a fresh branch address so entries and cache lines start
/// untouched.
#[must_use]
pub fn collect_latency_samples(
    sys: &mut System,
    spy: Pid,
    n: usize,
    mispredicted: bool,
    cold: bool,
) -> Vec<u64> {
    let base = 0x100_0000u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Every sample uses a branch address never timed before (derived
        // from the monotone retired-branch count), so stale PHT / BTB /
        // selector state from earlier samples cannot corrupt the labels.
        let addr = base + sys.cpu(spy).counters().branches_retired * 7;
        {
            let mut cpu = sys.cpu(spy);
            for _ in 0..3 {
                cpu.branch_at_abs(addr, Outcome::Taken);
            }
        }
        if cold {
            sys.core_mut().icache_mut().flush();
        }
        let outcome = if mispredicted { Outcome::NotTaken } else { Outcome::Taken };
        out.push(sys.cpu(spy).branch_at_abs(addr, outcome).latency);
    }
    out
}

/// Latency statistics of the two probing branches for a given PHT entry
/// state (one bar group of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeLatencyStats {
    /// State the entry was set to before each probe pair.
    pub state: PhtState,
    /// Mean latency of the first probing branch.
    pub first_mean: f64,
    /// Standard deviation of the first probing branch latency.
    pub first_std: f64,
    /// Mean latency of the second probing branch.
    pub second_mean: f64,
    /// Standard deviation of the second probing branch latency.
    pub second_std: f64,
    /// Expected prediction pattern for this state and probe direction.
    pub expected: ProbePattern,
}

/// Resets the non-PHT front-end context of a characterization branch:
/// evicts its BTB entry and clears its selector entry, the state a fresh
/// prime stage would leave behind. Characterization experiments (Figs. 7–9)
/// use this between repetitions so they measure the PHT effect in
/// isolation, exactly as the paper's controlled single-process experiments
/// do.
fn reset_branch_context(sys: &mut System, addr: VirtAddr) {
    let bpu = sys.core_mut().bpu_mut();
    bpu.btb_mut().evict(addr);
    if let Some(hybrid) = bpu.as_hybrid_mut() {
        hybrid.selector_mut().set_level(addr, 0);
    }
}

/// Measures probe-pair latencies as a function of the starting PHT state
/// (Fig. 9): the entry is repeatedly forced into `state`, probed with
/// `kind`, and both measurements are collected.
pub fn probe_latency_by_state(
    sys: &mut System,
    spy: Pid,
    state: PhtState,
    kind: ProbeKind,
    reps: usize,
) -> ProbeLatencyStats {
    let addr = 0x7d_0000u64;
    let counter_kind = sys.core().profile().counter_kind;
    let mut firsts = Vec::with_capacity(reps);
    let mut seconds = Vec::with_capacity(reps);
    let mut expected = ProbePattern::HH;
    for _ in 0..reps {
        reset_branch_context(sys, addr);
        sys.core_mut().bpu_mut().set_pht_state(addr, state);
        // Expected pattern from the FSM model (ground truth for the figure
        // annotation).
        let mut c = counter_kind.counter_in(state);
        let f = c.access(kind.outcome());
        let s = c.access(kind.outcome());
        expected = ProbePattern::from_hits(f, s);
        let mut cpu = sys.cpu(spy);
        firsts.push(cpu.branch_at_abs(addr, kind.outcome()).latency);
        seconds.push(cpu.branch_at_abs(addr, kind.outcome()).latency);
    }
    let stats = |v: &[u64]| {
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (first_mean, first_std) = stats(&firsts);
    let (second_mean, second_std) = stats(&seconds);
    ProbeLatencyStats { state, first_mean, first_std, second_mean, second_std, expected }
}

/// Detection error rate of the timing channel as a function of the number
/// of averaged measurements (one point of Fig. 8): the fraction of trials
/// in which the mean of `k` hit-latencies is at least the mean of `k`
/// miss-latencies.
pub fn detection_error_rate(
    sys: &mut System,
    spy: Pid,
    k: usize,
    trials: usize,
    cold: bool,
) -> f64 {
    let mut wrong = 0usize;
    for _ in 0..trials {
        let hits = collect_latency_samples(sys, spy, k, false, cold);
        let misses = collect_latency_samples(sys, spy, k, true, cold);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        if mean(&hits) >= mean(&misses) {
            wrong += 1;
        }
    }
    wrong as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;

    fn setup() -> (System, Pid) {
        let mut sys = System::new(MicroarchProfile::skylake(), 44);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        (sys, spy)
    }

    #[test]
    fn calibration_separates_classes() {
        let (mut sys, spy) = setup();
        let det = TimingDetector::calibrate(&mut sys, spy, 500).unwrap();
        // Threshold must sit between the Fig. 7 means (≈85 and ≈135).
        assert!((90.0..132.0).contains(&det.threshold()), "threshold {}", det.threshold());
    }

    #[test]
    fn from_samples_validates() {
        assert!(TimingDetector::from_samples(&[], &[100]).is_err());
        assert!(TimingDetector::from_samples(&[100], &[90]).is_err(), "inverted means");
        let det = TimingDetector::from_samples(&[80, 90], &[130, 140]).unwrap();
        assert!((det.threshold() - 110.0).abs() < 1e-9);
        assert!(det.classify_mean(&[150]));
        assert!(!det.classify_mean(&[80]));
    }

    #[test]
    fn single_warm_measurement_error_near_ten_percent() {
        // Fig. 8: the second (warm) measurement misclassifies ≈10 % of
        // single-shot trials.
        let (mut sys, spy) = setup();
        let rate = detection_error_rate(&mut sys, spy, 1, 2_000, false);
        assert!((0.04..0.20).contains(&rate), "warm single-shot error {rate:.3}");
    }

    #[test]
    fn cold_measurements_are_less_reliable() {
        let (mut sys, spy) = setup();
        let cold = detection_error_rate(&mut sys, spy, 1, 1_500, true);
        let warm = detection_error_rate(&mut sys, spy, 1, 1_500, false);
        assert!(cold > warm, "cold {cold:.3} must exceed warm {warm:.3}");
        assert!((0.10..0.40).contains(&cold), "cold error {cold:.3}");
    }

    #[test]
    fn averaging_drives_error_toward_zero() {
        let (mut sys, spy) = setup();
        let e10 = detection_error_rate(&mut sys, spy, 10, 800, false);
        assert!(e10 < 0.02, "ten averaged measurements leave {e10:.3}");
    }

    #[test]
    fn timing_probe_matches_counter_probe_statistically() {
        let (mut sys, spy) = setup();
        let det = TimingDetector::calibrate(&mut sys, spy, 800).unwrap();
        let addr = 0x7e_0000u64;
        let mut correct = 0;
        let trials = 300;
        for i in 0..trials {
            let state = if i % 2 == 0 { PhtState::StronglyNotTaken } else { PhtState::WeaklyNotTaken };
            super::reset_branch_context(&mut sys, addr);
            sys.core_mut().bpu_mut().set_pht_state(addr, state);
            let want = match state {
                PhtState::StronglyNotTaken => ProbePattern::MM,
                _ => ProbePattern::MH,
            };
            let got = det.probe_with_timing(&mut sys.cpu(spy), addr, ProbeKind::TakenTaken);
            if got == want {
                correct += 1;
            }
        }
        let accuracy = f64::from(correct) / f64::from(trials);
        assert!(accuracy > 0.6, "per-branch timing probe accuracy {accuracy:.3}");
    }

    #[test]
    fn figure9_states_are_separable_by_second_measurement() {
        let (mut sys, spy) = setup();
        // Probing WN and SN with TT: first measurements both mispredict,
        // second measurement differs (MH vs MM) — Fig. 9's separation.
        let wn = probe_latency_by_state(&mut sys, spy, PhtState::WeaklyNotTaken, ProbeKind::TakenTaken, 2_000);
        let sn = probe_latency_by_state(&mut sys, spy, PhtState::StronglyNotTaken, ProbeKind::TakenTaken, 2_000);
        assert_eq!(wn.expected, ProbePattern::MH);
        assert_eq!(sn.expected, ProbePattern::MM);
        assert!(
            sn.second_mean - wn.second_mean > 30.0,
            "second-probe means must separate: SN {:.1} vs WN {:.1}",
            sn.second_mean,
            wn.second_mean
        );
        assert!((sn.first_mean - wn.first_mean).abs() < 10.0, "first probes both mispredict");
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn classify_empty_panics() {
        let det = TimingDetector::from_samples(&[80], &[130]).unwrap();
        let _ = det.classify_mean(&[]);
    }
}
