//! Covert channel over the directional branch predictor (paper §7, §9.2).
//!
//! The sender (trojan) encodes each bit as the direction of a conditional
//! branch at a known code offset; the receiver runs BranchScope rounds
//! against the colliding PHT entry and decodes the directions. Both the
//! ordinary cross-process channel (Table 2) and the enclave-to-outside
//! channel (Table 3) are provided.

use crate::attack::{AttackConfig, BranchScope};
use crate::error::AttackError;
use bscope_bpu::Outcome;
use bscope_os::{CpuView, Enclave, EnclaveController, Pid, System, Workload};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Code offset (within the sender binary) of the transmitting branch —
/// the `0x6d` of the paper's Listing 2 disassembly.
pub const SENDER_BRANCH_OFFSET: u64 = 0x6d;

/// Outcome of a covert-channel transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransmitResult {
    /// Bits recovered by the receiver (same length as the sent message).
    pub received: Vec<bool>,
    /// Number of positions where the received bit differs from the sent bit.
    pub errors: usize,
    /// `errors / sent`.
    pub error_rate: f64,
    /// Cycles elapsed on the shared core during the transmission.
    pub cycles: u64,
}

impl TransmitResult {
    fn new(sent: &[bool], received: Vec<bool>, cycles: u64) -> Self {
        let errors = sent.iter().zip(&received).filter(|(a, b)| a != b).count();
        let error_rate = if sent.is_empty() { 0.0 } else { errors as f64 / sent.len() as f64 };
        TransmitResult { received, errors, error_rate, cycles }
    }

    /// Channel capacity in bits per million cycles (throughput measure).
    #[must_use]
    pub fn bits_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.received.len() as f64 * 1e6 / self.cycles as f64
        }
    }
}

/// A cross-process covert channel: sender and receiver are ordinary
/// co-resident processes.
#[derive(Debug)]
pub struct CovertChannel {
    attack: BranchScope,
}

impl CovertChannel {
    /// Builds the channel for the attack configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`AttackError::AmbiguousConfiguration`] from the decoder.
    pub fn new(config: AttackConfig) -> Result<Self, AttackError> {
        Ok(CovertChannel { attack: BranchScope::new(config)? })
    }

    /// The underlying attack instance.
    #[must_use]
    pub fn attack(&self) -> &BranchScope {
        &self.attack
    }

    /// Transmits a bit stream given by `bit_at`, decoding straight into the
    /// received `Vec<bool>` (no intermediate outcome buffer, no
    /// materialised repetition-expanded payload).
    fn transmit_stream(
        &mut self,
        sys: &mut System,
        sender: Pid,
        receiver: Pid,
        len: usize,
        bit_at: impl Fn(usize) -> bool,
    ) -> (Vec<bool>, u64) {
        let target = sys.process(sender).vaddr_of(SENDER_BRANCH_OFFSET);
        let start = sys.core().rdtscp();
        let mut received = Vec::with_capacity(len);
        for i in 0..len {
            let outcome = self.attack.read_bit(sys, receiver, target, |sys| {
                sys.cpu(sender).branch_at(SENDER_BRANCH_OFFSET, Outcome::from_bool(bit_at(i)));
            });
            received.push(outcome.is_taken());
        }
        (received, sys.core().rdtscp() - start)
    }

    /// Transmits `bits` from `sender` to `receiver`, bit `true` encoded as
    /// a taken branch.
    pub fn transmit(
        &mut self,
        sys: &mut System,
        sender: Pid,
        receiver: Pid,
        bits: &[bool],
    ) -> TransmitResult {
        let (received, cycles) = self.transmit_stream(sys, sender, receiver, bits.len(), |i| bits[i]);
        TransmitResult::new(bits, received, cycles)
    }

    /// Transmits with `n`-fold repetition coding: the sender repeats every
    /// payload bit `n` times and the receiver majority-votes. Trades
    /// throughput for reliability — the standard way to push the §7
    /// channel's residual error rate to effectively zero on a noisy core.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or even (majority voting needs an odd count).
    pub fn transmit_with_redundancy(
        &mut self,
        sys: &mut System,
        sender: Pid,
        receiver: Pid,
        bits: &[bool],
        n: usize,
    ) -> TransmitResult {
        assert!(n % 2 == 1, "redundancy must be odd, got {n}");
        let (raw, cycles) =
            self.transmit_stream(sys, sender, receiver, bits.len() * n, |i| bits[i / n]);
        let decoded: Vec<bool> = raw
            .chunks(n)
            .map(|votes| votes.iter().filter(|&&v| v).count() * 2 > n)
            .collect();
        TransmitResult::new(bits, decoded, cycles)
    }

    /// Receives from inside an SGX enclave (§9.2): the enclave runs an
    /// [`EnclaveSender`] workload; the attacker-controlled OS single-steps
    /// it between receiver rounds with `controller`.
    ///
    /// Returns only what the receiver actually learns ([`ReceivedBits`]);
    /// score it against the ground-truth secret with
    /// [`ReceivedBits::score`] in benchmarks.
    pub fn receive_from_enclave(
        &mut self,
        sys: &mut System,
        enclave: &mut Enclave<EnclaveSender>,
        controller: &EnclaveController,
        receiver: Pid,
        n_bits: usize,
    ) -> ReceivedBits {
        let target = sys.process(enclave.pid()).vaddr_of(SENDER_BRANCH_OFFSET);
        let start = sys.core().rdtscp();
        let mut bits = Vec::with_capacity(n_bits);
        for _ in 0..n_bits {
            if enclave.finished() {
                break;
            }
            let outcome = self.attack.read_bit(sys, receiver, target, |sys| {
                controller.resume(sys, enclave);
            });
            bits.push(outcome.is_taken());
        }
        ReceivedBits { bits, cycles: sys.core().rdtscp() - start }
    }
}

/// Bits recovered by a receiver that does not know the ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedBits {
    /// The recovered bit stream.
    pub bits: Vec<bool>,
    /// Cycles elapsed during reception.
    pub cycles: u64,
}

impl ReceivedBits {
    /// Scores the reception against the ground-truth secret (benchmark
    /// bookkeeping, not something the attacker can do).
    #[must_use]
    pub fn score(&self, sent: &[bool]) -> TransmitResult {
        TransmitResult::new(&sent[..self.bits.len()], self.bits.clone(), self.cycles)
    }
}

/// Enclave-resident covert-channel sender: one branch per bit, stepped by
/// the malicious OS.
#[derive(Debug, Clone)]
pub struct EnclaveSender {
    bits: Vec<bool>,
    next: usize,
}

impl EnclaveSender {
    /// Sender transmitting `bits`.
    #[must_use]
    pub fn new(bits: Vec<bool>) -> Self {
        EnclaveSender { bits, next: 0 }
    }

    /// Bits remaining to send.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.next
    }
}

impl Workload for EnclaveSender {
    fn step(&mut self, cpu: &mut CpuView<'_>) -> bool {
        if self.next >= self.bits.len() {
            return false;
        }
        cpu.branch_at(SENDER_BRANCH_OFFSET, Outcome::from_bool(self.bits[self.next]));
        self.next += 1;
        self.next < self.bits.len()
    }
}

/// Serialises a payload into channel bits, most-significant bit first.
///
/// ```
/// use bscope_core::covert::{bits_to_bytes, bytes_to_bits};
///
/// let bits = bytes_to_bits(b"ok");
/// assert_eq!(bits.len(), 16);
/// assert_eq!(&bits_to_bytes(&bits)[..], b"ok");
/// ```
#[must_use]
pub fn bytes_to_bits(payload: &[u8]) -> Vec<bool> {
    payload.iter().flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect()
}

/// Reassembles channel bits into bytes (inverse of [`bytes_to_bits`]);
/// trailing bits that do not fill a byte are dropped.
#[must_use]
pub fn bits_to_bytes(bits: &[bool]) -> Bytes {
    let mut out = BytesMut::with_capacity(bits.len() / 8);
    for chunk in bits.chunks_exact(8) {
        let mut byte = 0u8;
        for &bit in chunk {
            byte = (byte << 1) | u8::from(bit);
        }
        out.put_u8(byte);
    }
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::MicroarchProfile;
    use bscope_os::AslrPolicy;
    use bscope_uarch::NoiseConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn channel_for(profile: &MicroarchProfile) -> CovertChannel {
        CovertChannel::new(AttackConfig::for_profile(profile)).unwrap()
    }

    #[test]
    fn noiseless_channel_is_error_free() {
        for profile in MicroarchProfile::paper_machines() {
            let mut sys = System::new(profile.clone(), 77);
            let sender = sys.spawn("trojan", AslrPolicy::Disabled);
            let receiver = sys.spawn("spy", AslrPolicy::Disabled);
            let mut rng = StdRng::seed_from_u64(8);
            let bits: Vec<bool> = (0..500).map(|_| rng.gen()).collect();
            let res = channel_for(&profile).transmit(&mut sys, sender, receiver, &bits);
            assert_eq!(res.errors, 0, "{}: {} errors", profile.arch, res.errors);
            assert_eq!(res.received, bits);
            assert!(res.cycles > 0);
        }
    }

    #[test]
    fn noisy_channel_has_low_error_rate() {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 78).with_noise(NoiseConfig::system_activity()).unwrap();
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut rng = StdRng::seed_from_u64(9);
        let bits: Vec<bool> = (0..2_000).map(|_| rng.gen()).collect();
        let res = channel_for(&profile).transmit(&mut sys, sender, receiver, &bits);
        assert!(res.error_rate < 0.05, "error rate {:.4}", res.error_rate);
    }

    #[test]
    fn payload_round_trips_over_the_channel() {
        let profile = MicroarchProfile::haswell();
        let mut sys = System::new(profile.clone(), 79);
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let bits = bytes_to_bits(b"branchscope");
        let res = channel_for(&profile).transmit(&mut sys, sender, receiver, &bits);
        assert_eq!(&bits_to_bytes(&res.received)[..], b"branchscope");
    }

    #[test]
    fn enclave_sender_reaches_outside_receiver() {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 80);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut rng = StdRng::seed_from_u64(10);
        let secret: Vec<bool> = (0..300).map(|_| rng.gen()).collect();
        let mut enclave = Enclave::launch(&mut sys, "trojan-enclave", EnclaveSender::new(secret.clone()));
        let controller = EnclaveController::new();
        let received = channel_for(&profile).receive_from_enclave(
            &mut sys,
            &mut enclave,
            &controller,
            receiver,
            secret.len(),
        );
        assert_eq!(received.bits.len(), secret.len());
        let res = received.score(&secret);
        assert_eq!(res.errors, 0, "noiseless SGX channel must be exact");
    }

    #[test]
    fn redundancy_coding_eliminates_residual_errors() {
        let profile = MicroarchProfile::sandy_bridge(); // the noisiest machine
        let mut sys = System::new(profile.clone(), 81).with_noise(NoiseConfig::heavy()).unwrap();
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut rng = StdRng::seed_from_u64(11);
        let bits: Vec<bool> = (0..400).map(|_| rng.gen()).collect();
        let mut channel = channel_for(&profile);
        let raw = channel.transmit(&mut sys, sender, receiver, &bits);
        let coded = channel.transmit_with_redundancy(&mut sys, sender, receiver, &bits, 5);
        assert!(
            coded.error_rate < raw.error_rate || coded.errors == 0,
            "5x repetition must improve on raw ({:.3} vs {:.3})",
            coded.error_rate,
            raw.error_rate
        );
        assert!(coded.error_rate < 0.03, "coded error {:.4}", coded.error_rate);
        assert!(
            coded.bits_per_mcycle() < raw.bits_per_mcycle(),
            "reliability costs throughput"
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_redundancy_rejected() {
        let profile = MicroarchProfile::skylake();
        let mut sys = System::new(profile.clone(), 82);
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let _ = channel_for(&profile).transmit_with_redundancy(
            &mut sys,
            sender,
            receiver,
            &[true],
            2,
        );
    }

    #[test]
    fn bit_byte_round_trip() {
        let data = b"\x00\xff\x5a";
        assert_eq!(&bits_to_bytes(&bytes_to_bits(data))[..], data);
        // Trailing partial byte dropped.
        let mut bits = bytes_to_bits(b"a");
        bits.push(true);
        assert_eq!(&bits_to_bytes(&bits)[..], b"a");
    }

    #[test]
    fn transmit_result_metrics() {
        let res = TransmitResult::new(&[true, false, true], vec![true, true, true], 3_000_000);
        assert_eq!(res.errors, 1);
        assert!((res.error_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((res.bits_per_mcycle() - 1.0).abs() < 1e-12);
    }
}
