//! PHT reverse engineering (paper §6.3, Fig. 5).
//!
//! By decoding the PHT state behind a range of virtual addresses the
//! attacker learns the organisation of the table itself: the indexing
//! granularity (adjacent byte addresses land in different entries, Fig. 5a)
//! and — via the Hamming-distance window analysis of Eqs. 1–4 — the table
//! size (the window at which the state vector repeats, 2^14 on the paper's
//! machine, Fig. 5b/c).

use crate::decode::{decode_state, DecodedState};
use crate::probe::{probe_with_counters, ProbeKind};
use crate::randomize::RandomizationBlock;
use bscope_bpu::{Outcome, VirtAddr};
use bscope_os::{Pid, System};
use rand::Rng;

/// Decodes the PHT states behind `count` consecutive virtual addresses
/// starting at `start`, using the paper's procedure: execute the (fixed)
/// randomization block, place-and-execute a branch at each address, then
/// probe each address and translate the two probing variants' patterns
/// into states.
///
/// Because the block's outcomes are fixed, re-executing it re-establishes
/// the same PHT image, so the TT and NN probing passes observe the same
/// underlying states. Ranges wider than the PHT are processed one
/// table-wrap at a time (re-randomizing before each wrap) so that aliasing
/// addresses are probed against a freshly restored image — physically, the
/// repetition across wraps *is* the signal Fig. 5c visualises.
pub fn scan_states(
    sys: &mut System,
    spy: Pid,
    block: &RandomizationBlock,
    start: VirtAddr,
    count: usize,
) -> Vec<DecodedState> {
    let pht_size = sys.core().profile().pht_size;
    let counter_kind = sys.core().profile().counter_kind;
    let mut tt = Vec::with_capacity(count);
    let mut nn = Vec::with_capacity(count);
    for (kind, out) in
        [(ProbeKind::TakenTaken, &mut tt), (ProbeKind::NotTakenNotTaken, &mut nn)]
    {
        let mut done = 0usize;
        while done < count {
            let chunk = (count - done).min(pht_size);
            let base = start + done as u64;
            block.execute(&mut sys.cpu(spy));
            // Place-and-execute one branch per address (§6.3 step 2). The
            // direction is a fixed function of the address so both probing
            // passes replay identical executions.
            for i in 0..chunk {
                let addr = base + i as u64;
                let outcome = Outcome::from_bool(addr.wrapping_mul(0x9e37_79b9) & 4 != 0);
                sys.cpu(spy).branch_at_abs(addr, outcome);
            }
            for i in 0..chunk {
                out.push(probe_with_counters(&mut sys.cpu(spy), base + i as u64, kind));
            }
            done += chunk;
        }
    }
    tt.into_iter().zip(nn).map(|(t, n)| decode_state(counter_kind, t, n)).collect()
}

/// Mean Hamming distance between sampled subvector pairs of window size
/// `w`, divided by `w` (the paper's H(w)/w ratio, Eqs. 2–3). At most
/// `max_pairs` random pairs are evaluated ("instead of trying all possible
/// permutations, we computed Hamming distances of 100 random permutations
/// for each window size").
///
/// # Panics
///
/// Panics if `w` is zero or the vector holds fewer than two windows.
pub fn hamming_ratio<R: Rng + ?Sized>(
    states: &[DecodedState],
    w: usize,
    max_pairs: usize,
    rng: &mut R,
) -> f64 {
    assert!(w > 0, "window size must be positive");
    let windows = states.len() / w;
    assert!(windows >= 2, "need at least two windows of size {w} in {} states", states.len());
    let total_pairs = windows * (windows - 1) / 2;
    let mut sum = 0usize;
    let mut pairs = 0usize;
    if total_pairs <= max_pairs {
        for a in 0..windows {
            for b in a + 1..windows {
                sum += hamming(&states[a * w..(a + 1) * w], &states[b * w..(b + 1) * w]);
                pairs += 1;
            }
        }
    } else {
        while pairs < max_pairs {
            let a = rng.gen_range(0..windows);
            let b = rng.gen_range(0..windows);
            if a == b {
                continue;
            }
            sum += hamming(&states[a * w..(a + 1) * w], &states[b * w..(b + 1) * w]);
            pairs += 1;
        }
    }
    sum as f64 / (pairs as f64 * w as f64)
}

fn hamming(a: &[DecodedState], b: &[DecodedState]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Result of the PHT-size discovery (Eq. 4 and Fig. 5b).
#[derive(Debug, Clone, PartialEq)]
pub struct PhtSizeDiscovery {
    /// `(window, H(w)/w)` for every evaluated window, in evaluation order.
    pub ratios: Vec<(usize, f64)>,
    /// The window minimising the ratio — the inferred PHT size. Ties go to
    /// the smallest window, as Eq. 4 specifies.
    pub inferred_size: usize,
}

/// Evaluates the Hamming ratio for every window in `windows` and returns
/// the minimiser (the paper's Size_PHT = argmin_w H(w)/w).
///
/// # Panics
///
/// Panics if `windows` is empty or any window does not fit twice into the
/// state vector.
pub fn discover_pht_size<R: Rng + ?Sized>(
    states: &[DecodedState],
    windows: &[usize],
    max_pairs: usize,
    rng: &mut R,
) -> PhtSizeDiscovery {
    assert!(!windows.is_empty(), "need at least one candidate window");
    let ratios: Vec<(usize, f64)> =
        windows.iter().map(|&w| (w, hamming_ratio(states, w, max_pairs, rng))).collect();
    let inferred_size = ratios
        .iter()
        .fold((usize::MAX, f64::INFINITY), |best, &(w, r)| {
            if r < best.1 || (r == best.1 && w < best.0) {
                (w, r)
            } else {
                best
            }
        })
        .0;
    PhtSizeDiscovery { ratios, inferred_size }
}

/// Candidate windows for a two-phase size search over a vector of `len`
/// states: every power of two that fits twice, plus a dense band of
/// `±dense_halfwidth` around `focus` (the paper's Fig. 5b zooms into
/// 16 300–16 450 around the true size).
#[must_use]
pub fn candidate_windows(len: usize, focus: usize, dense_halfwidth: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut w = 2;
    while w * 2 <= len {
        out.push(w);
        w *= 2;
    }
    let lo = focus.saturating_sub(dense_halfwidth).max(2);
    let hi = (focus + dense_halfwidth).min(len / 2);
    for w in lo..=hi {
        if !out.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// Summary of a Fig. 5a-style granularity scan: how often adjacent
/// addresses decode to different states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityReport {
    /// Number of adjacent address pairs examined.
    pub pairs: usize,
    /// Pairs whose decoded states differ.
    pub differing: usize,
}

impl GranularityReport {
    /// Builds the report from a scanned state vector.
    #[must_use]
    pub fn from_states(states: &[DecodedState]) -> Self {
        let differing = states.windows(2).filter(|w| w[0] != w[1]).count();
        GranularityReport { pairs: states.len().saturating_sub(1), differing }
    }

    /// Fraction of adjacent pairs in different states. A value well above
    /// zero demonstrates byte-granular indexing (cache-line-granular
    /// indexing would pin this near zero within 64-byte runs).
    #[must_use]
    pub fn differing_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.differing as f64 / self.pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bscope_bpu::{CounterKind, Microarch, MicroarchProfile, PhtState};
    use bscope_os::AslrPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small machine so scans stay fast in debug builds.
    fn small_profile() -> MicroarchProfile {
        MicroarchProfile {
            arch: Microarch::Custom,
            pht_size: 1_024,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 10,
            selector_size: 256,
            btb_size: 256,
            timing: Default::default(),
        }
    }

    fn setup() -> (System, Pid) {
        let mut sys = System::new(small_profile(), 55);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        (sys, spy)
    }

    #[test]
    fn scan_decodes_mostly_known_states_with_byte_granularity() {
        let (mut sys, spy) = setup();
        let block = RandomizationBlock::generate(5, 14 * 1_024, 0x70_0000);
        let states = scan_states(&mut sys, spy, &block, 0x30_0000, 0x110);
        assert_eq!(states.len(), 0x110);
        let known = states.iter().filter(|s| matches!(s, DecodedState::Known(_))).count();
        assert!(known * 10 >= states.len() * 8, "≥80% known states, got {known}/{}", states.len());
        let report = GranularityReport::from_states(&states);
        assert!(
            report.differing_fraction() > 0.3,
            "adjacent addresses must frequently differ (got {:.3})",
            report.differing_fraction()
        );
    }

    #[test]
    fn scan_repeats_with_pht_period() {
        let (mut sys, spy) = setup();
        let block = RandomizationBlock::generate(6, 14 * 1_024, 0x70_0000);
        let n = 4 * 1_024;
        let states = scan_states(&mut sys, spy, &block, 0x30_0000, n);
        // Fig. 5c: rows one PHT apart are identical (no noise configured).
        let matches = (0..1_024)
            .filter(|&i| {
                states[i] == states[i + 1_024]
                    && states[i] == states[i + 2 * 1_024]
                    && states[i] == states[i + 3 * 1_024]
            })
            .count();
        assert!(matches * 10 >= 1_024 * 9, "≥90% periodic entries, got {matches}/1024");
    }

    #[test]
    fn hamming_discovery_finds_the_pht_size() {
        let (mut sys, spy) = setup();
        let block = RandomizationBlock::generate(7, 14 * 1_024, 0x70_0000);
        let states = scan_states(&mut sys, spy, &block, 0x30_0000, 4 * 1_024);
        let windows = candidate_windows(states.len(), 1_024, 40);
        let mut rng = StdRng::seed_from_u64(1);
        let discovery = discover_pht_size(&states, &windows, 100, &mut rng);
        assert_eq!(discovery.inferred_size, 1_024, "ratios: {:?}", &discovery.ratios[..8]);
    }

    #[test]
    fn hamming_ratio_zero_for_perfectly_periodic_vector() {
        let period: Vec<DecodedState> = (0..64)
            .map(|i| DecodedState::Known(PhtState::ALL[i % 4]))
            .collect();
        let mut v = Vec::new();
        for _ in 0..4 {
            v.extend_from_slice(&period);
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(hamming_ratio(&v, 64, 100, &mut rng), 0.0);
        assert!(hamming_ratio(&v, 63, 100, &mut rng) > 0.2, "misaligned window is noisy");
    }

    #[test]
    fn candidate_windows_contain_powers_and_band() {
        let ws = candidate_windows(65_536, 16_384, 50);
        assert!(ws.contains(&2) && ws.contains(&16_384) && ws.contains(&16_383));
        assert!(ws.iter().all(|&w| (2..=32_768).contains(&w)));
    }

    #[test]
    fn granularity_report_counts() {
        use DecodedState::Known;
        let states = [
            Known(PhtState::StronglyTaken),
            Known(PhtState::StronglyTaken),
            Known(PhtState::StronglyNotTaken),
            DecodedState::Dirty,
        ];
        let r = GranularityReport::from_states(&states);
        assert_eq!(r.pairs, 3);
        assert_eq!(r.differing, 2);
    }

    #[test]
    #[should_panic(expected = "at least two windows")]
    fn hamming_rejects_oversized_window() {
        let v = vec![DecodedState::Dirty; 10];
        let mut rng = StdRng::seed_from_u64(3);
        let _ = hamming_ratio(&v, 6, 10, &mut rng);
    }
}
