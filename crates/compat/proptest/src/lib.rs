//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro with `pattern in strategy` arguments,
//! `any::<T>()`, integer range strategies, tuple strategies,
//! `collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: a fixed deterministic seed per property
//! (reproducible across runs and machines), no shrinking, and no failure
//! persistence — `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one property case.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % span
    }
}

/// A value generator (upstream: `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (upstream: `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Full-domain strategy for `T` (upstream: `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bound for [`vec`]: an exact size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length bound.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-property configuration (upstream: `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `name(arg in strategy, ...)` item becomes a
/// `#[test]` running the body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    // Deterministic per-case seed; decorrelate consecutive
                    // cases with a large odd stride.
                    let mut rng = $crate::TestRng::new(
                        0xB5C0_9E02_u64.wrapping_add(u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D)),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// `assert!` inside `proptest!` bodies (no shrinking, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any_stay_in_domain(
            x in 10u64..20,
            y in -3i16..=3,
            flag in any::<bool>(),
            v in collection::vec((0u64..100, any::<bool>()), 1..8),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            let _ = flag;
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&(n, _)| n < 100));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 0usize..4) {
            prop_assert!(n < 4);
        }
    }

    #[test]
    fn exact_vec_size_is_respected() {
        let strat = collection::vec(-4i16..=4, 64usize);
        let mut rng = TestRng::new(9);
        let v = strat.generate(&mut rng);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&c| (-4..=4).contains(&c)));
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, any::<bool>());
        let a: Vec<_> = {
            let mut rng = TestRng::new(1);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(1);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
