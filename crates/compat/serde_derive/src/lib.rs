//! No-op derive macros backing the in-tree `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types for API
//! compatibility with downstream users, but nothing in-tree performs real
//! serialisation (the experiments JSON emitter is hand-rolled), so these
//! derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the `Serialize` marker trait has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `Deserialize` marker trait has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
