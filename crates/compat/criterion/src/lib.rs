//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Benchmarks compile and run with `cargo bench` and print mean
//! wall-clock per iteration (plus throughput when configured). There is
//! no statistical analysis, no HTML report, and no baseline comparison —
//! just honest timing for tracking relative changes.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name with an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only identifier.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

/// Iterations to aim a measurement batch at, from a one-iteration probe.
fn planned_iters(probe: Duration, budget: Duration) -> u64 {
    let per_iter = probe.as_nanos().max(1);
    (budget.as_nanos() / per_iter).clamp(1, 1_000_000) as u64
}

impl Bencher {
    /// Times `routine`, storing mean wall-clock per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up/probe iteration sizes the measurement batch.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed();
        let iters = planned_iters(probe, Duration::from_millis(500));
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 * 1e9 / mean_ns)
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12}/iter{rate}", human_time(mean_ns));
}

/// Top-level benchmark driver (upstream: `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.id, b.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name, throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for upstream compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for upstream compatibility; the time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(2)).sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with", "input"), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn planning_is_bounded() {
        assert_eq!(planned_iters(Duration::from_secs(10), Duration::from_millis(500)), 1);
        assert_eq!(
            planned_iters(Duration::from_nanos(0), Duration::from_millis(500)),
            1_000_000
        );
    }
}
