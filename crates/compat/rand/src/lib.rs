//! Offline stand-in for the slice of `rand` 0.8 used by this workspace.
//!
//! API-compatible with the upstream names (`Rng`, `SeedableRng`, `RngCore`,
//! `rngs::StdRng`, `rngs::mock::StepRng`) but *not* stream-compatible:
//! `StdRng` is xoshiro256++ seeded via SplitMix64 rather than ChaCha12.
//! Every checked-in expected value in this repository was produced with
//! this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 exactly
    /// like upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64_next(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence, advancing `state`.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard uniform distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling. The generic [`SampleRange`] impls
/// below dispatch through this, which (as upstream) lets integer-literal
/// ranges infer their type from the call site (e.g. when indexing).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Integer uniform sampling via 128-bit widening multiply.
macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let v = low + unit_f64(rng.next_u64()) * (high - low);
        // Guard against floating-point rounding landing on the excluded end.
        if v >= high { low } else { v }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let v = low + f32::sample_standard(rng) * (high - low);
        if v >= high { low } else { v }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64_next, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna). Deterministic, fast, and statistically strong; **not**
    /// stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; SplitMix64 expansion
            // of any u64 seed never produces one, but guard the raw path.
            if s == [0; 4] {
                let mut sm = 0x9e37_79b9_7f4a_7c15;
                for lane in &mut s {
                    *lane = splitmix64_next(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result =
                s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-sequence "generator": yields `initial`,
        /// `initial + increment`, … (wrapping). Only useful for tests that
        /// need a fixed, transparent bit stream.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            a: u64,
        }

        impl StepRng {
            /// Creates the generator with the given start and increment.
            #[must_use]
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, a: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.a);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Full-width inclusive range must not overflow.
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(0usize..4)] += 1;
        }
        for &n in &counts {
            assert!((9_000..11_000).contains(&n), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((29_000..31_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(5, 3);
        assert_eq!([r.next_u64(), r.next_u64(), r.next_u64()], [5, 8, 11]);
    }

    #[test]
    fn works_through_unsized_references() {
        fn sum_of<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100) + u64::from(rng.gen_bool(0.5))
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = sum_of(&mut r);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = dynr.next_u64();
    }
}
