//! Offline stand-in for the `serde` derive surface this workspace uses.
//!
//! Model types derive `Serialize`/`Deserialize` so the public API matches
//! what downstream users expect from the real crate, but nothing in-tree
//! serialises through serde (the experiments JSON output is hand-rolled).
//! The traits are therefore markers with blanket impls, and the derives
//! (re-exported from the in-tree `serde_derive`) expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
