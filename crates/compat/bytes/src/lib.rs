//! Offline stand-in for the slice of the `bytes` crate this workspace
//! uses: immutable [`Bytes`], growable [`BytesMut`], and the
//! [`BufMut::put_u8`] writer method.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data.into() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Byte-sink write methods.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.clone(), frozen);
        assert!(!frozen.is_empty());
    }

    #[test]
    fn conversions() {
        let b: Bytes = vec![9, 9].into();
        assert_eq!(b.as_ref(), &[9, 9]);
        assert_eq!(Bytes::copy_from_slice(&[1]).len(), 1);
        assert!(Bytes::new().is_empty());
        assert!(BytesMut::new().is_empty());
    }
}
