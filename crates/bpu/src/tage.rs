//! A TAGE-style predictor (Seznec & Michaud) — a first-class predictor
//! backend (wrapped by [`TageBackend`](crate::TageBackend)).
//!
//! The paper attacks a bimodal+gshare hybrid, but notes modern predictors
//! are "complex hybrid predictors with unknown organization" (§1). TAGE is
//! the canonical modern design: a base bimodal table plus several *tagged*
//! tables indexed with geometrically growing history lengths; the longest
//! matching tagged entry provides the prediction and new branches fall back
//! to the base table.
//!
//! That fallback is exactly the property BranchScope exploits in the
//! hybrid: a branch the tagged tables have never seen is predicted by a
//! simply-indexed per-address counter. Two mechanisms make the fallback
//! reachable to an attacker in practice:
//!
//! 1. **Weak entries do not provide** (Seznec's *use-alt-on-na*): a
//!    newly-allocated tagged entry starts at one of the two centre counter
//!    values, and a weak provider is skipped in favour of the alternate
//!    prediction — ultimately the base table. A freshly primed base
//!    counter therefore keeps answering probes even after the attack's
//!    own branches allocate tagged entries for the target.
//! 2. **The tagged index hash is XOR-linear in the PC**, so a spy can
//!    compute (offline, the paper's §6.2 "one-time effort" collision
//!    search extended to the tagged tables) an *alias family* of
//!    addresses that collide with the target's slot in every tagged
//!    component while missing its base-table slot — bursts of alias
//!    branches evict stale confident tagged entries that would otherwise
//!    shadow the base table.
//!
//! The tests in this module (and the `ablation_substrate_throughput`
//! bench) document that the attack's prime/probe FSM reasoning carries
//! over to a TAGE base table, which is why hiding behind "a more complex
//! predictor" is not by itself a defense.
//! The full simulated stack can run on this substrate — build cores with
//! [`BackendKind::Tage`](crate::BackendKind) or pass `--bpu tage` to the
//! experiments binary (the `backend_sweep` experiment measures the live
//! attack against it).

use crate::counter::Outcome;
use crate::ghr::GlobalHistoryRegister;
use crate::VirtAddr;

/// One entry of a tagged TAGE component.
#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit prediction counter: ≥0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness counter guarding replacement.
    useful: u8,
}

/// One tagged component table.
#[derive(Debug, Clone)]
struct TageTable {
    entries: Vec<TageEntry>,
    history_len: u32,
    mask: u64,
}

impl TageTable {
    fn fold_history(&self, ghr: &GlobalHistoryRegister) -> u64 {
        // Fold the most recent `history_len` bits into the index width.
        let hist = ghr.value() & if self.history_len >= 64 { u64::MAX } else { (1 << self.history_len) - 1 };
        let width = self.mask.count_ones().max(1);
        let mut folded = 0u64;
        let mut rest = hist;
        while rest != 0 {
            folded ^= rest & self.mask;
            rest >>= width;
        }
        folded
    }

    fn index(&self, pc: VirtAddr, ghr: &GlobalHistoryRegister) -> usize {
        ((pc ^ (pc >> 7) ^ self.fold_history(ghr)) & self.mask) as usize
    }

    fn tag(&self, pc: VirtAddr, ghr: &GlobalHistoryRegister) -> u16 {
        // A different hash than the index so aliasing sets have distinct tags.
        (((pc >> 3) ^ pc ^ self.fold_history(ghr).rotate_left(5)) & 0x3ff) as u16
    }
}

/// Result of a TAGE lookup (exposed for tests and analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePrediction {
    /// Predicted direction.
    pub direction: Outcome,
    /// Index of the providing tagged table (`None` = base bimodal table).
    pub provider: Option<usize>,
}

/// A TAGE predictor with a bimodal base table and `N` tagged components
/// over geometrically increasing history lengths.
///
/// ```
/// use bscope_bpu::{GlobalHistoryRegister, Outcome, TagePredictor};
///
/// let mut ghr = GlobalHistoryRegister::new(64);
/// let mut tage = TagePredictor::new(1_024, 4, 42);
/// for _ in 0..8 {
///     tage.execute(0x40_0000, &mut ghr, Outcome::Taken);
/// }
/// assert_eq!(tage.predict(0x40_0000, &ghr).direction, Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct TagePredictor {
    /// Base table: 2-bit counters indexed by address (the BranchScope
    /// target surface).
    base: Vec<u8>,
    base_mask: u64,
    tables: Vec<TageTable>,
    /// Simple LFSR state for allocation randomisation.
    lfsr: u64,
}

impl TagePredictor {
    /// Builds a TAGE predictor: a `base_size`-entry base table and
    /// `components` tagged tables of the same size with history lengths
    /// 4, 8, 16, … (geometric, ratio 2).
    ///
    /// # Panics
    ///
    /// Panics if `base_size` is not a power of two or `components == 0`.
    #[must_use]
    pub fn new(base_size: usize, components: usize, seed: u64) -> Self {
        assert!(base_size.is_power_of_two(), "base size must be a power of two");
        assert!(components > 0, "need at least one tagged component");
        let tables = (0..components)
            .map(|i| TageTable {
                entries: vec![TageEntry::default(); base_size],
                history_len: 4 << i,
                mask: (base_size - 1) as u64,
            })
            .collect();
        TagePredictor {
            base: vec![1; base_size], // weakly not-taken
            base_mask: (base_size - 1) as u64,
            tables,
            lfsr: seed | 1,
        }
    }

    /// Number of tagged components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.tables.len()
    }

    /// Base-table index for `pc` — address-only, byte-granular, exactly
    /// like the hybrid's bimodal PHT.
    #[must_use]
    pub fn base_index(&self, pc: VirtAddr) -> usize {
        (pc & self.base_mask) as usize
    }

    /// Raw base-table counter (0–3) for `pc`.
    #[must_use]
    pub fn base_counter(&self, pc: VirtAddr) -> u8 {
        self.base[self.base_index(pc)]
    }

    /// Forces the base-table counter for `pc` (clamped to 0–3) — the
    /// ground-truth hook backing
    /// [`DirectionPredictor::set_pht_state`](crate::DirectionPredictor::set_pht_state).
    pub fn set_base_counter(&mut self, pc: VirtAddr, counter: u8) {
        let idx = self.base_index(pc);
        self.base[idx] = counter.min(3);
    }

    /// Whether a tagged counter is *weak* (newly allocated or untrained):
    /// the two centre values of the signed 3-bit counter, which is exactly
    /// where [`TagePredictor::train`]'s allocation places new entries.
    fn is_weak(ctr: i8) -> bool {
        ctr == 0 || ctr == -1
    }

    /// Longest tagged component whose entry matches `pc` under `ghr`,
    /// regardless of confidence (the raw *hit*, trained on every commit).
    fn hit(&self, pc: VirtAddr, ghr: &GlobalHistoryRegister) -> Option<usize> {
        (0..self.tables.len()).rev().find(|&i| {
            let t = &self.tables[i];
            t.entries[t.index(pc, ghr)].tag == t.tag(pc, ghr)
        })
    }

    /// Looks up the prediction for `pc` under history `ghr`.
    ///
    /// Weak (newly-allocated) tagged entries do not provide: real TAGE
    /// consults the alternate prediction when the longest match has low
    /// confidence (Seznec's *use-alt-on-na* policy), so the walk skips weak
    /// matches down to the first confident component, falling back to the
    /// bimodal base table. A tagged entry must survive long enough to train
    /// to confidence before it takes over from the base — the property the
    /// BranchScope attacker leans on (see the module doc).
    #[must_use]
    pub fn predict(&self, pc: VirtAddr, ghr: &GlobalHistoryRegister) -> TagePrediction {
        for i in (0..self.tables.len()).rev() {
            let t = &self.tables[i];
            let e = t.entries[t.index(pc, ghr)];
            if e.tag == t.tag(pc, ghr) && !Self::is_weak(e.ctr) {
                return TagePrediction {
                    direction: Outcome::from_bool(e.ctr >= 0),
                    provider: Some(i),
                };
            }
        }
        TagePrediction {
            direction: Outcome::from_bool(self.base[self.base_index(pc)] >= 2),
            provider: None,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        self.lfsr
    }

    /// Commits one resolved branch: trains the longest matching tagged
    /// entry (and the base table when that entry was weak and the alternate
    /// provided — see [`TagePredictor::predict`]) and allocates a
    /// longer-history entry on an effective misprediction.
    pub fn train(&mut self, pc: VirtAddr, ghr: &GlobalHistoryRegister, outcome: Outcome) {
        let correct = self.predict(pc, ghr).direction == outcome;
        let hit = self.hit(pc, ghr);
        let mut train_base = hit.is_none();
        if let Some(i) = hit {
            let idx = self.tables[i].index(pc, ghr);
            let e = &mut self.tables[i].entries[idx];
            // The alternate (here: the base) supplied the prediction while
            // this entry was weak, so the base keeps training too — the
            // entry only takes the branch over once it reaches confidence.
            train_base = Self::is_weak(e.ctr);
            let own_correct = Outcome::from_bool(e.ctr >= 0) == outcome;
            e.ctr = (e.ctr + if outcome.is_taken() { 1 } else { -1 }).clamp(-4, 3);
            if own_correct {
                e.useful = (e.useful + 1).min(3);
            } else {
                e.useful = e.useful.saturating_sub(1);
            }
        }
        if train_base {
            let idx = self.base_index(pc);
            let c = &mut self.base[idx];
            *c = if outcome.is_taken() { (*c + 1).min(3) } else { c.saturating_sub(1) };
        }
        // On a misprediction, try to allocate an entry in a longer-history
        // component (classic TAGE allocation with usefulness guard). New
        // entries start weak, so they shadow nothing until trained.
        if !correct {
            let start = hit.map_or(0, |i| i + 1);
            if start < self.tables.len() {
                let pick = start + (self.next_rand() as usize) % (self.tables.len() - start);
                let (idx, tag) = {
                    let t = &self.tables[pick];
                    (t.index(pc, ghr), t.tag(pc, ghr))
                };
                let e = &mut self.tables[pick].entries[idx];
                if e.useful == 0 {
                    *e = TageEntry { tag, ctr: if outcome.is_taken() { 0 } else { -1 }, useful: 0 };
                } else {
                    e.useful -= 1;
                }
            }
        }
    }

    /// Predict, train and shift the outcome into the history — one dynamic
    /// branch. Returns whether the prediction was correct.
    pub fn execute(
        &mut self,
        pc: VirtAddr,
        ghr: &mut GlobalHistoryRegister,
        outcome: Outcome,
    ) -> bool {
        let prediction = self.predict(pc, ghr);
        self.train(pc, ghr, outcome);
        ghr.push(outcome);
        prediction.direction == outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (TagePredictor, GlobalHistoryRegister) {
        (TagePredictor::new(1_024, 4, 99), GlobalHistoryRegister::new(64))
    }

    #[test]
    fn new_branches_use_the_base_table() {
        let (tage, ghr) = fresh();
        assert_eq!(tage.predict(0x40_006d, &ghr).provider, None, "cold branch → base table");
    }

    #[test]
    fn biased_branch_converges() {
        let (mut tage, mut ghr) = fresh();
        for _ in 0..6 {
            tage.execute(0x123, &mut ghr, Outcome::Taken);
        }
        assert_eq!(tage.predict(0x123, &ghr).direction, Outcome::Taken);
    }

    #[test]
    fn learns_alternation_beyond_the_base_table() {
        let (mut tage, mut ghr) = fresh();
        let mut outcome = Outcome::Taken;
        for _ in 0..600 {
            tage.execute(0x55, &mut ghr, outcome);
            outcome = outcome.flipped();
        }
        let mut correct = 0;
        for _ in 0..100 {
            if tage.execute(0x55, &mut ghr, outcome) {
                correct += 1;
            }
            outcome = outcome.flipped();
        }
        assert!(correct >= 90, "tagged tables should master T/N alternation: {correct}/100");
    }

    /// The BranchScope premise survives TAGE: for a branch the tagged
    /// tables have never seen (fresh tags), the base table — indexed purely
    /// by address — behaves exactly like the hybrid's bimodal PHT, so the
    /// paper's prime (saturate) → victim (one update) → probe (two reads)
    /// reasoning still applies.
    #[test]
    fn branchscope_fsm_reasoning_holds_on_the_base_table() {
        let (mut tage, mut ghr) = fresh();
        let addr = 0x30_0000u64;
        // The attacker scrambles the global history between every step, so
        // any tagged entry a misprediction allocates is allocated under a
        // history context that never recurs — the probes always fall back
        // to the address-indexed base table.
        let scramble = |tage: &mut TagePredictor, ghr: &mut GlobalHistoryRegister, k: u64| {
            for i in 0..24u64 {
                tage.execute(0x7a_0000 + k * 131 + i * 3, ghr, Outcome::from_bool((k + i).is_multiple_of(3)));
            }
        };
        // Prime: drive the base counter to strongly not-taken.
        for k in 0..3 {
            scramble(&mut tage, &mut ghr, k);
            tage.train(addr, &ghr, Outcome::NotTaken);
        }
        assert_eq!(tage.base_counter(addr), 0, "SN");
        // Victim: one taken execution (under yet another history).
        scramble(&mut tage, &mut ghr, 10);
        tage.train(addr, &ghr, Outcome::Taken);
        assert_eq!(tage.base_counter(addr), 1, "WN — the victim's direction is encoded");
        // Probe: two taken reads observe M then H — Table 1's MH row.
        scramble(&mut tage, &mut ghr, 20);
        let first = tage.predict(addr, &ghr).provider.is_none()
            && tage.predict(addr, &ghr).direction == Outcome::Taken;
        tage.train(addr, &ghr, Outcome::Taken);
        scramble(&mut tage, &mut ghr, 30);
        let second = tage.predict(addr, &ghr).provider.is_none()
            && tage.predict(addr, &ghr).direction == Outcome::Taken;
        assert!(!first && second, "MH signature survives on the TAGE base table");
    }

    #[test]
    fn cross_address_collision_in_base_table() {
        // Same-index addresses collide in the base table — the attack's
        // collision primitive carries over. (The first misprediction also
        // allocates a tagged entry, which diverts *same-history* training,
        // so saturate under changing histories as a real program would.)
        let (mut tage, mut ghr) = fresh();
        for _ in 0..6 {
            tage.train(0x777, &ghr, Outcome::Taken);
            ghr.push(Outcome::Taken);
        }
        assert!(tage.base_counter(0x777 + 1_024) >= 2, "alias sees a taken-leaning counter");
        let mut fresh_hist = GlobalHistoryRegister::new(64);
        fresh_hist.scramble(&mut rand::rngs::mock::StepRng::new(0x9e3779b97f4a7c15, 0x517c_c1b7_2722_0a95));
        // Under an unrelated history, the alias reads the base table.
        let p = tage.predict(0x777 + 1_024, &fresh_hist);
        if p.provider.is_none() {
            assert_eq!(p.direction, Outcome::Taken);
        }
    }

    #[test]
    fn allocation_respects_usefulness() {
        let (mut tage, mut ghr) = fresh();
        // Repeated mispredictions allocate tagged entries eventually.
        let mut outcome = Outcome::Taken;
        for _ in 0..64 {
            tage.execute(0x99, &mut ghr, outcome);
            outcome = outcome.flipped();
        }
        let provided = tage.predict(0x99, &ghr).provider;
        assert!(provided.is_some(), "an unpredictable branch must get a tagged entry");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = TagePredictor::new(1_000, 4, 1);
    }
}
