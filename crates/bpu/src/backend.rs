//! Predictor-backend abstraction: the surface the simulated core needs
//! from *any* directional predictor, plus concrete backends for the three
//! substrates in this crate (hybrid, TAGE, perceptron).
//!
//! The paper attacks a bimodal+gshare hybrid but notes modern CPUs use
//! "complex hybrid predictors with unknown organization" (§1), and
//! follow-on work shows directional-predictor leakage generalises beyond
//! that organisation. The [`DirectionPredictor`] trait captures the
//! behavioural contract the rest of the stack (core, OS, attack,
//! mitigations, experiments) actually relies on — predict, commit, history
//! and BTB access, PHT-entry inspection for probe decoding, and the
//! geometry/profile queries the attacker's priming code sizes itself with —
//! so every layer above `bscope-bpu` runs unchanged on any substrate.
//!
//! Dispatch is static: the sealed [`PredictorBackend`] enum wraps the three
//! implementations and is what [`SimCore`](../../uarch) stores. The trait
//! exists to *formalise* the contract (and to let property tests drive a
//! trait object against a directly-driven predictor); the enum keeps the
//! hot `execute` path monomorphic and the core/system types free of
//! generic parameters, `Debug`, and `Clone`. A `Box<dyn DirectionPredictor>`
//! field would have worked too, but would cost a vtable call per simulated
//! branch on the hottest path in the repository and would lose `Clone`.
//!
//! TAGE and the perceptron have no BTB, chooser, or statistics of their
//! own; [`BackendCommon`] supplies the shared BTB/GHR/stats plumbing so
//! both expose the same front-end surface the hybrid does.

use crate::btb::BranchTargetBuffer;
use crate::counter::{CounterKind, Outcome, PhtState};
use crate::ghr::GlobalHistoryRegister;
use crate::hybrid::{HybridPredictor, Prediction, PredictorKind};
use crate::perceptron::PerceptronPredictor;
use crate::profile::MicroarchProfile;
use crate::stats::PredictionStats;
use crate::tage::TagePredictor;
use crate::VirtAddr;
use std::fmt;
use std::str::FromStr;

/// Deterministic seed for the TAGE allocation LFSR. Allocation randomness
/// is microarchitectural state, not experiment randomness: it is fixed so
/// two cores built from the same profile start bit-identical, exactly like
/// the hybrid's power-on state.
const TAGE_ALLOC_SEED: u64 = 0x7A6E_5EED;

/// Tagged components of the TAGE backend (history lengths 4, 8, 16, 32).
const TAGE_COMPONENTS: usize = 4;

/// The behavioural contract between a directional predictor and the
/// simulated core.
///
/// Everything `SimCore` and the layers above it need is here:
///
/// * the **front-end path**: [`predict`](DirectionPredictor::predict) /
///   [`update`](DirectionPredictor::update) /
///   [`execute`](DirectionPredictor::execute);
/// * **probe-decoding state**: [`pht_state`](DirectionPredictor::pht_state)
///   reads the per-address saturating-FSM state the attack primes and
///   probes (each backend documents how its state maps onto the four
///   [`PhtState`]s);
/// * **shared front-end structures**: the GHR and BTB, which exist on every
///   backend (via [`BackendCommon`] where the substrate lacks its own);
/// * **geometry/profile queries**: [`profile`](DirectionPredictor::profile)
///   returns the *effective* profile — table sizes and counter flavour as
///   the attacker's priming/decoding code should size itself, which for
///   non-hybrid backends means a normalised counter kind (see
///   [`BackendKind::build`]).
pub trait DirectionPredictor {
    /// The effective microarchitecture profile of this backend.
    fn profile(&self) -> &MicroarchProfile;

    /// Produces the front-end prediction for the branch at `addr`.
    fn predict(&self, addr: VirtAddr) -> Prediction;

    /// Commits a resolved branch. `prediction` must be the value returned
    /// by [`DirectionPredictor::predict`] for this same dynamic branch.
    fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    );

    /// Predicts and immediately commits one dynamic branch, returning the
    /// prediction and whether it was correct (the simulation fast path).
    fn execute(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> (Prediction, bool) {
        let prediction = self.predict(addr);
        self.update(addr, outcome, target, &prediction);
        (prediction, prediction.direction == outcome)
    }

    /// Architectural state of the address-indexed PHT entry for `addr` —
    /// the state BranchScope primes and probes. For the hybrid this is the
    /// bimodal PHT entry; for TAGE the base-table counter; the perceptron
    /// synthesises a state from its bias weight (see [`PerceptronBackend`]).
    fn pht_state(&self, addr: VirtAddr) -> PhtState;

    /// Forces the address-indexed PHT entry for `addr` into `state`
    /// (ground-truth hook for experiments and tests).
    fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState);

    /// Read access to the global history register.
    fn ghr(&self) -> &GlobalHistoryRegister;

    /// Exclusive access to the global history register.
    fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister;

    /// Read access to the branch target buffer.
    fn btb(&self) -> &BranchTargetBuffer;

    /// Exclusive access to the branch target buffer.
    fn btb_mut(&mut self) -> &mut BranchTargetBuffer;

    /// Cumulative prediction statistics.
    fn stats(&self) -> PredictionStats;

    /// Resets the statistics counters (predictor state is untouched).
    fn reset_stats(&mut self);

    /// Resets all predictor state to power-on defaults.
    fn reset(&mut self);
}

impl DirectionPredictor for HybridPredictor {
    fn profile(&self) -> &MicroarchProfile {
        HybridPredictor::profile(self)
    }

    fn predict(&self, addr: VirtAddr) -> Prediction {
        HybridPredictor::predict(self, addr)
    }

    fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        HybridPredictor::update(self, addr, outcome, target, prediction);
    }

    fn execute(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> (Prediction, bool) {
        HybridPredictor::execute(self, addr, outcome, target)
    }

    fn pht_state(&self, addr: VirtAddr) -> PhtState {
        self.bimodal_state(addr)
    }

    fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState) {
        self.bimodal_mut().set_state(addr, state);
    }

    fn ghr(&self) -> &GlobalHistoryRegister {
        HybridPredictor::ghr(self)
    }

    fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        HybridPredictor::ghr_mut(self)
    }

    fn btb(&self) -> &BranchTargetBuffer {
        HybridPredictor::btb(self)
    }

    fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        HybridPredictor::btb_mut(self)
    }

    fn stats(&self) -> PredictionStats {
        HybridPredictor::stats(self)
    }

    fn reset_stats(&mut self) {
        HybridPredictor::reset_stats(self);
    }

    fn reset(&mut self) {
        HybridPredictor::reset(self);
    }
}

/// Front-end plumbing every backend needs but the bare TAGE / perceptron
/// models lack: the effective profile, the global history register, the
/// branch target buffer, and prediction statistics.
///
/// The BTB plays the same role as in the hybrid: presence drives the
/// "recently seen taken" signal, taken branches install entries with the
/// `addr + 2` fall-through convention, and BTB-alias eviction (the
/// attacker's stage-1 trick) works identically.
#[derive(Debug, Clone)]
pub struct BackendCommon {
    profile: MicroarchProfile,
    ghr: GlobalHistoryRegister,
    btb: BranchTargetBuffer,
    stats: PredictionStats,
}

impl BackendCommon {
    /// Builds the shared plumbing for an (already normalised) profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`MicroarchProfile::validate`].
    #[must_use]
    pub fn new(profile: MicroarchProfile) -> Self {
        profile.validate().expect("invalid microarchitecture profile");
        BackendCommon {
            ghr: GlobalHistoryRegister::new(profile.ghr_bits),
            btb: BranchTargetBuffer::new(profile.btb_size),
            stats: PredictionStats::new(),
            profile,
        }
    }

    /// The effective profile.
    #[must_use]
    pub fn profile(&self) -> &MicroarchProfile {
        &self.profile
    }

    /// BTB lookup for the predict path: `(btb_hit, predicted_target)`.
    fn lookup(&self, addr: VirtAddr, direction: Outcome) -> (bool, Option<VirtAddr>) {
        let target = self.btb.lookup(addr);
        (target.is_some(), if direction.is_taken() { target } else { None })
    }

    /// Commit-path bookkeeping shared by all non-hybrid backends: shifts
    /// the outcome into the GHR, installs the BTB entry for taken branches
    /// (fall-through convention `addr + 2`), and records statistics.
    fn commit(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        self.ghr.push(outcome);
        if outcome.is_taken() {
            self.btb.insert(addr, target.unwrap_or(addr + 2));
        }
        self.stats
            .record(prediction.used == PredictorKind::Gshare, prediction.direction != outcome);
    }
}

/// TAGE base-table counter (0–3) to the equivalent PHT FSM state.
fn base_counter_state(counter: u8) -> PhtState {
    match counter {
        0 => PhtState::StronglyNotTaken,
        1 => PhtState::WeaklyNotTaken,
        2 => PhtState::WeaklyTaken,
        _ => PhtState::StronglyTaken,
    }
}

/// Inverse of [`base_counter_state`].
fn state_base_counter(state: PhtState) -> u8 {
    match state {
        PhtState::StronglyNotTaken => 0,
        PhtState::WeaklyNotTaken => 1,
        PhtState::WeaklyTaken => 2,
        PhtState::StronglyTaken => 3,
    }
}

/// A [`TagePredictor`] dressed as a full predictor backend.
///
/// The base table is sized like the profile's PHT and indexed purely by
/// address, so it *is* a bimodal PHT of 2-bit counters — which is why the
/// effective profile reports [`CounterKind::TwoBit`] regardless of the
/// machine's native flavour, and why [`pht_state`](DirectionPredictor::pht_state)
/// maps base counters straight onto the four FSM states. The attack
/// surface survives: under the attacker's scrambled histories, tagged
/// entries are allocated in contexts that never recur, so probes fall back
/// to the address-indexed base table (see the `tage` module doc and its
/// `branchscope_fsm_reasoning_holds_on_the_base_table` test).
///
/// Prediction mapping: the base-table direction reports as the `bimodal`
/// component; the final TAGE direction as `gshare`; `used` is `Gshare`
/// exactly when a tagged (history-indexed) component provided the
/// prediction.
#[derive(Debug, Clone)]
pub struct TageBackend {
    common: BackendCommon,
    tage: TagePredictor,
}

impl TageBackend {
    /// Builds a TAGE backend for a machine profile. The stored profile is
    /// normalised: 2-bit counters (the base-table flavour) and a 64-bit
    /// GHR (room for the longest tagged history).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`MicroarchProfile::validate`].
    #[must_use]
    pub fn new(profile: MicroarchProfile) -> Self {
        let mut effective = profile;
        effective.counter_kind = CounterKind::TwoBit;
        effective.ghr_bits = 64;
        let tage = TagePredictor::new(effective.pht_size, TAGE_COMPONENTS, TAGE_ALLOC_SEED);
        TageBackend { common: BackendCommon::new(effective), tage }
    }

    /// The wrapped TAGE model.
    #[must_use]
    pub fn tage(&self) -> &TagePredictor {
        &self.tage
    }
}

impl DirectionPredictor for TageBackend {
    fn profile(&self) -> &MicroarchProfile {
        self.common.profile()
    }

    fn predict(&self, addr: VirtAddr) -> Prediction {
        let tage = self.tage.predict(addr, &self.common.ghr);
        let base = Outcome::from_bool(self.tage.base_counter(addr) >= 2);
        let (btb_hit, target) = self.common.lookup(addr, tage.direction);
        Prediction {
            direction: tage.direction,
            used: if tage.provider.is_some() { PredictorKind::Gshare } else { PredictorKind::Bimodal },
            bimodal: base,
            gshare: tage.direction,
            btb_hit,
            target,
        }
    }

    fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        self.tage.train(addr, &self.common.ghr, outcome);
        self.common.commit(addr, outcome, target, prediction);
    }

    fn pht_state(&self, addr: VirtAddr) -> PhtState {
        base_counter_state(self.tage.base_counter(addr))
    }

    fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState) {
        self.tage.set_base_counter(addr, state_base_counter(state));
    }

    fn ghr(&self) -> &GlobalHistoryRegister {
        &self.common.ghr
    }

    fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        &mut self.common.ghr
    }

    fn btb(&self) -> &BranchTargetBuffer {
        &self.common.btb
    }

    fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        &mut self.common.btb
    }

    fn stats(&self) -> PredictionStats {
        self.common.stats
    }

    fn reset_stats(&mut self) {
        self.common.stats.reset();
    }

    fn reset(&mut self) {
        *self = TageBackend::new(self.common.profile.clone());
    }
}

/// A [`PerceptronPredictor`] dressed as a full predictor backend.
///
/// There is no saturating counter here — the per-entry state is a weight
/// vector dotted with the history — which is exactly the ablation the
/// backend exists for: BranchScope's prime (saturate an FSM) → victim (one
/// transition) → probe (read it back) strategy presumes small per-address
/// FSM state, and on this substrate a single victim execution nudges one
/// weight by ±1, far below the decision threshold. The expected headline
/// is attack error collapsing toward coin-flipping (see the
/// `backend_sweep` experiment).
///
/// [`pht_state`](DirectionPredictor::pht_state) synthesises a state from
/// the entry's history-independent *bias* weight (`≤ −2` ⇒ SN, `−1` ⇒ WN,
/// `0..=1` ⇒ WT, `≥ 2` ⇒ ST — zero predicts taken, matching the
/// perceptron's `y ≥ 0` rule); `set_pht_state` writes the representative
/// bias and zeroes the history weights. This is a best-effort view for
/// ground-truth instrumentation, not a claim the attack can decode it.
///
/// Prediction mapping: the perceptron is history-driven, so its direction
/// reports as both components with `used = Gshare`.
#[derive(Debug, Clone)]
pub struct PerceptronBackend {
    common: BackendCommon,
    perceptron: PerceptronPredictor,
}

impl PerceptronBackend {
    /// Builds a perceptron backend for a machine profile (one perceptron
    /// per PHT entry, history length = the profile's GHR width). The
    /// stored profile normalises the counter kind to
    /// [`CounterKind::TwoBit`] so decode dictionaries stay constructible.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`MicroarchProfile::validate`].
    #[must_use]
    pub fn new(profile: MicroarchProfile) -> Self {
        let mut effective = profile;
        effective.counter_kind = CounterKind::TwoBit;
        let perceptron = PerceptronPredictor::new(effective.pht_size, effective.ghr_bits);
        PerceptronBackend { common: BackendCommon::new(effective), perceptron }
    }

    /// The wrapped perceptron model.
    #[must_use]
    pub fn perceptron(&self) -> &PerceptronPredictor {
        &self.perceptron
    }
}

impl DirectionPredictor for PerceptronBackend {
    fn profile(&self) -> &MicroarchProfile {
        self.common.profile()
    }

    fn predict(&self, addr: VirtAddr) -> Prediction {
        let direction = self.perceptron.predict(addr, &self.common.ghr);
        let (btb_hit, target) = self.common.lookup(addr, direction);
        Prediction {
            direction,
            used: PredictorKind::Gshare,
            bimodal: direction,
            gshare: direction,
            btb_hit,
            target,
        }
    }

    fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        self.perceptron.train(addr, &self.common.ghr, outcome);
        self.common.commit(addr, outcome, target, prediction);
    }

    fn pht_state(&self, addr: VirtAddr) -> PhtState {
        match self.perceptron.bias(addr) {
            b if b <= -2 => PhtState::StronglyNotTaken,
            -1 => PhtState::WeaklyNotTaken,
            0 | 1 => PhtState::WeaklyTaken,
            _ => PhtState::StronglyTaken,
        }
    }

    fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState) {
        let bias = match state {
            PhtState::StronglyNotTaken => -2,
            PhtState::WeaklyNotTaken => -1,
            PhtState::WeaklyTaken => 0,
            PhtState::StronglyTaken => 2,
        };
        self.perceptron.set_entry(addr, bias);
    }

    fn ghr(&self) -> &GlobalHistoryRegister {
        &self.common.ghr
    }

    fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        &mut self.common.ghr
    }

    fn btb(&self) -> &BranchTargetBuffer {
        &self.common.btb
    }

    fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        &mut self.common.btb
    }

    fn stats(&self) -> PredictionStats {
        self.common.stats
    }

    fn reset_stats(&mut self) {
        self.common.stats.reset();
    }

    fn reset(&mut self) {
        *self = PerceptronBackend::new(self.common.profile.clone());
    }
}

/// Which predictor substrate to build — the user-facing backend selector
/// (`--bpu hybrid|tage|perceptron` in the experiments CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The paper's bimodal+gshare hybrid (Figure 1) — the default.
    #[default]
    Hybrid,
    /// TAGE: base bimodal table + tagged geometric-history tables.
    Tage,
    /// Perceptron: per-entry weight vectors over global history.
    Perceptron,
}

impl BackendKind {
    /// Every backend, in CLI/reporting order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Hybrid, BackendKind::Tage, BackendKind::Perceptron];

    /// The canonical lower-case name (also the `--bpu` spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Hybrid => "hybrid",
            BackendKind::Tage => "tage",
            BackendKind::Perceptron => "perceptron",
        }
    }

    /// Builds the backend for a machine profile.
    ///
    /// The hybrid uses the profile verbatim. TAGE and the perceptron store
    /// a *normalised* effective profile — most importantly
    /// `counter_kind = TwoBit`, since the TAGE base table is a 2-bit
    /// counter table and the perceptron's synthesised state view follows
    /// the same four-state FSM — so attacker code that sizes itself from
    /// `profile()` (priming, decode dictionaries) keeps working.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`MicroarchProfile::validate`].
    #[must_use]
    pub fn build(self, profile: MicroarchProfile) -> PredictorBackend {
        match self {
            BackendKind::Hybrid => PredictorBackend::Hybrid(HybridPredictor::new(profile)),
            BackendKind::Tage => PredictorBackend::Tage(TageBackend::new(profile)),
            BackendKind::Perceptron => {
                PredictorBackend::Perceptron(PerceptronBackend::new(profile))
            }
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hybrid" => Ok(BackendKind::Hybrid),
            "tage" => Ok(BackendKind::Tage),
            "perceptron" => Ok(BackendKind::Perceptron),
            other => Err(format!(
                "unknown backend '{other}' (expected hybrid, tage, or perceptron)"
            )),
        }
    }
}

/// The predictor substrate a simulated core runs on: one of the three
/// concrete backends behind static (match) dispatch.
///
/// Inherent methods mirror [`DirectionPredictor`] exactly, so callers can
/// use a core's backend without importing the trait; the trait impl simply
/// delegates.
#[derive(Debug, Clone)]
pub enum PredictorBackend {
    /// The paper's bimodal+gshare hybrid predictor.
    Hybrid(HybridPredictor),
    /// TAGE with the shared BTB/GHR/stats plumbing.
    Tage(TageBackend),
    /// Perceptron with the shared BTB/GHR/stats plumbing.
    Perceptron(PerceptronBackend),
}

/// Delegates one method call to whichever backend is active.
macro_rules! dispatch {
    ($self:expr, $bpu:ident => $body:expr) => {
        match $self {
            PredictorBackend::Hybrid($bpu) => $body,
            PredictorBackend::Tage($bpu) => $body,
            PredictorBackend::Perceptron($bpu) => $body,
        }
    };
}

impl PredictorBackend {
    /// Which substrate this is.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            PredictorBackend::Hybrid(_) => BackendKind::Hybrid,
            PredictorBackend::Tage(_) => BackendKind::Tage,
            PredictorBackend::Perceptron(_) => BackendKind::Perceptron,
        }
    }

    /// The hybrid predictor, if that is the active backend. Hybrid-only
    /// structures (the selector table, the separate gshare PHT) are reached
    /// through here; everything else is on the common surface.
    #[must_use]
    pub fn as_hybrid(&self) -> Option<&HybridPredictor> {
        match self {
            PredictorBackend::Hybrid(h) => Some(h),
            _ => None,
        }
    }

    /// Exclusive access to the hybrid predictor, if active.
    #[must_use]
    pub fn as_hybrid_mut(&mut self) -> Option<&mut HybridPredictor> {
        match self {
            PredictorBackend::Hybrid(h) => Some(h),
            _ => None,
        }
    }

    /// See [`DirectionPredictor::profile`].
    #[must_use]
    pub fn profile(&self) -> &MicroarchProfile {
        dispatch!(self, bpu => DirectionPredictor::profile(bpu))
    }

    /// See [`DirectionPredictor::predict`].
    #[must_use]
    pub fn predict(&self, addr: VirtAddr) -> Prediction {
        dispatch!(self, bpu => DirectionPredictor::predict(bpu, addr))
    }

    /// See [`DirectionPredictor::update`].
    pub fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        dispatch!(self, bpu => DirectionPredictor::update(bpu, addr, outcome, target, prediction));
    }

    /// See [`DirectionPredictor::execute`].
    pub fn execute(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> (Prediction, bool) {
        dispatch!(self, bpu => DirectionPredictor::execute(bpu, addr, outcome, target))
    }

    /// See [`DirectionPredictor::pht_state`].
    #[must_use]
    pub fn pht_state(&self, addr: VirtAddr) -> PhtState {
        dispatch!(self, bpu => DirectionPredictor::pht_state(bpu, addr))
    }

    /// See [`DirectionPredictor::set_pht_state`].
    pub fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState) {
        dispatch!(self, bpu => DirectionPredictor::set_pht_state(bpu, addr, state));
    }

    /// See [`DirectionPredictor::ghr`].
    #[must_use]
    pub fn ghr(&self) -> &GlobalHistoryRegister {
        dispatch!(self, bpu => DirectionPredictor::ghr(bpu))
    }

    /// See [`DirectionPredictor::ghr_mut`].
    #[must_use]
    pub fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        dispatch!(self, bpu => DirectionPredictor::ghr_mut(bpu))
    }

    /// See [`DirectionPredictor::btb`].
    #[must_use]
    pub fn btb(&self) -> &BranchTargetBuffer {
        dispatch!(self, bpu => DirectionPredictor::btb(bpu))
    }

    /// See [`DirectionPredictor::btb_mut`].
    #[must_use]
    pub fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        dispatch!(self, bpu => DirectionPredictor::btb_mut(bpu))
    }

    /// See [`DirectionPredictor::stats`].
    #[must_use]
    pub fn stats(&self) -> PredictionStats {
        dispatch!(self, bpu => DirectionPredictor::stats(bpu))
    }

    /// See [`DirectionPredictor::reset_stats`].
    pub fn reset_stats(&mut self) {
        dispatch!(self, bpu => DirectionPredictor::reset_stats(bpu));
    }

    /// See [`DirectionPredictor::reset`].
    pub fn reset(&mut self) {
        dispatch!(self, bpu => DirectionPredictor::reset(bpu));
    }
}

impl DirectionPredictor for PredictorBackend {
    fn profile(&self) -> &MicroarchProfile {
        PredictorBackend::profile(self)
    }

    fn predict(&self, addr: VirtAddr) -> Prediction {
        PredictorBackend::predict(self, addr)
    }

    fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        PredictorBackend::update(self, addr, outcome, target, prediction);
    }

    fn execute(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> (Prediction, bool) {
        PredictorBackend::execute(self, addr, outcome, target)
    }

    fn pht_state(&self, addr: VirtAddr) -> PhtState {
        PredictorBackend::pht_state(self, addr)
    }

    fn set_pht_state(&mut self, addr: VirtAddr, state: PhtState) {
        PredictorBackend::set_pht_state(self, addr, state);
    }

    fn ghr(&self) -> &GlobalHistoryRegister {
        PredictorBackend::ghr(self)
    }

    fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        PredictorBackend::ghr_mut(self)
    }

    fn btb(&self) -> &BranchTargetBuffer {
        PredictorBackend::btb(self)
    }

    fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        PredictorBackend::btb_mut(self)
    }

    fn stats(&self) -> PredictionStats {
        PredictorBackend::stats(self)
    }

    fn reset_stats(&mut self) {
        PredictorBackend::reset_stats(self);
    }

    fn reset(&mut self) {
        PredictorBackend::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Microarch;

    fn small_profile() -> MicroarchProfile {
        MicroarchProfile {
            arch: Microarch::Custom,
            pht_size: 1_024,
            counter_kind: CounterKind::SkylakeAsymmetric,
            ghr_bits: 10,
            selector_size: 256,
            btb_size: 256,
            timing: Default::default(),
        }
    }

    #[test]
    fn kind_round_trips_through_build_and_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.build(small_profile()).kind(), kind);
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = "btb".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("unknown backend 'btb'"), "{err}");
        assert!(err.contains("hybrid, tage, or perceptron"), "{err}");
        assert_eq!(BackendKind::default(), BackendKind::Hybrid);
    }

    #[test]
    fn hybrid_backend_keeps_the_profile_verbatim() {
        let backend = BackendKind::Hybrid.build(small_profile());
        assert_eq!(*backend.profile(), small_profile());
        assert!(backend.as_hybrid().is_some());
    }

    #[test]
    fn non_hybrid_backends_normalise_the_counter_kind() {
        for kind in [BackendKind::Tage, BackendKind::Perceptron] {
            let backend = kind.build(small_profile());
            assert_eq!(backend.profile().counter_kind, CounterKind::TwoBit, "{kind}");
            assert_eq!(backend.profile().pht_size, 1_024, "{kind}: geometry preserved");
            assert_eq!(backend.profile().btb_size, 256, "{kind}: geometry preserved");
            assert!(backend.as_hybrid().is_none(), "{kind}");
        }
    }

    #[test]
    fn every_backend_honours_the_front_end_contract() {
        for kind in BackendKind::ALL {
            let mut backend = kind.build(small_profile());
            // New branches miss the BTB; taken branches install an entry
            // with the fall-through convention.
            assert!(!backend.predict(0x5000).btb_hit, "{kind}");
            backend.execute(0x5000, Outcome::Taken, None);
            assert_eq!(backend.btb().lookup(0x5000), Some(0x5002), "{kind}");
            assert!(backend.predict(0x5000).btb_hit, "{kind}");
            // Not-taken branches do not install BTB entries.
            backend.execute(0x6000, Outcome::NotTaken, None);
            assert!(!backend.btb().contains(0x6000), "{kind}");
            // The GHR shifts on every commit; stats accumulate and reset.
            assert!(backend.ghr().value() != 0 || backend.stats().branches == 2, "{kind}");
            assert_eq!(backend.stats().branches, 2, "{kind}");
            backend.reset_stats();
            assert_eq!(backend.stats().branches, 0, "{kind}");
            // Reset restores power-on state.
            backend.reset();
            assert_eq!(backend.btb().occupancy(), 0, "{kind}");
            assert_eq!(backend.ghr().value(), 0, "{kind}");
        }
    }

    #[test]
    fn pht_state_round_trips_on_every_backend() {
        for kind in BackendKind::ALL {
            let mut backend = kind.build(small_profile());
            for state in [
                PhtState::StronglyNotTaken,
                PhtState::WeaklyNotTaken,
                PhtState::WeaklyTaken,
                PhtState::StronglyTaken,
            ] {
                backend.set_pht_state(0x6d, state);
                assert_eq!(backend.pht_state(0x6d), state, "{kind}");
            }
        }
    }

    #[test]
    fn saturation_primes_every_backend_to_a_strong_state() {
        // The attack's stage-1 saturation loop (max_level executions in one
        // direction) must leave every backend's address-indexed state
        // strongly biased — this is what TargetedPrime relies on.
        for kind in BackendKind::ALL {
            let mut backend = kind.build(small_profile());
            let steps = crate::Counter::new(backend.profile().counter_kind).max_level();
            for _ in 0..steps {
                backend.execute(0x6d, Outcome::NotTaken, None);
            }
            assert_eq!(backend.pht_state(0x6d), PhtState::StronglyNotTaken, "{kind}");
        }
    }

    #[test]
    fn tage_backend_probe_sequence_shows_the_mh_signature() {
        // End-to-end FSM reasoning on the backend surface (the module-level
        // argument from `tage.rs`, here through the trait): prime SN, one
        // taken victim execution, then two taken probes observe miss, hit.
        let mut backend = BackendKind::Tage.build(small_profile());
        for _ in 0..3 {
            backend.execute(0x6d, Outcome::NotTaken, None);
        }
        assert_eq!(backend.pht_state(0x6d), PhtState::StronglyNotTaken);
        backend.execute(0x6d, Outcome::Taken, None); // victim
        let (_, first_correct) = backend.execute(0x6d, Outcome::Taken, None);
        let (_, second_correct) = backend.execute(0x6d, Outcome::Taken, None);
        assert!(!first_correct && second_correct, "MH probe signature");
    }

    #[test]
    fn perceptron_backend_barely_reacts_to_a_single_victim_execution() {
        // The ablation headline: after a strong not-taken prime, ONE taken
        // execution cannot flip the perceptron's output, so the probe
        // pattern is the same whether the victim ran taken or not-taken —
        // the attack reads nothing.
        let run = |victim: Outcome| {
            let mut backend = BackendKind::Perceptron.build(small_profile());
            for _ in 0..8 {
                backend.execute(0x6d, Outcome::NotTaken, None);
            }
            backend.execute(0x6d, victim, None);
            let (first, _) = backend.execute(0x6d, Outcome::Taken, None);
            let (second, _) = backend.execute(0x6d, Outcome::Taken, None);
            (first.direction, second.direction)
        };
        assert_eq!(run(Outcome::Taken), run(Outcome::NotTaken), "probes cannot distinguish");
    }

    #[test]
    fn trait_object_dispatch_matches_enum_dispatch() {
        let mut enum_backend = BackendKind::Tage.build(small_profile());
        let mut dyn_backend: Box<dyn DirectionPredictor> =
            Box::new(TageBackend::new(small_profile()));
        for i in 0..200u64 {
            let addr = 0x100 + (i % 7) * 0x40;
            let outcome = Outcome::from_bool(i % 3 == 0);
            let (a, ca) = enum_backend.execute(addr, outcome, None);
            let (b, cb) = dyn_backend.execute(addr, outcome, None);
            assert_eq!((a, ca), (b, cb), "step {i}");
        }
        assert_eq!(enum_backend.stats(), dyn_backend.stats());
    }
}
