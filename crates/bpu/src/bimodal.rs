//! The 1-level (bimodal) component predictor.

use crate::counter::{CounterKind, Outcome, PhtState};
use crate::pht::PatternHistoryTable;
use crate::VirtAddr;

/// The 1-level bimodal predictor: a PHT indexed directly by the branch
/// address (Smith, 1981; the paper's "1-level predictor").
///
/// Because its index is a pure function of the branch address, collisions
/// between two processes are trivial to establish — the property BranchScope
/// exploits once it has forced the BPU into 1-level mode.
///
/// ```
/// use bscope_bpu::{BimodalPredictor, CounterKind, Outcome};
///
/// let mut p = BimodalPredictor::new(16_384, CounterKind::TwoBit);
/// p.update(0x30_0000, Outcome::Taken);
/// p.update(0x30_0000, Outcome::Taken);
/// assert_eq!(p.predict(0x30_0000), Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    pht: PatternHistoryTable,
}

impl BimodalPredictor {
    /// Creates a bimodal predictor with a PHT of `size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize, kind: CounterKind) -> Self {
        BimodalPredictor { pht: PatternHistoryTable::new(size, kind) }
    }

    /// PHT index used for a branch address — the address modulo the table
    /// size, at byte granularity (paper Fig. 5a).
    #[must_use]
    pub fn index_of(&self, addr: VirtAddr) -> usize {
        self.pht.index_of(addr)
    }

    /// Predicted direction for the branch at `addr`.
    #[must_use]
    pub fn predict(&self, addr: VirtAddr) -> Outcome {
        self.pht.predict(self.index_of(addr))
    }

    /// Trains the predictor with a resolved outcome.
    pub fn update(&mut self, addr: VirtAddr, outcome: Outcome) {
        let idx = self.index_of(addr);
        self.pht.update(idx, outcome);
    }

    /// Architectural state of the entry the branch at `addr` maps to.
    #[must_use]
    pub fn state(&self, addr: VirtAddr) -> PhtState {
        self.pht.state(self.index_of(addr))
    }

    /// Forces the entry for `addr` into an architectural state.
    pub fn set_state(&mut self, addr: VirtAddr, state: PhtState) {
        let idx = self.index_of(addr);
        self.pht.set_state(idx, state);
    }

    /// Shared read access to the underlying PHT.
    #[must_use]
    pub fn pht(&self) -> &PatternHistoryTable {
        &self.pht
    }

    /// Exclusive access to the underlying PHT (used by mitigations and
    /// noise models that manipulate raw entries).
    #[must_use]
    pub fn pht_mut(&mut self) -> &mut PatternHistoryTable {
        &mut self.pht
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliasing_addresses_share_an_entry() {
        let mut p = BimodalPredictor::new(1024, CounterKind::TwoBit);
        // Two addresses one PHT-size apart collide — the cross-process
        // collision BranchScope builds on.
        p.update(0x400, Outcome::Taken);
        p.update(0x400, Outcome::Taken);
        assert_eq!(p.predict(0x400 + 1024), Outcome::Taken);
        assert_eq!(p.state(0x400 + 1024), PhtState::StronglyTaken);
    }

    #[test]
    fn distinct_entries_are_independent() {
        let mut p = BimodalPredictor::new(1024, CounterKind::TwoBit);
        p.update(1, Outcome::Taken);
        p.update(1, Outcome::Taken);
        assert_eq!(p.predict(2), Outcome::NotTaken, "neighbouring entry untouched");
    }

    #[test]
    fn set_state_overrides_training() {
        let mut p = BimodalPredictor::new(64, CounterKind::SkylakeAsymmetric);
        p.update(5, Outcome::Taken);
        p.set_state(5, PhtState::StronglyNotTaken);
        assert_eq!(p.predict(5), Outcome::NotTaken);
    }
}
