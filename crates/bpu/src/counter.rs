//! Branch outcomes, architectural PHT states and saturating-counter FSMs.
//!
//! The paper's Figure 3 shows the textbook two-bit saturating counter with
//! four states (SN, WN, WT, ST). The Skylake microarchitecture additionally
//! exhibits the peculiarity documented in Table 1, footnote 1: probing a
//! weakly-taken entry with two not-taken branches observes `MM` instead of
//! the textbook `MH`, which makes the ST and WT states indistinguishable.
//! We model that with an asymmetric five-state counter whose taken side has
//! one extra state ([`CounterKind::SkylakeAsymmetric`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction a conditional branch resolved to (or is predicted to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// The branch was (or is predicted) not taken: fall through.
    NotTaken,
    /// The branch was (or is predicted) taken: jump to the target.
    Taken,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Taken`].
    ///
    /// ```
    /// use bscope_bpu::Outcome;
    /// assert!(Outcome::Taken.is_taken());
    /// assert!(!Outcome::NotTaken.is_taken());
    /// ```
    #[must_use]
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }

    /// Converts a boolean condition into an outcome (`true` → taken).
    ///
    /// ```
    /// use bscope_bpu::Outcome;
    /// assert_eq!(Outcome::from_bool(true), Outcome::Taken);
    /// ```
    #[must_use]
    pub fn from_bool(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// Returns the opposite direction.
    ///
    /// ```
    /// use bscope_bpu::Outcome;
    /// assert_eq!(Outcome::Taken.flipped(), Outcome::NotTaken);
    /// ```
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }

    /// Single-letter mnemonic used throughout the paper: `T` / `N`.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Outcome::Taken => 'T',
            Outcome::NotTaken => 'N',
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Taken => "taken",
            Outcome::NotTaken => "not-taken",
        })
    }
}

impl From<bool> for Outcome {
    fn from(taken: bool) -> Self {
        Outcome::from_bool(taken)
    }
}

/// Architectural state of one PHT entry as observable by the attack.
///
/// These are the four states of the paper's Figure 3 FSM. On Skylake the
/// underlying counter has five internal states, but only these four are
/// architecturally meaningful (and ST/WT are indistinguishable there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PhtState {
    /// Strongly not-taken (`SN`).
    StronglyNotTaken,
    /// Weakly not-taken (`WN`).
    WeaklyNotTaken,
    /// Weakly taken (`WT`).
    WeaklyTaken,
    /// Strongly taken (`ST`).
    StronglyTaken,
}

impl PhtState {
    /// All four states in increasing taken-ness order.
    pub const ALL: [PhtState; 4] = [
        PhtState::StronglyNotTaken,
        PhtState::WeaklyNotTaken,
        PhtState::WeaklyTaken,
        PhtState::StronglyTaken,
    ];

    /// Direction this state predicts.
    ///
    /// ```
    /// use bscope_bpu::{Outcome, PhtState};
    /// assert_eq!(PhtState::WeaklyTaken.predicted(), Outcome::Taken);
    /// assert_eq!(PhtState::StronglyNotTaken.predicted(), Outcome::NotTaken);
    /// ```
    #[must_use]
    pub fn predicted(self) -> Outcome {
        match self {
            PhtState::StronglyNotTaken | PhtState::WeaklyNotTaken => Outcome::NotTaken,
            PhtState::WeaklyTaken | PhtState::StronglyTaken => Outcome::Taken,
        }
    }

    /// Whether this is one of the two strong (saturated) states.
    #[must_use]
    pub fn is_strong(self) -> bool {
        matches!(self, PhtState::StronglyNotTaken | PhtState::StronglyTaken)
    }

    /// The paper's two-letter mnemonic: `SN`, `WN`, `WT`, `ST`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            PhtState::StronglyNotTaken => "SN",
            PhtState::WeaklyNotTaken => "WN",
            PhtState::WeaklyTaken => "WT",
            PhtState::StronglyTaken => "ST",
        }
    }
}

impl fmt::Display for PhtState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Which saturating-counter flavour a PHT uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// The textbook two-bit counter of Figure 3 (Sandy Bridge, Haswell).
    TwoBit,
    /// Skylake's asymmetric counter: the taken side has an extra internal
    /// state, so leaving `WT` toward not-taken takes two mispredictions.
    /// This reproduces Table 1 footnote 1 (`MM` instead of `MH` when probing
    /// a WT entry with two not-taken branches) and makes ST/WT
    /// architecturally indistinguishable, exactly as the paper reports.
    SkylakeAsymmetric,
}

impl CounterKind {
    /// A fresh counter of this kind in the given architectural state.
    #[must_use]
    pub fn counter_in(self, state: PhtState) -> Counter {
        let mut c = Counter::new(self);
        c.set_state(state);
        c
    }
}

/// One directional-prediction finite state machine (one PHT entry).
///
/// Internally a small saturating counter; the raw level range depends on the
/// [`CounterKind`]. Values at or above the kind's taken threshold predict
/// taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Counter {
    kind: CounterKind,
    level: u8,
}

impl Counter {
    /// Creates a counter in the weakly not-taken state.
    ///
    /// ```
    /// use bscope_bpu::{Counter, CounterKind, PhtState};
    /// let c = Counter::new(CounterKind::TwoBit);
    /// assert_eq!(c.state(), PhtState::WeaklyNotTaken);
    /// ```
    #[must_use]
    pub fn new(kind: CounterKind) -> Self {
        Counter { kind, level: 1 }
    }

    /// The counter flavour.
    #[must_use]
    pub fn kind(self) -> CounterKind {
        self.kind
    }

    /// Maximum internal level for this counter kind.
    #[must_use]
    pub fn max_level(self) -> u8 {
        match self.kind {
            CounterKind::TwoBit => 3,
            CounterKind::SkylakeAsymmetric => 4,
        }
    }

    /// Raw internal level (exposed for tests and reverse-engineering tools).
    #[must_use]
    pub fn level(self) -> u8 {
        self.level
    }

    /// Direction predicted by the current state.
    #[must_use]
    pub fn predict(self) -> Outcome {
        if self.level >= 2 {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// Advances the FSM with the resolved branch outcome.
    pub fn update(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Taken => {
                if self.level < self.max_level() {
                    self.level += 1;
                }
            }
            Outcome::NotTaken => {
                self.level = self.level.saturating_sub(1);
            }
        }
    }

    /// Architectural state of the entry.
    ///
    /// For the Skylake counter both internal weak-taken levels map to
    /// [`PhtState::WeaklyTaken`]; only probing behaviour distinguishes them,
    /// and — per the paper — even probing cannot distinguish WT from ST.
    #[must_use]
    pub fn state(self) -> PhtState {
        match self.kind {
            CounterKind::TwoBit => match self.level {
                0 => PhtState::StronglyNotTaken,
                1 => PhtState::WeaklyNotTaken,
                2 => PhtState::WeaklyTaken,
                _ => PhtState::StronglyTaken,
            },
            CounterKind::SkylakeAsymmetric => match self.level {
                0 => PhtState::StronglyNotTaken,
                1 => PhtState::WeaklyNotTaken,
                2 | 3 => PhtState::WeaklyTaken,
                _ => PhtState::StronglyTaken,
            },
        }
    }

    /// Forces the entry into an architectural state.
    ///
    /// Used by priming code and by the mitigation models. For the Skylake
    /// counter, `WeaklyTaken` selects the *upper* weak-taken level — the one
    /// reached from ST by a single not-taken outcome, which is the state the
    /// attack actually encounters after the target stage.
    pub fn set_state(&mut self, state: PhtState) {
        self.level = match (self.kind, state) {
            (_, PhtState::StronglyNotTaken) => 0,
            (_, PhtState::WeaklyNotTaken) => 1,
            (CounterKind::TwoBit, PhtState::WeaklyTaken) => 2,
            (CounterKind::TwoBit, PhtState::StronglyTaken) => 3,
            (CounterKind::SkylakeAsymmetric, PhtState::WeaklyTaken) => 3,
            (CounterKind::SkylakeAsymmetric, PhtState::StronglyTaken) => 4,
        };
    }

    /// Predicts, then updates, returning whether the prediction was correct.
    ///
    /// This is the exact sequence a hardware PHT entry performs per branch
    /// and the primitive the attack's probe step observes.
    pub fn access(&mut self, outcome: Outcome) -> bool {
        let predicted = self.predict();
        self.update(outcome);
        predicted == outcome
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new(CounterKind::TwoBit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_bit_counter_follows_figure_3() {
        let mut c = Counter::new(CounterKind::TwoBit);
        c.set_state(PhtState::StronglyNotTaken);
        // SN -T-> WN -T-> WT -T-> ST -T-> ST (saturates)
        c.update(Outcome::Taken);
        assert_eq!(c.state(), PhtState::WeaklyNotTaken);
        c.update(Outcome::Taken);
        assert_eq!(c.state(), PhtState::WeaklyTaken);
        c.update(Outcome::Taken);
        assert_eq!(c.state(), PhtState::StronglyTaken);
        c.update(Outcome::Taken);
        assert_eq!(c.state(), PhtState::StronglyTaken);
        // ST -N-> WT -N-> WN -N-> SN -N-> SN (saturates)
        c.update(Outcome::NotTaken);
        assert_eq!(c.state(), PhtState::WeaklyTaken);
        c.update(Outcome::NotTaken);
        assert_eq!(c.state(), PhtState::WeaklyNotTaken);
        c.update(Outcome::NotTaken);
        assert_eq!(c.state(), PhtState::StronglyNotTaken);
        c.update(Outcome::NotTaken);
        assert_eq!(c.state(), PhtState::StronglyNotTaken);
    }

    #[test]
    fn weak_states_predict_their_side() {
        for kind in [CounterKind::TwoBit, CounterKind::SkylakeAsymmetric] {
            for state in PhtState::ALL {
                let c = kind.counter_in(state);
                assert_eq!(c.predict(), state.predicted(), "{kind:?} {state}");
            }
        }
    }

    /// Table 1, row "TTT | ST | N | WT | NN": Haswell/Sandy Bridge observe
    /// MH, Skylake observes MM (footnote 1).
    #[test]
    fn skylake_wt_probed_nn_gives_two_mispredictions() {
        // Prime strongly taken, then one not-taken target stage.
        let mut sky = CounterKind::SkylakeAsymmetric.counter_in(PhtState::StronglyTaken);
        sky.update(Outcome::NotTaken);
        assert_eq!(sky.state(), PhtState::WeaklyTaken);
        let first_correct = sky.access(Outcome::NotTaken);
        let second_correct = sky.access(Outcome::NotTaken);
        assert!(!first_correct, "first probe must mispredict on Skylake");
        assert!(!second_correct, "second probe must mispredict on Skylake");

        let mut hsw = CounterKind::TwoBit.counter_in(PhtState::StronglyTaken);
        hsw.update(Outcome::NotTaken);
        let first_correct = hsw.access(Outcome::NotTaken);
        let second_correct = hsw.access(Outcome::NotTaken);
        assert!(!first_correct, "first probe must mispredict on Haswell");
        assert!(second_correct, "second probe must hit on Haswell");
    }

    /// On Skylake, ST and WT produce identical probe observations, which the
    /// paper reports as the two states being indistinguishable.
    #[test]
    fn skylake_st_and_wt_indistinguishable() {
        for probe in [Outcome::Taken, Outcome::NotTaken] {
            let mut from_st = CounterKind::SkylakeAsymmetric.counter_in(PhtState::StronglyTaken);
            let mut from_wt = CounterKind::SkylakeAsymmetric.counter_in(PhtState::WeaklyTaken);
            let st_obs = (from_st.access(probe), from_st.access(probe));
            let wt_obs = (from_wt.access(probe), from_wt.access(probe));
            assert_eq!(st_obs, wt_obs, "probe {probe}");
        }
    }

    #[test]
    fn outcome_helpers_round_trip() {
        assert_eq!(Outcome::from_bool(true), Outcome::Taken);
        assert_eq!(Outcome::from_bool(false), Outcome::NotTaken);
        assert_eq!(Outcome::Taken.flipped().flipped(), Outcome::Taken);
        assert_eq!(Outcome::Taken.letter(), 'T');
        assert_eq!(Outcome::NotTaken.letter(), 'N');
        assert_eq!(Outcome::Taken.to_string(), "taken");
    }

    #[test]
    fn set_state_round_trips_architectural_state() {
        for kind in [CounterKind::TwoBit, CounterKind::SkylakeAsymmetric] {
            for state in PhtState::ALL {
                assert_eq!(kind.counter_in(state).state(), state);
            }
        }
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(PhtState::StronglyTaken.to_string(), "ST");
        assert_eq!(PhtState::WeaklyNotTaken.to_string(), "WN");
    }

    proptest! {
        /// The counter level never leaves its legal range whatever the
        /// outcome sequence.
        #[test]
        fn counter_level_stays_in_range(
            kind_sky in any::<bool>(),
            outcomes in proptest::collection::vec(any::<bool>(), 0..256),
        ) {
            let kind = if kind_sky { CounterKind::SkylakeAsymmetric } else { CounterKind::TwoBit };
            let mut c = Counter::new(kind);
            for o in outcomes {
                c.update(Outcome::from_bool(o));
                prop_assert!(c.level() <= c.max_level());
            }
        }

        /// Saturation: enough identical outcomes always reach the matching
        /// strong state, from any starting state.
        #[test]
        fn saturation_reaches_strong_state(
            kind_sky in any::<bool>(),
            start in 0usize..4,
            taken in any::<bool>(),
        ) {
            let kind = if kind_sky { CounterKind::SkylakeAsymmetric } else { CounterKind::TwoBit };
            let mut c = kind.counter_in(PhtState::ALL[start]);
            let outcome = Outcome::from_bool(taken);
            for _ in 0..5 {
                c.update(outcome);
            }
            let want = if taken { PhtState::StronglyTaken } else { PhtState::StronglyNotTaken };
            prop_assert_eq!(c.state(), want);
        }

        /// A strong state survives exactly one opposite outcome and still
        /// predicts its side — the hysteresis the attack's prime step relies
        /// on.
        #[test]
        fn strong_state_survives_one_flip(kind_sky in any::<bool>(), taken in any::<bool>()) {
            let kind = if kind_sky { CounterKind::SkylakeAsymmetric } else { CounterKind::TwoBit };
            let strong = if taken { PhtState::StronglyTaken } else { PhtState::StronglyNotTaken };
            let mut c = kind.counter_in(strong);
            let flip = Outcome::from_bool(!taken);
            c.update(flip);
            prop_assert_eq!(c.predict(), Outcome::from_bool(taken));
        }
    }
}
