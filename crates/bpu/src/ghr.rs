//! The global history register feeding the 2-level predictor.

use crate::counter::Outcome;
use rand::Rng;

/// Global history register (GHR): a shift register of the outcomes of the
/// last `len` branches executed on the core (paper §2).
///
/// The most recent outcome occupies bit 0; a taken branch shifts in a `1`.
///
/// ```
/// use bscope_bpu::{GlobalHistoryRegister, Outcome};
///
/// let mut ghr = GlobalHistoryRegister::new(8);
/// ghr.push(Outcome::Taken);
/// ghr.push(Outcome::NotTaken);
/// ghr.push(Outcome::Taken);
/// assert_eq!(ghr.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistoryRegister {
    bits: u64,
    len: u32,
}

impl GlobalHistoryRegister {
    /// Creates an all-zero (all not-taken) history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 64.
    #[must_use]
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "GHR length must be in 1..=64, got {len}");
        GlobalHistoryRegister { bits: 0, len }
    }

    /// Number of history bits tracked.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register tracks zero bits (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current history value, masked to `len` bits.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.bits & self.mask()
    }

    /// Shifts in one resolved branch outcome.
    pub fn push(&mut self, outcome: Outcome) {
        self.bits = ((self.bits << 1) | u64::from(outcome.is_taken())) & self.mask();
    }

    /// Clears the history to all not-taken.
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// Randomises the history — the effect of the attacker's randomization
    /// block, which leaves the GHR in an unpredictable state (paper §5.2).
    pub fn scramble<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.bits = rng.gen::<u64>() & self.mask();
    }

    fn mask(&self) -> u64 {
        if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_shifts_most_recent_into_bit_zero() {
        let mut ghr = GlobalHistoryRegister::new(4);
        ghr.push(Outcome::Taken);
        assert_eq!(ghr.value(), 0b1);
        ghr.push(Outcome::NotTaken);
        assert_eq!(ghr.value(), 0b10);
        ghr.push(Outcome::Taken);
        assert_eq!(ghr.value(), 0b101);
    }

    #[test]
    fn history_is_bounded_by_len() {
        let mut ghr = GlobalHistoryRegister::new(3);
        for _ in 0..10 {
            ghr.push(Outcome::Taken);
        }
        assert_eq!(ghr.value(), 0b111);
    }

    #[test]
    fn clear_zeroes_history() {
        let mut ghr = GlobalHistoryRegister::new(16);
        ghr.push(Outcome::Taken);
        ghr.clear();
        assert_eq!(ghr.value(), 0);
    }

    #[test]
    fn full_width_register_works() {
        let mut ghr = GlobalHistoryRegister::new(64);
        for _ in 0..64 {
            ghr.push(Outcome::Taken);
        }
        assert_eq!(ghr.value(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "GHR length")]
    fn rejects_zero_length() {
        let _ = GlobalHistoryRegister::new(0);
    }

    #[test]
    fn scramble_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ghr = GlobalHistoryRegister::new(5);
        for _ in 0..100 {
            ghr.scramble(&mut rng);
            assert!(ghr.value() < 32);
        }
    }

    proptest! {
        /// value() always fits in len bits.
        #[test]
        fn value_fits_len(len in 1u32..=64, pushes in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut ghr = GlobalHistoryRegister::new(len);
            for p in pushes {
                ghr.push(Outcome::from_bool(p));
                if len < 64 {
                    prop_assert!(ghr.value() < (1u64 << len));
                }
            }
        }

        /// The register faithfully records the last `len` outcomes.
        #[test]
        fn records_last_len_outcomes(pushes in proptest::collection::vec(any::<bool>(), 8..64)) {
            let len = 8u32;
            let mut ghr = GlobalHistoryRegister::new(len);
            for &p in &pushes {
                ghr.push(Outcome::from_bool(p));
            }
            let mut want = 0u64;
            for &p in &pushes[pushes.len() - len as usize..] {
                want = (want << 1) | u64::from(p);
            }
            prop_assert_eq!(ghr.value(), want);
        }
    }
}
