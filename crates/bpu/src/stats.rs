//! Prediction accuracy accounting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running counts of predictions made by a BPU, overall and per component.
///
/// The simulated equivalent of the `BR_INST_RETIRED` / `BR_MISP_RETIRED`
/// performance counters the paper's spy reads (§7), kept at BPU level for
/// experiment bookkeeping. Per-context counters live in `bscope-uarch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Conditional branches predicted.
    pub branches: u64,
    /// Branches whose predicted direction was wrong.
    pub mispredictions: u64,
    /// Branches routed to the 1-level (bimodal) component.
    pub bimodal_used: u64,
    /// Branches routed to the 2-level (gshare) component.
    pub gshare_used: u64,
}

impl PredictionStats {
    /// Fresh zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        PredictionStats::default()
    }

    /// Records one resolved branch.
    pub fn record(&mut self, used_gshare: bool, mispredicted: bool) {
        self.branches += 1;
        if mispredicted {
            self.mispredictions += 1;
        }
        if used_gshare {
            self.gshare_used += 1;
        } else {
            self.bimodal_used += 1;
        }
    }

    /// Misprediction rate in `[0, 1]`; zero when no branches were recorded.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Fraction of branches routed to the 2-level component.
    #[must_use]
    pub fn gshare_fraction(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.gshare_used as f64 / self.branches as f64
        }
    }

    /// Difference of two snapshots (`self` must be the later one).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counts.
    #[must_use]
    pub fn since(&self, earlier: &PredictionStats) -> PredictionStats {
        debug_assert!(self.branches >= earlier.branches);
        PredictionStats {
            branches: self.branches - earlier.branches,
            mispredictions: self.mispredictions - earlier.mispredictions,
            bimodal_used: self.bimodal_used - earlier.bimodal_used,
            gshare_used: self.gshare_used - earlier.gshare_used,
        }
    }

    /// Resets all counts to zero.
    pub fn reset(&mut self) {
        *self = PredictionStats::default();
    }
}

impl fmt::Display for PredictionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} branches, {} mispredicted ({:.2}%), {:.1}% via gshare",
            self.branches,
            self.mispredictions,
            100.0 * self.misprediction_rate(),
            100.0 * self.gshare_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = PredictionStats::new();
        s.record(false, true);
        s.record(true, false);
        s.record(true, false);
        s.record(true, true);
        assert_eq!(s.branches, 4);
        assert_eq!(s.mispredictions, 2);
        assert_eq!(s.bimodal_used, 1);
        assert_eq!(s.gshare_used, 3);
        assert!((s.misprediction_rate() - 0.5).abs() < 1e-12);
        assert!((s.gshare_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = PredictionStats::new();
        assert_eq!(s.misprediction_rate(), 0.0);
        assert_eq!(s.gshare_fraction(), 0.0);
    }

    #[test]
    fn since_subtracts_snapshots() {
        let mut s = PredictionStats::new();
        s.record(false, true);
        let snap = s;
        s.record(true, false);
        s.record(true, true);
        let delta = s.since(&snap);
        assert_eq!(delta.branches, 2);
        assert_eq!(delta.mispredictions, 1);
        assert_eq!(delta.gshare_used, 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!PredictionStats::new().to_string().is_empty());
    }
}
