//! The branch target buffer (BTB).

use crate::VirtAddr;

/// One BTB entry: the tag of the owning branch and its last taken target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbEntry {
    /// Address tag distinguishing aliasing branches.
    pub tag: u64,
    /// Last recorded target address of the branch.
    pub target: VirtAddr,
}

/// A direct-mapped branch target buffer.
///
/// "A simple direct mapped cache of addresses that stores the last target
/// address of a branch that maps to each BTB entry" (paper §2). Per the
/// paper, the target "is updated only when the branch is taken" (§1), so a
/// BTB hit also tells the front end that this branch has recently been seen
/// taken — the presence signal the [`HybridPredictor`](crate::HybridPredictor)
/// uses to decide between 1-level and combined prediction (paper §5.1).
///
/// ```
/// use bscope_bpu::BranchTargetBuffer;
///
/// let mut btb = BranchTargetBuffer::new(1024);
/// btb.insert(0x40_0000, 0x40_0040);
/// assert_eq!(btb.lookup(0x40_0000), Some(0x40_0040));
/// assert_eq!(btb.lookup(0x41_0000), None);
/// ```
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    entries: Vec<Option<BtbEntry>>,
    mask: u64,
}

impl BranchTargetBuffer {
    /// Creates an empty BTB of `size` sets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "BTB size must be a power of two, got {size}");
        BranchTargetBuffer { entries: vec![None; size], mask: (size - 1) as u64 }
    }

    /// Number of sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the BTB holds zero sets (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Set index for a branch address.
    #[must_use]
    pub fn index_of(&self, addr: VirtAddr) -> usize {
        (addr & self.mask) as usize
    }

    fn tag_of(&self, addr: VirtAddr) -> u64 {
        addr >> self.mask.count_ones()
    }

    /// Looks up the target for the branch at `addr`; `None` on a miss
    /// (empty set or tag mismatch).
    #[must_use]
    pub fn lookup(&self, addr: VirtAddr) -> Option<VirtAddr> {
        let entry = self.entries[self.index_of(addr)]?;
        (entry.tag == self.tag_of(addr)).then_some(entry.target)
    }

    /// Whether the branch at `addr` currently hits in the BTB.
    #[must_use]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Installs (or replaces) the entry for a taken branch, returning the
    /// evicted entry if an aliasing branch occupied the set.
    pub fn insert(&mut self, addr: VirtAddr, target: VirtAddr) -> Option<BtbEntry> {
        let idx = self.index_of(addr);
        let tag = self.tag_of(addr);
        self.entries[idx].replace(BtbEntry { tag, target })
    }

    /// Removes the entry for `addr` if present (tag must match), returning
    /// it. Used by flush-style mitigations.
    pub fn evict(&mut self, addr: VirtAddr) -> Option<BtbEntry> {
        let idx = self.index_of(addr);
        match self.entries[idx] {
            Some(e) if e.tag == self.tag_of(addr) => self.entries[idx].take(),
            _ => None,
        }
    }

    /// Empties the whole BTB.
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }

    /// Number of occupied sets.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn miss_on_empty() {
        let btb = BranchTargetBuffer::new(64);
        assert_eq!(btb.lookup(0x1000), None);
        assert!(!btb.contains(0x1000));
    }

    #[test]
    fn aliasing_branch_evicts() {
        let mut btb = BranchTargetBuffer::new(64);
        btb.insert(0x10, 0xAAAA);
        // 0x10 + 64 maps to the same set with a different tag.
        let evicted = btb.insert(0x10 + 64, 0xBBBB);
        assert_eq!(evicted.map(|e| e.target), Some(0xAAAA));
        assert_eq!(btb.lookup(0x10), None, "victim entry evicted");
        assert_eq!(btb.lookup(0x10 + 64), Some(0xBBBB));
    }

    #[test]
    fn tag_mismatch_is_a_miss_without_eviction() {
        let mut btb = BranchTargetBuffer::new(64);
        btb.insert(0x10, 0xAAAA);
        assert_eq!(btb.lookup(0x10 + 64), None);
        assert_eq!(btb.lookup(0x10), Some(0xAAAA), "entry still present");
    }

    #[test]
    fn evict_requires_matching_tag() {
        let mut btb = BranchTargetBuffer::new(64);
        btb.insert(0x10, 0xAAAA);
        assert_eq!(btb.evict(0x10 + 64), None);
        assert!(btb.contains(0x10));
        assert_eq!(btb.evict(0x10).map(|e| e.target), Some(0xAAAA));
        assert!(!btb.contains(0x10));
    }

    #[test]
    fn clear_and_occupancy() {
        let mut btb = BranchTargetBuffer::new(64);
        btb.insert(1, 2);
        btb.insert(2, 3);
        assert_eq!(btb.occupancy(), 2);
        btb.clear();
        assert_eq!(btb.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BranchTargetBuffer::new(100);
    }

    proptest! {
        /// lookup after insert returns the inserted target for the same
        /// address.
        #[test]
        fn insert_then_lookup(addr in any::<u64>(), target in any::<u64>()) {
            let mut btb = BranchTargetBuffer::new(1024);
            btb.insert(addr, target);
            prop_assert_eq!(btb.lookup(addr), Some(target));
        }

        /// Filling with more branches than sets bounds occupancy by size —
        /// the eviction pressure the randomization block relies on.
        #[test]
        fn occupancy_bounded(addrs in proptest::collection::vec(any::<u64>(), 0..3000)) {
            let mut btb = BranchTargetBuffer::new(256);
            for a in addrs {
                btb.insert(a, a.wrapping_add(4));
            }
            prop_assert!(btb.occupancy() <= 256);
        }
    }
}
