//! The pattern history table: an array of saturating-counter FSMs.

use crate::counter::{Counter, CounterKind, Outcome, PhtState};
use rand::Rng;

/// A pattern history table (PHT) — `size` saturating counters.
///
/// Both component predictors of the hybrid BPU store their direction history
/// in a PHT; they differ only in how the PHT is indexed (paper §2). The
/// table size must be a power of two (real PHTs are; the paper
/// reverse-engineers 2^14 entries on its experimental machine, Fig. 5b).
///
/// ```
/// use bscope_bpu::{CounterKind, Outcome, PatternHistoryTable, PhtState};
///
/// let mut pht = PatternHistoryTable::new(16_384, CounterKind::TwoBit);
/// let idx = pht.index_of(0x30_0000);
/// pht.update(idx, Outcome::Taken);
/// pht.update(idx, Outcome::Taken);
/// assert_eq!(pht.state(idx), PhtState::StronglyTaken);
/// ```
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    entries: Vec<Counter>,
    mask: u64,
}

impl PatternHistoryTable {
    /// Creates a PHT of `size` counters of the given kind, all initialised
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize, kind: CounterKind) -> Self {
        assert!(size.is_power_of_two(), "PHT size must be a power of two, got {size}");
        PatternHistoryTable {
            entries: vec![Counter::new(kind); size],
            mask: (size - 1) as u64,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps an arbitrary table-index key to an entry index.
    ///
    /// The PHT index is the key modulo the table size — the byte-granular
    /// modulo indexing the paper establishes in §6.3 / Fig. 5.
    #[must_use]
    pub fn index_of(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// Predicted direction of the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn predict(&self, index: usize) -> Outcome {
        self.entries[index].predict()
    }

    /// Advances the FSM at `index` with a resolved outcome.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn update(&mut self, index: usize, outcome: Outcome) {
        self.entries[index].update(outcome);
    }

    /// Architectural state of the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn state(&self, index: usize) -> PhtState {
        self.entries[index].state()
    }

    /// Raw counter at `index` (tests and reverse-engineering tooling).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn counter(&self, index: usize) -> Counter {
        self.entries[index]
    }

    /// Forces the entry at `index` into an architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set_state(&mut self, index: usize, state: PhtState) {
        self.entries[index].set_state(state);
    }

    /// Resets every entry to weakly not-taken (what a flush mitigation or a
    /// simulated machine reset does).
    pub fn reset(&mut self) {
        let kind = self.entries[0].kind();
        for e in &mut self.entries {
            *e = Counter::new(kind);
        }
    }

    /// Scrambles every entry into a uniformly random architectural state.
    ///
    /// Models the aggregate effect of unrelated system activity on PHT
    /// contents; also used to set up "dirty" initial conditions in tests.
    pub fn scramble<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for e in &mut self.entries {
            let state = PhtState::ALL[rng.gen_range(0..4)];
            e.set_state(state);
        }
    }

    /// Iterator over the architectural states of all entries.
    pub fn states(&self) -> impl Iterator<Item = PhtState> + '_ {
        self.entries.iter().map(|c| c.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn index_wraps_modulo_size() {
        let pht = PatternHistoryTable::new(1024, CounterKind::TwoBit);
        assert_eq!(pht.index_of(0), 0);
        assert_eq!(pht.index_of(1024), 0);
        assert_eq!(pht.index_of(1025), 1);
        assert_eq!(pht.index_of(0x30_0000 + 7), pht.index_of(7));
    }

    #[test]
    fn byte_granularity_adjacent_addresses_differ() {
        // Fig. 5a: adjacent virtual addresses map to different PHT entries.
        let pht = PatternHistoryTable::new(16_384, CounterKind::TwoBit);
        assert_ne!(pht.index_of(0x30_0000), pht.index_of(0x30_0001));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = PatternHistoryTable::new(1000, CounterKind::TwoBit);
    }

    #[test]
    fn update_and_state_roundtrip() {
        let mut pht = PatternHistoryTable::new(64, CounterKind::TwoBit);
        pht.set_state(3, PhtState::StronglyTaken);
        assert_eq!(pht.state(3), PhtState::StronglyTaken);
        assert_eq!(pht.predict(3), Outcome::Taken);
        pht.update(3, Outcome::NotTaken);
        assert_eq!(pht.state(3), PhtState::WeaklyTaken);
        // Unrelated entries untouched.
        assert_eq!(pht.state(4), PhtState::WeaklyNotTaken);
    }

    #[test]
    fn reset_restores_default_state() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut pht = PatternHistoryTable::new(256, CounterKind::SkylakeAsymmetric);
        pht.scramble(&mut rng);
        pht.reset();
        assert!(pht.states().all(|s| s == PhtState::WeaklyNotTaken));
    }

    #[test]
    fn scramble_is_deterministic_per_seed() {
        let mut a = PatternHistoryTable::new(512, CounterKind::TwoBit);
        let mut b = PatternHistoryTable::new(512, CounterKind::TwoBit);
        a.scramble(&mut StdRng::seed_from_u64(42));
        b.scramble(&mut StdRng::seed_from_u64(42));
        assert!(a.states().eq(b.states()));
    }

    #[test]
    fn scramble_touches_many_states() {
        let mut pht = PatternHistoryTable::new(4096, CounterKind::TwoBit);
        pht.scramble(&mut StdRng::seed_from_u64(1));
        let mut counts = [0usize; 4];
        for s in pht.states() {
            counts[PhtState::ALL.iter().position(|&x| x == s).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "state {i} appeared only {c} times");
        }
    }
}
