//! The 2-level (gshare) component predictor.

use crate::counter::{CounterKind, Outcome};
use crate::ghr::GlobalHistoryRegister;
use crate::pht::PatternHistoryTable;
use crate::VirtAddr;

/// The 2-level gshare predictor: a PHT indexed by the branch address XORed
/// with the global history register (McFarling, 1993; the paper's "2-level
/// predictor").
///
/// Because its index depends on the GHR, the same static branch occupies a
/// different PHT entry for every distinct history context — which is exactly
/// why it converges slowly on new branches (paper §5.1) and why the attacker
/// cannot easily create cross-process collisions through it.
///
/// ```
/// use bscope_bpu::{GlobalHistoryRegister, GsharePredictor, CounterKind, Outcome};
///
/// let mut ghr = GlobalHistoryRegister::new(12);
/// let mut p = GsharePredictor::new(16_384, CounterKind::TwoBit);
/// p.update(0x30_0000, &ghr, Outcome::Taken);
/// p.update(0x30_0000, &ghr, Outcome::Taken);
/// assert_eq!(p.predict(0x30_0000, &ghr), Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    pht: PatternHistoryTable,
}

impl GsharePredictor {
    /// Creates a gshare predictor with a PHT of `size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize, kind: CounterKind) -> Self {
        GsharePredictor { pht: PatternHistoryTable::new(size, kind) }
    }

    /// The gshare index for a branch address under a given history: the
    /// address XORed with the GHR value, folded into the table.
    #[must_use]
    pub fn index_of(&self, addr: VirtAddr, ghr: &GlobalHistoryRegister) -> usize {
        self.pht.index_of(addr ^ ghr.value())
    }

    /// Predicted direction for `addr` under history `ghr`.
    #[must_use]
    pub fn predict(&self, addr: VirtAddr, ghr: &GlobalHistoryRegister) -> Outcome {
        self.pht.predict(self.index_of(addr, ghr))
    }

    /// Trains the entry selected by `(addr, ghr)` with a resolved outcome.
    ///
    /// The caller must pass the *same* history value that produced the
    /// prediction (i.e. update before shifting the outcome into the GHR),
    /// as hardware does.
    pub fn update(&mut self, addr: VirtAddr, ghr: &GlobalHistoryRegister, outcome: Outcome) {
        let idx = self.index_of(addr, ghr);
        self.pht.update(idx, outcome);
    }

    /// Shared read access to the underlying PHT.
    #[must_use]
    pub fn pht(&self) -> &PatternHistoryTable {
        &self.pht
    }

    /// Exclusive access to the underlying PHT.
    #[must_use]
    pub fn pht_mut(&mut self) -> &mut PatternHistoryTable {
        &mut self.pht
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PhtState;

    #[test]
    fn different_history_selects_different_entry() {
        let p = GsharePredictor::new(1024, CounterKind::TwoBit);
        let mut a = GlobalHistoryRegister::new(10);
        let mut b = GlobalHistoryRegister::new(10);
        a.push(Outcome::Taken);
        b.push(Outcome::NotTaken);
        assert_ne!(p.index_of(0x30_0000, &a), p.index_of(0x30_0000, &b));
    }

    #[test]
    fn learns_an_alternating_pattern() {
        // A strict T,N,T,N... pattern is unlearnable by a bimodal counter
        // but trivially learnable by gshare once per-context counters warm
        // up — the premise of the paper's Fig. 2 experiment.
        let mut ghr = GlobalHistoryRegister::new(8);
        let mut p = GsharePredictor::new(4096, CounterKind::TwoBit);
        let addr = 0x1234;

        // Warm-up: two full alternations so each context sees its outcome
        // at least twice (counters start in a weak state).
        let mut outcome = Outcome::Taken;
        for _ in 0..32 {
            p.update(addr, &ghr, outcome);
            ghr.push(outcome);
            outcome = outcome.flipped();
        }
        // Now every prediction must be correct.
        for _ in 0..32 {
            assert_eq!(p.predict(addr, &ghr), outcome);
            p.update(addr, &ghr, outcome);
            ghr.push(outcome);
            outcome = outcome.flipped();
        }
    }

    #[test]
    fn update_trains_the_context_entry_only() {
        let mut ghr = GlobalHistoryRegister::new(6);
        let mut p = GsharePredictor::new(256, CounterKind::TwoBit);
        p.update(10, &ghr, Outcome::Taken);
        p.update(10, &ghr, Outcome::Taken);
        let trained_idx = p.index_of(10, &ghr);
        assert_eq!(p.pht().state(trained_idx), PhtState::StronglyTaken);
        ghr.push(Outcome::Taken);
        let other_idx = p.index_of(10, &ghr);
        assert_ne!(trained_idx, other_idx);
        assert_eq!(p.pht().state(other_idx), PhtState::WeaklyNotTaken);
    }
}
