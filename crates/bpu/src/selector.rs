//! The selector (chooser) table arbitrating between component predictors.

use crate::counter::Outcome;
use crate::VirtAddr;

/// Which component predictor the selector chose for a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// The 1-level bimodal predictor.
    Bimodal,
    /// The 2-level gshare predictor.
    Gshare,
}

/// Selector table: one 3-bit confidence counter per entry, indexed by the
/// branch address, identifying "which predictor is likely to perform better
/// for a particular branch based on the previous behavior of the predictors"
/// (paper §2).
///
/// Levels 0–3 choose the bimodal predictor, levels 4–7 choose gshare. New
/// entries start at 0 (strongly bimodal), which models the paper's §5.1
/// observation that branches without accumulated history are predicted by
/// the 1-level predictor; the paper's Fig. 2 shows the hand-over to the
/// 2-level predictor takes several pattern repetitions, i.e. the selection
/// hysteresis is deeper than a 2-bit chooser.
///
/// ```
/// use bscope_bpu::{Outcome, SelectorTable};
///
/// let mut sel = SelectorTable::new(4096);
/// assert!(!sel.prefers_gshare(0x30_0000)); // new branches: 1-level mode
/// // gshare beats bimodal four times in a row: selector migrates.
/// for _ in 0..4 {
///     sel.train(0x30_0000, /*bimodal_correct=*/ false, /*gshare_correct=*/ true);
/// }
/// assert!(sel.prefers_gshare(0x30_0000));
/// ```
#[derive(Debug, Clone)]
pub struct SelectorTable {
    levels: Vec<u8>,
    mask: u64,
}

impl SelectorTable {
    /// Maximum confidence level.
    pub const MAX_LEVEL: u8 = 7;
    /// Levels at or above this choose the 2-level (gshare) predictor.
    pub const GSHARE_THRESHOLD: u8 = 4;

    /// Creates a selector table of `size` entries, all strongly bimodal.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "selector size must be a power of two, got {size}");
        SelectorTable { levels: vec![0; size], mask: (size - 1) as u64 }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Entry index for a branch address.
    #[must_use]
    pub fn index_of(&self, addr: VirtAddr) -> usize {
        (addr & self.mask) as usize
    }

    /// Whether the selector currently routes `addr` to the gshare predictor.
    #[must_use]
    pub fn prefers_gshare(&self, addr: VirtAddr) -> bool {
        self.levels[self.index_of(addr)] >= Self::GSHARE_THRESHOLD
    }

    /// The choice for `addr` as an enum.
    #[must_use]
    pub fn choice(&self, addr: VirtAddr) -> Choice {
        if self.prefers_gshare(addr) {
            Choice::Gshare
        } else {
            Choice::Bimodal
        }
    }

    /// Trains the selector with the per-component correctness of a resolved
    /// branch. Hardware chooser tables move only when the components
    /// disagree — when both are right or both wrong there is no signal.
    pub fn train(&mut self, addr: VirtAddr, bimodal_correct: bool, gshare_correct: bool) {
        let idx = self.index_of(addr);
        let level = &mut self.levels[idx];
        match (bimodal_correct, gshare_correct) {
            (false, true) => *level = (*level + 1).min(Self::MAX_LEVEL),
            (true, false) => *level = level.saturating_sub(1),
            _ => {}
        }
    }

    /// Raw confidence level of the entry for `addr` (0–7).
    #[must_use]
    pub fn level(&self, addr: VirtAddr) -> u8 {
        self.levels[self.index_of(addr)]
    }

    /// Forces the entry for `addr` to a raw level.
    ///
    /// # Panics
    ///
    /// Panics if `level > 7`.
    pub fn set_level(&mut self, addr: VirtAddr, level: u8) {
        assert!(level <= Self::MAX_LEVEL, "selector level must be 0..=7, got {level}");
        let idx = self.index_of(addr);
        self.levels[idx] = level;
    }

    /// Resets every entry to strongly bimodal — what the attacker's
    /// randomization block achieves by making the 2-level predictor
    /// inaccurate across the board (paper §5.2 goal 2).
    pub fn reset(&mut self) {
        self.levels.fill(0);
    }

    /// Helper wrapping [`SelectorTable::train`] with predicted/actual
    /// outcomes from both components.
    pub fn train_outcomes(
        &mut self,
        addr: VirtAddr,
        bimodal_pred: Outcome,
        gshare_pred: Outcome,
        actual: Outcome,
    ) {
        self.train(addr, bimodal_pred == actual, gshare_pred == actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_entries_choose_bimodal() {
        let sel = SelectorTable::new(64);
        for addr in 0..64 {
            assert_eq!(sel.choice(addr), Choice::Bimodal);
        }
    }

    #[test]
    fn migration_requires_four_net_wins() {
        let mut sel = SelectorTable::new(64);
        for i in 0..3 {
            sel.train(0, false, true);
            assert!(!sel.prefers_gshare(0), "{} wins are not enough", i + 1);
        }
        sel.train(0, false, true);
        assert!(sel.prefers_gshare(0), "four wins migrate to gshare");
        for _ in 0..4 {
            sel.train(0, true, false);
        }
        assert!(!sel.prefers_gshare(0), "four losses migrate back");
    }

    #[test]
    fn agreement_gives_no_signal() {
        let mut sel = SelectorTable::new(64);
        sel.set_level(0, 5);
        sel.train(0, true, true);
        assert_eq!(sel.level(0), 5);
        sel.train(0, false, false);
        assert_eq!(sel.level(0), 5);
    }

    #[test]
    fn reset_restores_bimodal_everywhere() {
        let mut sel = SelectorTable::new(64);
        for addr in 0..64u64 {
            sel.set_level(addr, 7);
        }
        sel.reset();
        assert!((0..64u64).all(|a| !sel.prefers_gshare(a)));
    }

    #[test]
    fn train_outcomes_matches_train() {
        let mut a = SelectorTable::new(16);
        let mut b = SelectorTable::new(16);
        a.train(5, false, true);
        b.train_outcomes(5, Outcome::NotTaken, Outcome::Taken, Outcome::Taken);
        assert_eq!(a.level(5), b.level(5));
    }

    proptest! {
        /// Levels stay saturated in 0..=3 under arbitrary training.
        #[test]
        fn levels_stay_in_range(train in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
            let mut sel = SelectorTable::new(8);
            for (b, g) in train {
                sel.train(3, b, g);
                prop_assert!(sel.level(3) <= SelectorTable::MAX_LEVEL);
            }
        }
    }
}
