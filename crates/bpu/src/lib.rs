//! Branch prediction unit (BPU) model for the BranchScope reproduction.
//!
//! This crate implements the microarchitectural substrate the BranchScope
//! paper attacks: a hybrid directional branch predictor in the style of
//! McFarling's combining predictor, composed of
//!
//! * a **1-level bimodal predictor** ([`BimodalPredictor`]) — a pattern
//!   history table (PHT) of 2-bit saturating counters indexed directly by
//!   the branch address (Smith, 1981),
//! * a **2-level gshare predictor** ([`GsharePredictor`]) — a PHT indexed by
//!   the branch address XOR-folded with a global history register
//!   (Yeh & Patt, 1991; McFarling, 1993),
//! * a **selector / chooser table** ([`SelectorTable`]) picking the component
//!   that has been more accurate for each branch,
//! * a **branch target buffer** ([`BranchTargetBuffer`]) — a direct-mapped
//!   cache of branch targets whose *presence* information drives the paper's
//!   "new branches are predicted by the 1-level predictor" behaviour (§5.1),
//!
//! all assembled into a [`HybridPredictor`] and parameterised by a
//! [`MicroarchProfile`] that models the three CPUs evaluated in the paper
//! (Sandy Bridge, Haswell, Skylake), including the Skylake peculiarity that
//! makes the strongly-taken and weakly-taken states indistinguishable
//! (Table 1, footnote 1).
//!
//! The hybrid is one of three interchangeable predictor *backends*: the
//! [`DirectionPredictor`] trait captures the surface the simulated core
//! needs, the [`PredictorBackend`] enum provides static dispatch over the
//! hybrid, a TAGE model ([`TageBackend`]) and a perceptron model
//! ([`PerceptronBackend`]), and [`BackendKind`] selects between them — see
//! the [`backend`](crate::backend) module docs for the design rationale.
//!
//! # Example
//!
//! ```
//! use bscope_bpu::{HybridPredictor, MicroarchProfile, Outcome};
//!
//! let mut bpu = HybridPredictor::new(MicroarchProfile::skylake());
//! // Train a branch at address 0x40_0000 to be always taken.
//! for _ in 0..4 {
//!     let prediction = bpu.predict(0x40_0000);
//!     bpu.update(0x40_0000, Outcome::Taken, Some(0x40_0040), &prediction);
//! }
//! let prediction = bpu.predict(0x40_0000);
//! assert_eq!(prediction.direction, Outcome::Taken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod bimodal;
mod btb;
mod counter;
mod ghr;
mod gshare;
mod hybrid;
mod perceptron;
mod pht;
mod profile;
mod selector;
mod stats;
mod tage;

pub use backend::{
    BackendCommon, BackendKind, DirectionPredictor, PerceptronBackend, PredictorBackend,
    TageBackend,
};
pub use bimodal::BimodalPredictor;
pub use btb::{BranchTargetBuffer, BtbEntry};
pub use counter::{Counter, CounterKind, Outcome, PhtState};
pub use ghr::GlobalHistoryRegister;
pub use gshare::GsharePredictor;
pub use hybrid::{HybridPredictor, Prediction, PredictorKind};
pub use perceptron::PerceptronPredictor;
pub use pht::PatternHistoryTable;
pub use profile::{Microarch, MicroarchProfile, TimingParams};
pub use selector::SelectorTable;
pub use stats::PredictionStats;
pub use tage::{TagePrediction, TagePredictor};

/// A virtual address of a branch instruction.
///
/// The paper demonstrates (Fig. 5a) that the PHT indexing function operates
/// at single-byte granularity on virtual addresses, so plain `u64` virtual
/// addresses are the natural index domain for every predictor structure.
pub type VirtAddr = u64;
