//! Microarchitecture profiles for the three CPUs evaluated in the paper.

use crate::counter::CounterKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The microarchitecture families the paper evaluates (§5, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microarch {
    /// Intel Sandy Bridge (i7-2600).
    SandyBridge,
    /// Intel Haswell (i7-4800MQ).
    Haswell,
    /// Intel Skylake (i5-6200U).
    Skylake,
    /// A user-defined configuration.
    Custom,
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Microarch::SandyBridge => "Sandy Bridge",
            Microarch::Haswell => "Haswell",
            Microarch::Skylake => "Skylake",
            Microarch::Custom => "custom",
        })
    }
}

/// Branch-latency parameters of the simulated core, in cycles.
///
/// Calibrated so the timing experiments land in the ranges of the paper's
/// Figures 7–9: correctly-predicted branches measured via `rdtscp` average
/// ≈85 cycles, mispredicted ones ≈135, with tails up to ≈200 and a
/// pronounced extra cost + variance on the first (cold-cache) execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Mean measured latency of a correctly predicted, i-cache-warm branch
    /// (includes `rdtscp` serialisation overhead, as the paper measures).
    pub base_hit_cycles: f64,
    /// Mean extra cycles charged for a misprediction (pipeline restart).
    pub mispredict_penalty: f64,
    /// Standard deviation of the per-measurement Gaussian jitter.
    pub jitter_sigma: f64,
    /// Mean extra latency on a cold i-cache (first) execution.
    pub cold_miss_extra: f64,
    /// Extra jitter standard deviation applied to cold executions.
    pub cold_jitter_sigma: f64,
    /// Probability that a measurement catches an unrelated stall (interrupt,
    /// TLB walk, SMT contention) — models the heavy upper tail in Fig. 7.
    pub spike_probability: f64,
    /// Mean magnitude of such a spike, in cycles.
    pub spike_cycles: f64,
    /// Wall-clock cost of one branch in straight-line (untimed) code.
    /// Distinct from the measured latency above: a `rdtscp`-bracketed
    /// branch serialises the pipeline, while ordinary branches retire at
    /// throughput. This is what advances the core clock.
    pub throughput_cycles: f64,
    /// Extra wall-clock cycles a misprediction stalls the pipeline for.
    pub mispredict_stall: f64,
    /// Extra wall-clock cycles for an instruction-cache miss.
    pub cold_stall: f64,
    /// Extra measured cycles when a *taken* branch misses the BTB (front-end
    /// fetch redirect). This is the signal BTB-presence attacks time.
    pub btb_miss_taken_extra: f64,
    /// Wall-clock counterpart of the BTB-miss redirect bubble.
    pub btb_miss_taken_stall: f64,
}

impl TimingParams {
    /// Parameters matching the paper's measured latency distributions.
    #[must_use]
    pub fn paper_calibrated() -> Self {
        TimingParams {
            base_hit_cycles: 85.0,
            mispredict_penalty: 50.0,
            jitter_sigma: 27.0,
            cold_miss_extra: 22.0,
            cold_jitter_sigma: 26.0,
            spike_probability: 0.02,
            spike_cycles: 45.0,
            throughput_cycles: 2.0,
            mispredict_stall: 18.0,
            cold_stall: 30.0,
            btb_miss_taken_extra: 14.0,
            btb_miss_taken_stall: 8.0,
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::paper_calibrated()
    }
}

/// Full configuration of a simulated branch prediction unit.
///
/// The concrete geometries of Intel BPUs are undocumented; the paper only
/// reverse-engineers what the attack needs (a 2^14-entry PHT with byte-
/// granular modulo indexing on its Skylake machine, larger predictor tables
/// on Skylake/Haswell than Sandy Bridge explaining their lower error rates,
/// and the Skylake counter quirk). The profiles below encode exactly those
/// findings and otherwise use representative sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroarchProfile {
    /// Which family this profile models.
    pub arch: Microarch,
    /// Entries in each component PHT (power of two).
    pub pht_size: usize,
    /// Saturating-counter flavour used by the PHTs.
    pub counter_kind: CounterKind,
    /// Global history register length in bits.
    pub ghr_bits: u32,
    /// Selector (chooser) table entries (power of two).
    pub selector_size: usize,
    /// BTB sets (power of two).
    pub btb_size: usize,
    /// Branch latency model parameters.
    pub timing: TimingParams,
}

impl MicroarchProfile {
    /// Skylake (i5-6200U): 2^14-entry PHT (Fig. 5b), asymmetric counter
    /// (Table 1 footnote), slightly faster pattern learning than the older
    /// parts (Fig. 2) — modelled with a shorter effective history that
    /// warms up in fewer pattern repetitions.
    #[must_use]
    pub fn skylake() -> Self {
        MicroarchProfile {
            arch: Microarch::Skylake,
            pht_size: 16_384,
            counter_kind: CounterKind::SkylakeAsymmetric,
            ghr_bits: 12,
            selector_size: 4_096,
            btb_size: 4_096,
            timing: TimingParams::paper_calibrated(),
        }
    }

    /// Haswell (i7-4800MQ): textbook counter, large tables — error rates on
    /// par with Skylake in Table 2.
    #[must_use]
    pub fn haswell() -> Self {
        MicroarchProfile {
            arch: Microarch::Haswell,
            pht_size: 16_384,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 14,
            selector_size: 4_096,
            btb_size: 4_096,
            timing: TimingParams::paper_calibrated(),
        }
    }

    /// Sandy Bridge (i7-2600): textbook counter with smaller predictor
    /// tables — the paper attributes its markedly higher Table 2 error rates
    /// to the smaller tables of the older design (§7).
    #[must_use]
    pub fn sandy_bridge() -> Self {
        MicroarchProfile {
            arch: Microarch::SandyBridge,
            pht_size: 4_096,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 14,
            selector_size: 1_024,
            btb_size: 2_048,
            timing: TimingParams::paper_calibrated(),
        }
    }

    /// Profile for an arch enum value.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is [`Microarch::Custom`]; build those by hand.
    #[must_use]
    pub fn for_arch(arch: Microarch) -> Self {
        match arch {
            Microarch::SandyBridge => Self::sandy_bridge(),
            Microarch::Haswell => Self::haswell(),
            Microarch::Skylake => Self::skylake(),
            Microarch::Custom => panic!("custom profiles must be constructed explicitly"),
        }
    }

    /// The three paper-evaluated profiles, in paper order (Table 2 lists
    /// Skylake, Haswell, Sandy Bridge).
    #[must_use]
    pub fn paper_machines() -> [MicroarchProfile; 3] {
        [Self::skylake(), Self::haswell(), Self::sandy_bridge()]
    }

    /// Validates internal consistency (power-of-two tables, sane GHR).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.pht_size.is_power_of_two() {
            return Err(format!("pht_size {} is not a power of two", self.pht_size));
        }
        if !self.selector_size.is_power_of_two() {
            return Err(format!("selector_size {} is not a power of two", self.selector_size));
        }
        if !self.btb_size.is_power_of_two() {
            return Err(format!("btb_size {} is not a power of two", self.btb_size));
        }
        if !(1..=64).contains(&self.ghr_bits) {
            return Err(format!("ghr_bits {} out of range 1..=64", self.ghr_bits));
        }
        Ok(())
    }
}

impl Default for MicroarchProfile {
    fn default() -> Self {
        MicroarchProfile::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profiles_validate() {
        for p in MicroarchProfile::paper_machines() {
            p.validate().unwrap();
        }
    }

    #[test]
    fn skylake_uses_asymmetric_counter() {
        assert_eq!(MicroarchProfile::skylake().counter_kind, CounterKind::SkylakeAsymmetric);
        assert_eq!(MicroarchProfile::haswell().counter_kind, CounterKind::TwoBit);
        assert_eq!(MicroarchProfile::sandy_bridge().counter_kind, CounterKind::TwoBit);
    }

    #[test]
    fn skylake_pht_matches_reverse_engineered_size() {
        // Fig. 5b: Hamming minimum at window 2^14 ⇒ 16 384 entries.
        assert_eq!(MicroarchProfile::skylake().pht_size, 16_384);
    }

    #[test]
    fn sandy_bridge_tables_are_smaller() {
        let sb = MicroarchProfile::sandy_bridge();
        let sl = MicroarchProfile::skylake();
        assert!(sb.pht_size < sl.pht_size);
        assert!(sb.btb_size < sl.btb_size);
    }

    #[test]
    fn validate_catches_bad_geometry() {
        let mut p = MicroarchProfile::skylake();
        p.pht_size = 1000;
        assert!(p.validate().is_err());
        let mut p = MicroarchProfile::skylake();
        p.ghr_bits = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn for_arch_round_trips() {
        for arch in [Microarch::SandyBridge, Microarch::Haswell, Microarch::Skylake] {
            assert_eq!(MicroarchProfile::for_arch(arch).arch, arch);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Microarch::SandyBridge.to_string(), "Sandy Bridge");
        assert_eq!(Microarch::Skylake.to_string(), "Skylake");
    }
}
