//! A perceptron directional predictor (Jiménez & Lin, 2001) — a
//! first-class predictor backend (wrapped by
//! [`PerceptronBackend`](crate::PerceptronBackend)).
//!
//! The paper cites perceptron predictors among modern designs (§2, [31]).
//! This is the stack's structural counter-example: per-branch state is a
//! weight vector, not a small saturating counter, so BranchScope's
//! prime-probe FSM strategy has nothing to saturate and the attack degrades
//! toward chance. Build cores on it with
//! [`BackendKind::Perceptron`](crate::BackendKind) or `--bpu perceptron`;
//! the `backend_sweep` experiment and `bscope-mitigations` tests measure
//! the live attack against it, and the `perceptron_ablation` bench covers
//! throughput.

use crate::counter::Outcome;
use crate::ghr::GlobalHistoryRegister;
use crate::VirtAddr;

/// A perceptron branch predictor: one weight vector per table entry, dotted
/// with the global history bits (+1 for taken, −1 for not-taken).
///
/// ```
/// use bscope_bpu::{GlobalHistoryRegister, Outcome, PerceptronPredictor};
///
/// let mut ghr = GlobalHistoryRegister::new(16);
/// let mut p = PerceptronPredictor::new(512, 16);
/// for _ in 0..32 {
///     let pred = p.predict(0x1000, &ghr);
///     p.train(0x1000, &ghr, Outcome::Taken);
///     ghr.push(Outcome::Taken);
///     let _ = pred;
/// }
/// assert_eq!(p.predict(0x1000, &ghr), Outcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// weights[entry][0] is the bias weight; the rest pair with GHR bits.
    weights: Vec<Vec<i16>>,
    history_bits: u32,
    threshold: i32,
    mask: u64,
}

impl PerceptronPredictor {
    /// Creates a perceptron table of `entries` perceptrons over
    /// `history_bits` bits of global history.
    ///
    /// The training threshold uses the θ = ⌊1.93·h + 14⌋ rule from the
    /// original paper.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` is zero
    /// or greater than 63.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two, got {entries}");
        assert!(
            (1..=63).contains(&history_bits),
            "history_bits must be in 1..=63, got {history_bits}"
        );
        PerceptronPredictor {
            weights: vec![vec![0; history_bits as usize + 1]; entries],
            history_bits,
            threshold: (1.93 * f64::from(history_bits) + 14.0) as i32,
            mask: (entries - 1) as u64,
        }
    }

    /// Number of perceptrons in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Table index for a branch address.
    #[must_use]
    pub fn index_of(&self, addr: VirtAddr) -> usize {
        (addr & self.mask) as usize
    }

    /// The history-independent *bias* weight for `addr` — the closest thing
    /// a perceptron has to a per-address directional state.
    #[must_use]
    pub fn bias(&self, addr: VirtAddr) -> i16 {
        self.weights[self.index_of(addr)][0]
    }

    /// Overwrites the entry for `addr` with the given bias and all history
    /// weights zeroed — the ground-truth hook backing
    /// [`DirectionPredictor::set_pht_state`](crate::DirectionPredictor::set_pht_state).
    pub fn set_entry(&mut self, addr: VirtAddr, bias: i16) {
        let idx = self.index_of(addr);
        let w = &mut self.weights[idx];
        w.fill(0);
        w[0] = bias;
    }

    fn output(&self, addr: VirtAddr, ghr: &GlobalHistoryRegister) -> i32 {
        let w = &self.weights[self.index_of(addr)];
        let hist = ghr.value();
        let mut y = i32::from(w[0]);
        for bit in 0..self.history_bits.min(ghr.len()) {
            let x = if (hist >> bit) & 1 == 1 { 1 } else { -1 };
            y += i32::from(w[bit as usize + 1]) * x;
        }
        y
    }

    /// Predicted direction for `addr` under history `ghr`.
    #[must_use]
    pub fn predict(&self, addr: VirtAddr, ghr: &GlobalHistoryRegister) -> Outcome {
        Outcome::from_bool(self.output(addr, ghr) >= 0)
    }

    /// Trains the perceptron on a resolved outcome (call before shifting the
    /// outcome into the GHR, as with gshare).
    pub fn train(&mut self, addr: VirtAddr, ghr: &GlobalHistoryRegister, outcome: Outcome) {
        let y = self.output(addr, ghr);
        let t: i32 = if outcome.is_taken() { 1 } else { -1 };
        let mispredicted = (y >= 0) != outcome.is_taken();
        if mispredicted || y.abs() <= self.threshold {
            let hist = ghr.value();
            let history_bits = self.history_bits.min(ghr.len());
            let idx = self.index_of(addr);
            let w = &mut self.weights[idx];
            w[0] = w[0].saturating_add(t as i16).clamp(-128, 127);
            for bit in 0..history_bits {
                let x: i32 = if (hist >> bit) & 1 == 1 { 1 } else { -1 };
                let idx = bit as usize + 1;
                w[idx] = w[idx].saturating_add((t * x) as i16).clamp(-128, 127);
            }
        }
    }

    /// Convenience: predict, train, and report correctness in one call.
    pub fn execute(
        &mut self,
        addr: VirtAddr,
        ghr: &mut GlobalHistoryRegister,
        outcome: Outcome,
    ) -> bool {
        let pred = self.predict(addr, ghr);
        self.train(addr, ghr, outcome);
        ghr.push(outcome);
        pred == outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut ghr = GlobalHistoryRegister::new(8);
        let mut p = PerceptronPredictor::new(64, 8);
        for _ in 0..16 {
            p.execute(0x42, &mut ghr, Outcome::Taken);
        }
        assert_eq!(p.predict(0x42, &ghr), Outcome::Taken);
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut ghr = GlobalHistoryRegister::new(8);
        let mut p = PerceptronPredictor::new(64, 8);
        let mut outcome = Outcome::Taken;
        for _ in 0..64 {
            p.execute(0x42, &mut ghr, outcome);
            outcome = outcome.flipped();
        }
        let mut correct = 0;
        for _ in 0..20 {
            if p.execute(0x42, &mut ghr, outcome) {
                correct += 1;
            }
            outcome = outcome.flipped();
        }
        assert!(correct >= 19, "perceptron should master T/N alternation, got {correct}/20");
    }

    #[test]
    fn weights_stay_bounded() {
        let mut ghr = GlobalHistoryRegister::new(8);
        let mut p = PerceptronPredictor::new(16, 8);
        for i in 0..5_000u64 {
            p.execute(3, &mut ghr, Outcome::from_bool(i % 7 < 3));
        }
        for w in &p.weights[p.index_of(3)] {
            assert!((-128..=127).contains(&i32::from(*w)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_entry_count() {
        let _ = PerceptronPredictor::new(100, 8);
    }
}
