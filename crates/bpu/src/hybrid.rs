//! The combined (hybrid) branch predictor — Figure 1 of the paper.

use crate::bimodal::BimodalPredictor;
use crate::btb::BranchTargetBuffer;
use crate::counter::{Outcome, PhtState};
use crate::ghr::GlobalHistoryRegister;
use crate::gshare::GsharePredictor;
use crate::profile::MicroarchProfile;
use crate::selector::SelectorTable;
use crate::stats::PredictionStats;
use crate::VirtAddr;

/// Which component produced the final direction prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// The 1-level bimodal predictor (new branches, or selector preference).
    Bimodal,
    /// The 2-level gshare predictor (selector preference on known branches).
    Gshare,
}

/// Everything the front end produced for one branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Final predicted direction.
    pub direction: Outcome,
    /// Component the selection logic used.
    pub used: PredictorKind,
    /// What the bimodal component predicted.
    pub bimodal: Outcome,
    /// What the gshare component predicted.
    pub gshare: Outcome,
    /// Whether the branch hit in the BTB (i.e. was recently seen taken).
    pub btb_hit: bool,
    /// Predicted target when the direction is taken and the BTB hit.
    pub target: Option<VirtAddr>,
}

/// The hybrid direction predictor of Figure 1: bimodal + gshare PHTs, a
/// selector table, a GHR and a BTB.
///
/// # Selection logic
///
/// The paper's §5.1 experiments establish that *branches with no accumulated
/// history are predicted by the 1-level predictor*, with the 2-level
/// predictor taking over only after several repetitions of a learnable
/// pattern. We model this with the BTB as the presence signal: a branch that
/// misses in the BTB is predicted by the bimodal PHT alone; a branch that
/// hits is arbitrated by the selector table, which itself starts strongly
/// biased to the bimodal side and migrates per-branch as gshare proves more
/// accurate.
///
/// # Example
///
/// ```
/// use bscope_bpu::{HybridPredictor, MicroarchProfile, Outcome, PredictorKind};
///
/// let mut bpu = HybridPredictor::new(MicroarchProfile::haswell());
/// let p = bpu.predict(0x30_0000);
/// assert_eq!(p.used, PredictorKind::Bimodal, "new branches use the 1-level predictor");
/// bpu.update(0x30_0000, Outcome::Taken, None, &p);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    profile: MicroarchProfile,
    bimodal: BimodalPredictor,
    gshare: GsharePredictor,
    selector: SelectorTable,
    btb: BranchTargetBuffer,
    ghr: GlobalHistoryRegister,
    stats: PredictionStats,
}

impl HybridPredictor {
    /// Builds a predictor from a microarchitecture profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`MicroarchProfile::validate`].
    #[must_use]
    pub fn new(profile: MicroarchProfile) -> Self {
        profile.validate().expect("invalid microarchitecture profile");
        HybridPredictor {
            bimodal: BimodalPredictor::new(profile.pht_size, profile.counter_kind),
            gshare: GsharePredictor::new(profile.pht_size, profile.counter_kind),
            selector: SelectorTable::new(profile.selector_size),
            btb: BranchTargetBuffer::new(profile.btb_size),
            ghr: GlobalHistoryRegister::new(profile.ghr_bits),
            stats: PredictionStats::new(),
            profile,
        }
    }

    /// The profile this predictor was built from.
    #[must_use]
    pub fn profile(&self) -> &MicroarchProfile {
        &self.profile
    }

    /// Produces the front-end prediction for the branch at `addr`.
    #[must_use]
    pub fn predict(&self, addr: VirtAddr) -> Prediction {
        let bimodal = self.bimodal.predict(addr);
        let gshare = self.gshare.predict(addr, &self.ghr);
        let target = self.btb.lookup(addr);
        let btb_hit = target.is_some();
        let used = if btb_hit && self.selector.prefers_gshare(addr) {
            PredictorKind::Gshare
        } else {
            PredictorKind::Bimodal
        };
        let direction = match used {
            PredictorKind::Bimodal => bimodal,
            PredictorKind::Gshare => gshare,
        };
        Prediction {
            direction,
            used,
            bimodal,
            gshare,
            btb_hit,
            target: if direction.is_taken() { target } else { None },
        }
    }

    /// Commits a resolved branch: trains both component PHTs, the selector
    /// and the GHR, and installs the BTB entry for taken branches.
    ///
    /// `prediction` must be the value returned by [`HybridPredictor::predict`]
    /// for this same dynamic branch (hardware trains against the history
    /// state that produced the prediction). `target` is the branch target to
    /// install when taken; `None` uses the fall-through convention
    /// `addr + 2` (a two-byte conditional jump, as in the paper's Listing 2
    /// disassembly).
    pub fn update(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
        prediction: &Prediction,
    ) {
        self.bimodal.update(addr, outcome);
        self.gshare.update(addr, &self.ghr, outcome);
        // The selector observes component accuracy only for branches it
        // actually arbitrates (BTB-resident ones); this keeps single-shot
        // spy branches from perturbing chooser state, matching the paper's
        // "new branch ⇒ 1-level" behaviour.
        if prediction.btb_hit {
            self.selector
                .train_outcomes(addr, prediction.bimodal, prediction.gshare, outcome);
        }
        self.ghr.push(outcome);
        if outcome.is_taken() {
            // Selection state is allocated per branch together with its BTB
            // entry: when the entry is (re)allocated for a new branch, the
            // chooser for that slot restarts strongly bimodal. This is what
            // makes "branches with no accumulated history use the 1-level
            // predictor" (§5.1) hold *stably* — a branch whose BTB entry was
            // evicted re-enters the BPU as a new branch, chooser included.
            let same_branch_resident = self.btb.contains(addr);
            self.btb.insert(addr, target.unwrap_or(addr + 2));
            if !same_branch_resident {
                self.selector.set_level(addr, 0);
            }
        }
        self.stats
            .record(prediction.used == PredictorKind::Gshare, prediction.direction != outcome);
    }

    /// Predicts and immediately commits one dynamic branch, returning the
    /// prediction and whether it was correct. This is the common fast path
    /// for simulated execution.
    pub fn execute(
        &mut self,
        addr: VirtAddr,
        outcome: Outcome,
        target: Option<VirtAddr>,
    ) -> (Prediction, bool) {
        let prediction = self.predict(addr);
        self.update(addr, outcome, target, &prediction);
        (prediction, prediction.direction == outcome)
    }

    /// Architectural state of the *bimodal* PHT entry for `addr` — the state
    /// BranchScope primes and probes.
    #[must_use]
    pub fn bimodal_state(&self, addr: VirtAddr) -> PhtState {
        self.bimodal.state(addr)
    }

    /// Read access to the bimodal component.
    #[must_use]
    pub fn bimodal(&self) -> &BimodalPredictor {
        &self.bimodal
    }

    /// Exclusive access to the bimodal component.
    #[must_use]
    pub fn bimodal_mut(&mut self) -> &mut BimodalPredictor {
        &mut self.bimodal
    }

    /// Read access to the gshare component.
    #[must_use]
    pub fn gshare(&self) -> &GsharePredictor {
        &self.gshare
    }

    /// Exclusive access to the gshare component.
    #[must_use]
    pub fn gshare_mut(&mut self) -> &mut GsharePredictor {
        &mut self.gshare
    }

    /// Read access to the selector table.
    #[must_use]
    pub fn selector(&self) -> &SelectorTable {
        &self.selector
    }

    /// Exclusive access to the selector table.
    #[must_use]
    pub fn selector_mut(&mut self) -> &mut SelectorTable {
        &mut self.selector
    }

    /// Read access to the BTB.
    #[must_use]
    pub fn btb(&self) -> &BranchTargetBuffer {
        &self.btb
    }

    /// Exclusive access to the BTB.
    #[must_use]
    pub fn btb_mut(&mut self) -> &mut BranchTargetBuffer {
        &mut self.btb
    }

    /// Read access to the global history register.
    #[must_use]
    pub fn ghr(&self) -> &GlobalHistoryRegister {
        &self.ghr
    }

    /// Exclusive access to the global history register.
    #[must_use]
    pub fn ghr_mut(&mut self) -> &mut GlobalHistoryRegister {
        &mut self.ghr
    }

    /// Cumulative prediction statistics.
    #[must_use]
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }

    /// Resets the statistics counters (predictor state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Resets all predictor state to power-on defaults.
    pub fn reset(&mut self) {
        *self = HybridPredictor::new(self.profile.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterKind;
    use crate::Microarch;

    fn small_profile() -> MicroarchProfile {
        MicroarchProfile {
            arch: Microarch::Custom,
            pht_size: 1_024,
            counter_kind: CounterKind::TwoBit,
            ghr_bits: 10,
            selector_size: 256,
            btb_size: 256,
            timing: Default::default(),
        }
    }

    #[test]
    fn new_branch_uses_bimodal() {
        let bpu = HybridPredictor::new(small_profile());
        let p = bpu.predict(0x5000);
        assert_eq!(p.used, PredictorKind::Bimodal);
        assert!(!p.btb_hit);
    }

    #[test]
    fn taken_branch_installs_btb_entry() {
        let mut bpu = HybridPredictor::new(small_profile());
        let (_, _) = bpu.execute(0x5000, Outcome::Taken, Some(0x6000));
        assert_eq!(bpu.btb().lookup(0x5000), Some(0x6000));
        let p = bpu.predict(0x5000);
        assert!(p.btb_hit);
    }

    #[test]
    fn not_taken_branch_does_not_install_btb_entry() {
        let mut bpu = HybridPredictor::new(small_profile());
        bpu.execute(0x5000, Outcome::NotTaken, None);
        assert!(!bpu.btb().contains(0x5000));
    }

    #[test]
    fn default_target_is_fall_through_plus_two() {
        let mut bpu = HybridPredictor::new(small_profile());
        bpu.execute(0x5000, Outcome::Taken, None);
        assert_eq!(bpu.btb().lookup(0x5000), Some(0x5002));
    }

    #[test]
    fn always_taken_branch_converges_quickly() {
        // §5.1: "the 1-level predictor will converge to the strongly taken
        // state after 2-3 executions".
        let mut bpu = HybridPredictor::new(small_profile());
        for _ in 0..3 {
            bpu.execute(0x100, Outcome::Taken, None);
        }
        assert_eq!(bpu.bimodal_state(0x100), PhtState::StronglyTaken);
        let (p, correct) = bpu.execute(0x100, Outcome::Taken, None);
        assert!(correct);
        assert_eq!(p.direction, Outcome::Taken);
    }

    #[test]
    fn irregular_pattern_eventually_uses_gshare() {
        // The Fig. 2 mechanism: an irregular repeating pattern is
        // unpredictable for the bimodal component but learnable by gshare;
        // the selector must eventually migrate.
        let mut bpu = HybridPredictor::new(small_profile());
        let pattern = [true, false, false, true, true, true, false, true, false, false];
        let addr = 0x700;
        for _ in 0..12 {
            for &bit in &pattern {
                bpu.execute(addr, Outcome::from_bool(bit), None);
            }
        }
        // After many repetitions the pattern must be predicted perfectly.
        let before = bpu.stats();
        for &bit in pattern.iter().cycle().take(30) {
            bpu.execute(addr, Outcome::from_bool(bit), None);
        }
        let delta = bpu.stats().since(&before);
        assert_eq!(delta.mispredictions, 0, "pattern fully learned: {delta}");
        assert!(delta.gshare_used > 0, "gshare must be in use");
    }

    #[test]
    fn selector_not_trained_on_btb_miss() {
        let mut bpu = HybridPredictor::new(small_profile());
        // Single not-taken execution: BTB miss, selector untouched.
        bpu.execute(0x300, Outcome::NotTaken, None);
        assert_eq!(bpu.selector().level(0x300), 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut bpu = HybridPredictor::new(small_profile());
        bpu.execute(0x1, Outcome::Taken, None);
        bpu.execute(0x1, Outcome::Taken, None);
        assert_eq!(bpu.stats().branches, 2);
        bpu.reset_stats();
        assert_eq!(bpu.stats().branches, 0);
    }

    #[test]
    fn reset_clears_all_structures() {
        let mut bpu = HybridPredictor::new(small_profile());
        for i in 0..50 {
            bpu.execute(i * 3, Outcome::Taken, None);
        }
        bpu.reset();
        assert_eq!(bpu.btb().occupancy(), 0);
        assert_eq!(bpu.ghr().value(), 0);
        assert_eq!(bpu.stats().branches, 0);
        assert_eq!(bpu.bimodal_state(0), PhtState::WeaklyNotTaken);
    }

    #[test]
    fn btb_reallocation_resets_selection_state() {
        let mut bpu = HybridPredictor::new(small_profile());
        // Establish a branch and migrate its chooser toward gshare.
        bpu.execute(0x100, Outcome::Taken, None);
        bpu.selector_mut().set_level(0x100, 7);
        // An aliasing branch (same BTB set, different tag) takes the slot…
        let alias = 0x100 + 256; // btb_size = 256 in small_profile
        bpu.execute(alias, Outcome::Taken, None);
        // …so when the original branch is seen taken again it is a *new*
        // branch to the BPU and its chooser restarts bimodal.
        bpu.execute(0x100, Outcome::Taken, None);
        assert_eq!(bpu.selector().level(0x100), 0);
    }

    #[test]
    fn resident_branch_keeps_selection_state() {
        let mut bpu = HybridPredictor::new(small_profile());
        bpu.execute(0x100, Outcome::Taken, None);
        bpu.selector_mut().set_level(0x100, 7);
        bpu.execute(0x100, Outcome::Taken, None);
        assert!(bpu.selector().level(0x100) >= 2, "no reallocation, no reset (training may move it by one)");
    }

    #[test]
    fn cross_address_collision_in_bimodal_pht() {
        // Same-index addresses collide in the bimodal PHT — the attack's
        // core collision primitive (paper §4).
        let mut bpu = HybridPredictor::new(small_profile());
        let victim = 0x30_0000u64;
        let spy = victim + 1_024; // same index, PHT is 1 024 entries
        for _ in 0..3 {
            bpu.execute(victim, Outcome::Taken, None);
        }
        assert_eq!(bpu.bimodal_state(spy), PhtState::StronglyTaken);
    }
}
