//! End-to-end tests of the `experiments` binary: CLI parsing (hex seeds,
//! named errors, duplicate warnings, user-ordered selection), experiment
//! isolation under injected faults, and the partial `--json` report.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn run(args: &[&str]) -> Output {
    experiments().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch path inside the target directory (kept out of the source tree).
fn scratch(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_BIN_EXE_experiments"));
    p.pop();
    p.push(name);
    p
}

/// Whether a real JSON parser is available to cross-check the hand-rolled
/// emitters; the checks degrade to a skip note where the container lacks
/// python3.
fn python3_available() -> bool {
    Command::new("python3")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Pipes `payload` through a python3 one-liner that must accept it.
fn assert_python_accepts(program: &str, payload: &str, what: &str) {
    use std::io::Write as _;
    if !python3_available() {
        eprintln!("note: python3 unavailable, skipping real-parser check for {what}");
        return;
    }
    let mut child = Command::new("python3")
        .args(["-c", program])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("python3 spawns");
    child.stdin.as_mut().unwrap().write_all(payload.as_bytes()).expect("payload piped");
    let out = child.wait_with_output().expect("python3 exits");
    assert!(
        out.status.success(),
        "{what} rejected by a real JSON parser: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Cheap well-formedness check for the hand-rolled JSON.
fn assert_balanced(s: &str) {
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            s.chars().filter(|&c| c == open).count(),
            s.chars().filter(|&c| c == close).count(),
            "unbalanced {open}{close} in report:\n{s}"
        );
    }
}

#[test]
fn hex_and_decimal_seeds_agree() {
    let hex = run(&["--quick", "--seed", "0xB5C09E01", "--threads", "2", "table1"]);
    let dec = run(&["--quick", "--seed", "3049299457", "--threads", "2", "table1"]);
    assert!(hex.status.success(), "hex seed run failed: {}", stderr(&hex));
    assert!(dec.status.success());
    // Wall-clock lines differ between any two runs; everything else is
    // deterministic and must match.
    let strip = |out: &Output| {
        stdout(out).lines().filter(|l| !l.contains("finished in")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&hex), strip(&dec), "0xB5C09E01 and 3049299457 must be the same seed");
}

#[test]
fn bad_flag_values_name_the_flag_before_usage() {
    let out = run(&["--seed", "xyz", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: invalid value 'xyz' for --seed"), "stderr: {err}");
    assert!(err.contains("usage:"), "usage follows the error: {err}");
    let error_at = err.find("error:").unwrap();
    let usage_at = err.find("usage:").unwrap();
    assert!(error_at < usage_at, "the specific error precedes the usage text");

    let out = run(&["--threads", "two", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid value 'two' for --threads"), "{}", stderr(&out));

    let out = run(&["table1", "--seed"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--seed requires a value"), "{}", stderr(&out));

    let out = run(&["nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown experiment 'nonesuch'"), "{}", stderr(&out));

    let out = run(&["--frobnicate", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag '--frobnicate'"), "{}", stderr(&out));
}

#[test]
fn bad_bpu_value_names_the_flag_before_usage() {
    let out = run(&["--bpu", "neural", "table2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("error: invalid value 'neural' for --bpu: unknown backend 'neural'"),
        "stderr: {err}"
    );
    assert!(err.contains("expected hybrid, tage, or perceptron"), "stderr: {err}");
    assert!(err.find("error:").unwrap() < err.find("usage:").unwrap(), "error precedes usage");

    let out = run(&["table2", "--bpu"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--bpu requires a value"), "{}", stderr(&out));
}

#[test]
fn json_entries_record_the_backend_that_ran() {
    let json = scratch("cli_backend_report.json");
    let json_str = json.to_str().unwrap();
    let out = run(&[
        "--quick",
        "--threads",
        "2",
        "--bpu",
        "tage",
        "--json",
        json_str,
        "backend_sweep",
        "table1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    // Backend-agnostic experiments run the hybrid whatever --bpu says, and
    // the harness says so up front.
    assert!(
        stderr(&out).contains("note: --bpu tage applies to backend-aware experiments only"),
        "stderr: {}",
        stderr(&out)
    );
    let report = std::fs::read_to_string(&json).expect("report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    let entry_of = |name: &str| {
        report
            .split("\"name\": ")
            .find(|chunk| chunk.starts_with(&format!("\"{name}\"")))
            .unwrap_or_else(|| panic!("entry for {name} in report:\n{report}"))
            .to_owned()
    };
    let sweep = entry_of("backend_sweep");
    assert!(sweep.contains("\"backend\": \"tage\""), "sweep entry honours --bpu: {sweep}");
    // The sweep populates an error-rate and capacity metric per backend.
    for backend in ["hybrid", "tage", "perceptron"] {
        assert!(
            sweep.contains(&format!("\"backend_sweep/{backend}/isolated_error_pct\"")),
            "error metric for {backend}: {sweep}"
        );
        assert!(
            sweep.contains(&format!("\"backend_sweep/{backend}/capacity_bits_per_mcycle\"")),
            "capacity metric for {backend}: {sweep}"
        );
    }
    let table1 = entry_of("table1");
    assert!(
        table1.contains("\"backend\": \"hybrid\""),
        "backend-agnostic entry records the hybrid: {table1}"
    );
}

#[test]
fn inject_fault_rejects_invalid_targets() {
    let out = run(&["--quick", "--inject-fault", "fig2", "fig2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("'fig2' is not trial-parallel"), "stderr: {err}");
    assert!(err.contains("table2"), "valid targets are listed: {err}");

    let out = run(&["--quick", "--inject-fault", "table2:0", "table2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("':K' must be a positive integer"), "{}", stderr(&out));
}

#[test]
fn selection_is_user_ordered_and_duplicates_warn() {
    let out = run(&["--quick", "table1", "fig2", "table1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("warning: duplicate selection 'table1' ignored"),
        "stderr: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    let table1_at = text.find("table1: FSM transition").expect("table1 header");
    let fig2_at = text.find("fig2: 2-level predictor").expect("fig2 header");
    assert!(table1_at < fig2_at, "experiments run in the order given, not registry order");
    assert_eq!(text.matches("table1: FSM transition").count(), 1, "duplicate runs once");
}

#[test]
fn injected_fault_isolates_the_experiment_and_writes_a_partial_report() {
    let json = scratch("cli_fault_report.json");
    let json_str = json.to_str().unwrap();
    let out = run(&[
        "--quick",
        "--threads",
        "2",
        "--json",
        json_str,
        "--inject-fault",
        "table2",
        "table2",
        "table1",
    ]);
    // A failed experiment means a nonzero exit, but the run continues...
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("[table2 FAILED"), "failure is announced: {text}");
    assert!(text.contains("[table1 finished"), "later experiments still run: {text}");
    let err = stderr(&out);
    assert!(err.contains("injected fault"), "failure cause is reported: {err}");
    assert!(err.contains("trial 0"), "failing trial index is reported: {err}");

    // ...and the partial report is written and well-formed.
    let report = std::fs::read_to_string(&json).expect("partial report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    assert!(report.contains("\"failed\": [\"table2\"]"), "report: {report}");
    assert!(report.contains("\"status\": \"failed\""), "report: {report}");
    assert!(report.contains("injected fault"), "report carries the cause: {report}");
    assert!(report.contains("\"name\": \"table1\""), "completed experiment present: {report}");
    assert!(report.contains("\"status\": \"ok\""), "completed experiment ok: {report}");
    // table1's metrics must not be polluted by table2's pre-panic metrics:
    // split per entry and check metric keys stay with their experiment.
    let table1_entry = report.split("\"name\": \"table1\"").nth(1).expect("table1 entry");
    assert!(!table1_entry.contains("table2/"), "no metric leak across experiments: {report}");
}

#[test]
fn json_report_survives_a_real_parser() {
    let json = scratch("cli_parser_report.json");
    let out = run(&["--quick", "--threads", "2", "--json", json.to_str().unwrap(), "table1", "fig2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let report = std::fs::read_to_string(&json).expect("report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    // The hand-rolled emitter must satisfy an actual parser, not just our
    // own balance heuristics.
    assert_python_accepts("import json,sys; json.load(sys.stdin)", &report, "--json report");
}

#[test]
fn trace_is_deterministic_and_thread_count_invariant() {
    let capture = |name: &str, threads: &str| {
        let path = scratch(name);
        let out = experiments()
            .args(["--quick", "--seed", "0xB5C09E01", "--threads", threads])
            .args(["--trace", path.to_str().unwrap(), "fig4"])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let s = std::fs::read_to_string(&path).expect("trace written");
        std::fs::remove_file(&path).ok();
        s
    };
    let a = capture("cli_trace_a.jsonl", "1");
    let b = capture("cli_trace_b.jsonl", "1");
    assert_eq!(a, b, "same-seed runs must produce byte-identical traces");
    let c = capture("cli_trace_c.jsonl", "4");
    assert_eq!(a, c, "traces must be identical for every thread count");

    assert!(!a.is_empty(), "fig4 is trial-parallel, so the trace has events");
    // The file is already in (trial, seq) order: a stable sort on that key
    // must be the identity permutation.
    let field = |line: &str, name: &str| -> Option<u64> {
        line.split(&format!("\"{name}\":")).nth(1).map(|rest| {
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
        })
    };
    let lines: Vec<&str> = a.lines().collect();
    let keys: Vec<(u64, u64)> = lines
        .iter()
        .map(|l| {
            // trial_begin/trial_end carry no seq: they bracket the trial's
            // events, so they key below/above any event sequence number.
            let seq = match field(l, "seq") {
                Some(s) => s,
                None if l.contains("\"type\":\"trial_begin\"") => 0,
                None => u64::MAX,
            };
            (field(l, "trial").expect("every line is trial-stamped"), seq)
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort(); // stable
    assert_eq!(keys, sorted, "trace lines arrive sorted by (trial, seq)");
    // Every trial opened is closed, with an accurate retained-event count.
    for line in &lines {
        if line.contains("\"type\":\"trial_end\"") {
            let trial = field(line, "trial").unwrap();
            let events = field(line, "events").unwrap();
            let observed = lines
                .iter()
                .filter(|l| l.contains("\"seq\":") && field(l, "trial") == Some(trial))
                .count() as u64;
            assert_eq!(events, observed, "trial {trial} event count");
        }
    }
    // Each line is a complete JSON object by a real parser's standards.
    assert_python_accepts(
        "import json,sys; [json.loads(l) for l in sys.stdin if l.strip()]",
        &a,
        "--trace JSONL",
    );
}

#[test]
fn metrics_flag_aggregates_traces_into_the_report() {
    let json = scratch("cli_metrics_report.json");
    let out = run(&[
        "--quick",
        "--threads",
        "2",
        "--metrics",
        "--json",
        json.to_str().unwrap(),
        "fig4",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("trace metrics"), "summary printed: {}", stdout(&out));
    let report = std::fs::read_to_string(&json).expect("report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    for key in
        ["trace/branches", "trace/spans/randomize", "trace/branch_latency_p50", "trace/branch_latency_mean"]
    {
        assert!(report.contains(&format!("\"{key}\"")), "{key} in report:\n{report}");
    }
}

#[test]
fn fault_free_runs_are_unaffected_by_fault_plumbing() {
    let json_a = scratch("cli_nofault_a.json");
    let json_b = scratch("cli_nofault_b.json");
    let base = ["--quick", "--seed", "0xB5C09E01", "table2"];
    let a = experiments().args(base).args(["--threads", "1", "--json", json_a.to_str().unwrap()]).output().unwrap();
    let b = experiments().args(base).args(["--threads", "8", "--json", json_b.to_str().unwrap()]).output().unwrap();
    assert!(a.status.success() && b.status.success());
    let strip = |p: &PathBuf| {
        let s = std::fs::read_to_string(p).unwrap();
        std::fs::remove_file(p).ok();
        // Only wall-clock and the echoed thread count may differ.
        s.lines()
            .filter(|l| !l.contains("wall_seconds") && !l.contains("\"threads\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&json_a), strip(&json_b), "metrics identical across thread counts");
}
