//! End-to-end tests of the `experiments` binary: CLI parsing (hex seeds,
//! named errors, duplicate warnings, user-ordered selection), experiment
//! isolation under injected faults, and the partial `--json` report.

use std::path::PathBuf;
use std::process::{Command, Output};

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn run(args: &[&str]) -> Output {
    experiments().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch path inside the target directory (kept out of the source tree).
fn scratch(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_BIN_EXE_experiments"));
    p.pop();
    p.push(name);
    p
}

/// Cheap well-formedness check for the hand-rolled JSON.
fn assert_balanced(s: &str) {
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            s.chars().filter(|&c| c == open).count(),
            s.chars().filter(|&c| c == close).count(),
            "unbalanced {open}{close} in report:\n{s}"
        );
    }
}

#[test]
fn hex_and_decimal_seeds_agree() {
    let hex = run(&["--quick", "--seed", "0xB5C09E01", "--threads", "2", "table1"]);
    let dec = run(&["--quick", "--seed", "3049299457", "--threads", "2", "table1"]);
    assert!(hex.status.success(), "hex seed run failed: {}", stderr(&hex));
    assert!(dec.status.success());
    // Wall-clock lines differ between any two runs; everything else is
    // deterministic and must match.
    let strip = |out: &Output| {
        stdout(out).lines().filter(|l| !l.contains("finished in")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&hex), strip(&dec), "0xB5C09E01 and 3049299457 must be the same seed");
}

#[test]
fn bad_flag_values_name_the_flag_before_usage() {
    let out = run(&["--seed", "xyz", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: invalid value 'xyz' for --seed"), "stderr: {err}");
    assert!(err.contains("usage:"), "usage follows the error: {err}");
    let error_at = err.find("error:").unwrap();
    let usage_at = err.find("usage:").unwrap();
    assert!(error_at < usage_at, "the specific error precedes the usage text");

    let out = run(&["--threads", "two", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid value 'two' for --threads"), "{}", stderr(&out));

    let out = run(&["table1", "--seed"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--seed requires a value"), "{}", stderr(&out));

    let out = run(&["nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown experiment 'nonesuch'"), "{}", stderr(&out));

    let out = run(&["--frobnicate", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag '--frobnicate'"), "{}", stderr(&out));
}

#[test]
fn bad_bpu_value_names_the_flag_before_usage() {
    let out = run(&["--bpu", "neural", "table2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("error: invalid value 'neural' for --bpu: unknown backend 'neural'"),
        "stderr: {err}"
    );
    assert!(err.contains("expected hybrid, tage, or perceptron"), "stderr: {err}");
    assert!(err.find("error:").unwrap() < err.find("usage:").unwrap(), "error precedes usage");

    let out = run(&["table2", "--bpu"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--bpu requires a value"), "{}", stderr(&out));
}

#[test]
fn json_entries_record_the_backend_that_ran() {
    let json = scratch("cli_backend_report.json");
    let json_str = json.to_str().unwrap();
    let out = run(&[
        "--quick",
        "--threads",
        "2",
        "--bpu",
        "tage",
        "--json",
        json_str,
        "backend_sweep",
        "table1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    // Backend-agnostic experiments run the hybrid whatever --bpu says, and
    // the harness says so up front.
    assert!(
        stderr(&out).contains("note: --bpu tage applies to backend-aware experiments only"),
        "stderr: {}",
        stderr(&out)
    );
    let report = std::fs::read_to_string(&json).expect("report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    let entry_of = |name: &str| {
        report
            .split("\"name\": ")
            .find(|chunk| chunk.starts_with(&format!("\"{name}\"")))
            .unwrap_or_else(|| panic!("entry for {name} in report:\n{report}"))
            .to_owned()
    };
    let sweep = entry_of("backend_sweep");
    assert!(sweep.contains("\"backend\": \"tage\""), "sweep entry honours --bpu: {sweep}");
    // The sweep populates an error-rate and capacity metric per backend.
    for backend in ["hybrid", "tage", "perceptron"] {
        assert!(
            sweep.contains(&format!("\"backend_sweep/{backend}/isolated_error_pct\"")),
            "error metric for {backend}: {sweep}"
        );
        assert!(
            sweep.contains(&format!("\"backend_sweep/{backend}/capacity_bits_per_mcycle\"")),
            "capacity metric for {backend}: {sweep}"
        );
    }
    let table1 = entry_of("table1");
    assert!(
        table1.contains("\"backend\": \"hybrid\""),
        "backend-agnostic entry records the hybrid: {table1}"
    );
}

#[test]
fn inject_fault_rejects_invalid_targets() {
    let out = run(&["--quick", "--inject-fault", "fig2", "fig2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("'fig2' is not trial-parallel"), "stderr: {err}");
    assert!(err.contains("table2"), "valid targets are listed: {err}");

    let out = run(&["--quick", "--inject-fault", "table2:0", "table2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("':K' must be a positive integer"), "{}", stderr(&out));
}

#[test]
fn selection_is_user_ordered_and_duplicates_warn() {
    let out = run(&["--quick", "table1", "fig2", "table1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("warning: duplicate selection 'table1' ignored"),
        "stderr: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    let table1_at = text.find("table1: FSM transition").expect("table1 header");
    let fig2_at = text.find("fig2: 2-level predictor").expect("fig2 header");
    assert!(table1_at < fig2_at, "experiments run in the order given, not registry order");
    assert_eq!(text.matches("table1: FSM transition").count(), 1, "duplicate runs once");
}

#[test]
fn injected_fault_isolates_the_experiment_and_writes_a_partial_report() {
    let json = scratch("cli_fault_report.json");
    let json_str = json.to_str().unwrap();
    let out = run(&[
        "--quick",
        "--threads",
        "2",
        "--json",
        json_str,
        "--inject-fault",
        "table2",
        "table2",
        "table1",
    ]);
    // A failed experiment means a nonzero exit, but the run continues...
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("[table2 FAILED"), "failure is announced: {text}");
    assert!(text.contains("[table1 finished"), "later experiments still run: {text}");
    let err = stderr(&out);
    assert!(err.contains("injected fault"), "failure cause is reported: {err}");
    assert!(err.contains("trial 0"), "failing trial index is reported: {err}");

    // ...and the partial report is written and well-formed.
    let report = std::fs::read_to_string(&json).expect("partial report written");
    std::fs::remove_file(&json).ok();
    assert_balanced(&report);
    assert!(report.contains("\"failed\": [\"table2\"]"), "report: {report}");
    assert!(report.contains("\"status\": \"failed\""), "report: {report}");
    assert!(report.contains("injected fault"), "report carries the cause: {report}");
    assert!(report.contains("\"name\": \"table1\""), "completed experiment present: {report}");
    assert!(report.contains("\"status\": \"ok\""), "completed experiment ok: {report}");
    // table1's metrics must not be polluted by table2's pre-panic metrics:
    // split per entry and check metric keys stay with their experiment.
    let table1_entry = report.split("\"name\": \"table1\"").nth(1).expect("table1 entry");
    assert!(!table1_entry.contains("table2/"), "no metric leak across experiments: {report}");
}

#[test]
fn fault_free_runs_are_unaffected_by_fault_plumbing() {
    let json_a = scratch("cli_nofault_a.json");
    let json_b = scratch("cli_nofault_b.json");
    let base = ["--quick", "--seed", "0xB5C09E01", "table2"];
    let a = experiments().args(base).args(["--threads", "1", "--json", json_a.to_str().unwrap()]).output().unwrap();
    let b = experiments().args(base).args(["--threads", "8", "--json", json_b.to_str().unwrap()]).output().unwrap();
    assert!(a.status.success() && b.status.success());
    let strip = |p: &PathBuf| {
        let s = std::fs::read_to_string(p).unwrap();
        std::fs::remove_file(p).ok();
        // Only wall-clock and the echoed thread count may differ.
        s.lines()
            .filter(|l| !l.contains("wall_seconds") && !l.contains("\"threads\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&json_a), strip(&json_b), "metrics identical across thread counts");
}
