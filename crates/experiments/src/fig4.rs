//! Figure 4: stability of randomization blocks (scatter of dominant-pattern
//! frequencies) and the distribution of decoded PHT states.

use crate::common::{metric, trials, with_tracer, Scale};
use bscope_bpu::MicroarchProfile;
use bscope_core::stability::{characterize_block, BlockStability, StabilityConfig, StateDistribution};
use bscope_core::BscopeError;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;

/// Characterises `config.blocks` randomization blocks, one trial per block.
///
/// Each trial builds its own simulated machine (the per-block statistics
/// are i.i.d. across machines) seeded from the runner's per-trial seed, so
/// the result is identical for every thread count — unlike the previous
/// worker-sharded version, where per-worker seeds tied the results to the
/// worker count. Trial seeds derive from `scale.seed ^ 0xF164`, unchanged
/// from when this took a bare seed.
pub fn analyze_parallel(config: &StabilityConfig, scale: &Scale) -> Vec<BlockStability> {
    trials(scale, config.blocks, 0xF164, |idx, trial_seed, tracer| {
        let mut sys = System::new(MicroarchProfile::haswell(), trial_seed)
            .with_noise(NoiseConfig::isolated_core())
            .expect("preset noise is valid");
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        with_tracer(&mut sys, tracer, |sys| {
            characterize_block(sys, spy, config, config.seed + idx as u64)
        })
    })
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    // Fig. 4 characterises block behaviour in the presence of "various
    // system effects"; we run on the 2-bit 16K-entry machine (Haswell
    // profile) with background system activity. The block density is the
    // calibrated 10 updates/entry (see EXPERIMENTS.md on why the uniform-
    // stride model needs a denser block than the paper's 100 000 branches
    // to reach the same per-entry convergence).
    let config = StabilityConfig {
        blocks: scale.n(200, 30),
        reps: scale.n(40, 12),
        updates_per_entry: 10,
        ..StabilityConfig::default()
    };
    NoiseConfig::isolated_core().validate()?;
    let points = analyze_parallel(&config, scale);

    println!(
        "(a) dominant-pattern frequency per block ({} blocks x {} reps/variant, threshold {:.0}%)\n",
        config.blocks,
        config.reps,
        100.0 * config.threshold
    );
    println!("  sample of characterised blocks (TT% , NN%) -> state:");
    for p in points.iter().take(16) {
        println!(
            "    block seed {:>6}: TT {:>3.0}% ({}), NN {:>3.0}% ({}) -> {}",
            p.block_seed,
            100.0 * p.tt_frequency,
            p.tt_dominant,
            100.0 * p.nn_frequency,
            p.nn_dominant,
            p.state,
        );
    }

    let dist = StateDistribution::from_blocks(&points);
    let total = dist.total() as f64;
    println!("\n(b) decoded-state distribution across blocks:");
    for (name, n) in [
        ("ST", dist.st),
        ("WT", dist.wt),
        ("WN", dist.wn),
        ("SN", dist.sn),
        ("dirty", dist.dirty),
        ("unknown", dist.unknown),
    ] {
        println!("    {name:<8} {:>5.1}%  ({n} blocks)", 100.0 * n as f64 / total);
    }
    println!(
        "\npaper: 83% of blocks give stable dominant patterns; the rest are unknown/dirty."
    );
    println!("ours : {:.1}% stable.", 100.0 * dist.stable_fraction());
    metric("fig4/stable_fraction", dist.stable_fraction());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> StabilityConfig {
        StabilityConfig { blocks: 30, reps: 12, updates_per_entry: 10, ..StabilityConfig::default() }
    }

    fn scale_with_threads(threads: usize) -> Scale {
        Scale { threads, ..Scale::quick() }
    }

    #[test]
    fn analysis_is_thread_count_invariant() {
        let config = quick_config();
        let sequential = analyze_parallel(&config, &scale_with_threads(1));
        for threads in [2, 8] {
            assert_eq!(analyze_parallel(&config, &scale_with_threads(threads)), sequential);
        }
    }

    /// Regression pin of the quick-scale stable fraction; fails if the
    /// seed schedule, RNG, or simulator behaviour drifts. Update
    /// deliberately when any of those changes.
    #[test]
    fn quick_scale_stable_fraction_is_pinned() {
        let points = analyze_parallel(&quick_config(), &scale_with_threads(0));
        let fraction = StateDistribution::from_blocks(&points).stable_fraction();
        // Pinned value; update deliberately when the seed schedule, the
        // simulator, or the PRNG stream changes.
        let expected = 0.733_333_333_333_333_3;
        assert_eq!(fraction, expected, "quick-scale fig4 stable fraction drifted");
    }
}
