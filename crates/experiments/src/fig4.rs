//! Figure 4: stability of randomization blocks (scatter of dominant-pattern
//! frequencies) and the distribution of decoded PHT states.

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::stability::{analyze_stability, BlockStability, StabilityConfig, StateDistribution};
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;

/// Characterises `blocks` randomization blocks, fanning the independent
/// per-block experiments out over worker threads (each worker owns its own
/// simulated machine; the per-block statistics are i.i.d. across machines).
fn analyze_parallel(config: &StabilityConfig, threads: usize, seed: u64) -> Vec<BlockStability> {
    let per_worker = config.blocks.div_ceil(threads);
    let mut results: Vec<Vec<BlockStability>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let mut cfg = *config;
            cfg.blocks = per_worker.min(config.blocks - (worker * per_worker).min(config.blocks));
            cfg.seed = config.seed + (worker * per_worker) as u64;
            if cfg.blocks == 0 {
                continue;
            }
            handles.push(scope.spawn(move |_| {
                let mut sys = System::new(MicroarchProfile::haswell(), seed ^ worker as u64)
                    .with_noise(NoiseConfig::isolated_core());
                let spy = sys.spawn("spy", AslrPolicy::Disabled);
                analyze_stability(&mut sys, spy, &cfg)
            }));
        }
        for h in handles {
            results.push(h.join().expect("stability worker panicked"));
        }
    })
    .expect("crossbeam scope");
    results.into_iter().flatten().collect()
}

pub fn run(scale: &Scale) {
    // Fig. 4 characterises block behaviour in the presence of "various
    // system effects"; we run on the 2-bit 16K-entry machine (Haswell
    // profile) with background system activity. The block density is the
    // calibrated 10 updates/entry (see EXPERIMENTS.md on why the uniform-
    // stride model needs a denser block than the paper's 100 000 branches
    // to reach the same per-entry convergence).
    let config = StabilityConfig {
        blocks: scale.n(200, 30),
        reps: scale.n(40, 12),
        updates_per_entry: 10,
        ..StabilityConfig::default()
    };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(16));
    let points = analyze_parallel(&config, threads, scale.seed);

    println!(
        "(a) dominant-pattern frequency per block ({} blocks x {} reps/variant, threshold {:.0}%, {threads} workers)\n",
        config.blocks,
        config.reps,
        100.0 * config.threshold
    );
    println!("  sample of characterised blocks (TT% , NN%) -> state:");
    for p in points.iter().take(16) {
        println!(
            "    block seed {:>6}: TT {:>3.0}% ({}), NN {:>3.0}% ({}) -> {}",
            p.block_seed,
            100.0 * p.tt_frequency,
            p.tt_dominant,
            100.0 * p.nn_frequency,
            p.nn_dominant,
            p.state,
        );
    }

    let dist = StateDistribution::from_blocks(&points);
    let total = dist.total() as f64;
    println!("\n(b) decoded-state distribution across blocks:");
    for (name, n) in [
        ("ST", dist.st),
        ("WT", dist.wt),
        ("WN", dist.wn),
        ("SN", dist.sn),
        ("dirty", dist.dirty),
        ("unknown", dist.unknown),
    ] {
        println!("    {name:<8} {:>5.1}%  ({n} blocks)", 100.0 * n as f64 / total);
    }
    println!(
        "\npaper: 83% of blocks give stable dominant patterns; the rest are unknown/dirty."
    );
    println!("ours : {:.1}% stable.", 100.0 * dist.stable_fraction());
}
