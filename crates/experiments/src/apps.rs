//! §9.2 attack applications: Montgomery-ladder key recovery, libjpeg IDCT
//! complexity recovery, and ASLR derandomization.

use crate::common::Scale;
use bscope_bpu::{MicroarchProfile, Outcome};
use bscope_core::{AttackConfig, BranchScope, BscopeError};
use bscope_os::{AslrPolicy, System, Workload};
use bscope_uarch::NoiseConfig;
use bscope_victims::{
    recover_bits_from_trace, AslrVictim, CoefficientBlock, IdctVictim, MontgomeryLadder,
    SlidingWindowExp, VICTIM_BRANCH_OFFSET,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn montgomery(scale: &Scale) -> Result<(), BscopeError> {
    println!("--- Montgomery ladder key recovery ---");
    let profile = MicroarchProfile::skylake();
    let mut sys =
        System::new(profile.clone(), scale.seed).with_noise(NoiseConfig::isolated_core())?;
    let victim = sys.spawn("openssl-victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x4EF);
    let key: u64 = rng.gen::<u64>() | (1 << 63); // full 64-bit key
    let modulus = 0xFFFF_FFFF_FFC5; // a large prime-ish modulus
    let mut ladder = MontgomeryLadder::new(0x10001, key, modulus);
    let key_bits = ladder.key_bits();

    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))?;
    let reads = attack.read_bits(&mut sys, spy, target, key_bits, |sys, _| {
        let mut cpu = sys.cpu(victim);
        ladder.step(&mut cpu);
    });
    let recovered = MontgomeryLadder::key_from_outcomes(&reads);
    let wrong = (recovered ^ key).count_ones();
    println!("  secret key   : {key:#018x}");
    println!("  recovered key: {recovered:#018x}");
    println!(
        "  {}/{} key bits correct ({} wrong); victim computed {:#x}",
        key_bits - wrong as usize,
        key_bits,
        wrong,
        ladder.result().expect("ladder finished"),
    );
    Ok(())
}

fn jpeg(scale: &Scale) -> Result<(), BscopeError> {
    println!("\n--- libjpeg IDCT zero-skip complexity recovery ---");
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), scale.seed ^ 1);
    let victim = sys.spawn("libjpeg-victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(bscope_victims::IDCT_BRANCH_OFFSET);

    // A tiny "image": a row of blocks with increasing AC complexity.
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x1D);
    let n_blocks = scale.n(12, 6);
    let blocks: Vec<CoefficientBlock> = (0..n_blocks)
        .map(|i| {
            let mut coeffs = [[0i16; 8]; 8];
            coeffs[0][0] = 100;
            // Block i has AC energy in i random columns.
            for _ in 0..i {
                let c = rng.gen_range(0..8usize);
                let r = rng.gen_range(1..8usize);
                coeffs[r][c] = rng.gen_range(1..32i16);
            }
            CoefficientBlock::new(coeffs)
        })
        .collect();
    let mut victim_prog = IdctVictim::new(blocks);
    let truths: Vec<[bool; 8]> = (0..n_blocks).map(|b| victim_prog.ground_truth(b)).collect();

    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))?;
    let mut correct = 0usize;
    println!("  per-column AC-free pattern (1 = shortcut taken), recovered vs truth:");
    for truth in &truths {
        let mut recovered = [false; 8];
        for slot in recovered.iter_mut() {
            let outcome = attack.read_bit(&mut sys, spy, target, |sys| {
                let mut cpu = sys.cpu(victim);
                victim_prog.step(&mut cpu);
            });
            *slot = outcome.is_taken();
        }
        correct += truth.iter().zip(&recovered).filter(|(a, b)| a == b).count();
        let fmt = |p: &[bool; 8]| p.iter().map(|&b| if b { '1' } else { '0' }).collect::<String>();
        println!("    recovered {}   truth {}", fmt(&recovered), fmt(truth));
    }
    println!(
        "  {}/{} column flags recovered correctly — leaks which coefficients are non-zero,",
        correct,
        truths.len() * 8
    );
    println!("  i.e. the relative complexity of each pixel block (paper Sec. 9.2).");
    Ok(())
}

fn aslr(scale: &Scale) -> Result<(), BscopeError> {
    println!("\n--- ASLR derandomization via branch collisions ---");
    let profile = MicroarchProfile::skylake();
    let pht_size = profile.pht_size as u64;
    let mut sys = System::new(profile.clone(), scale.seed ^ 2);
    let victim = sys.spawn("aslr-victim", AslrPolicy::Randomized);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let true_base = sys.process(victim).code_base();
    let victim_addr = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);
    let mut victim_prog = AslrVictim::new(Outcome::Taken);

    // Phase 1: find the PHT congruence class of the victim's hot branch by
    // priming candidate entries SN and checking which one the victim's
    // taken branch disturbs (pure BranchScope collision detection).
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))?;
    let mut found_class = None;
    for class in 0..pht_size {
        // Candidate address in the spy's reach with this PHT index.
        let candidate = 0x7000_0000u64 + class;
        let read = attack.read_bit(&mut sys, spy, candidate, |sys| {
            let mut cpu = sys.cpu(victim);
            victim_prog.step(&mut cpu);
        });
        if read == Outcome::Taken {
            found_class = Some(candidate & (pht_size - 1));
            break;
        }
    }
    let class = found_class.expect("collision class must exist");
    println!(
        "  phase 1: victim branch PHT index = {class:#x} (truth {:#x})",
        victim_addr & (pht_size - 1)
    );

    // Phase 2: candidate bases are page-aligned and must satisfy
    // (base + offset) mod PHT == class; disambiguate the survivors via BTB
    // presence at the exact address (cf. the BTB ASLR attacks of Sec. 9.2).
    let span = 1u64 << 28;
    let mut candidates: Vec<u64> = (0..span / 4096)
        .map(|k| 0x40_0000 + k * 4096)
        .filter(|base| (base + VICTIM_BRANCH_OFFSET) & (pht_size - 1) == class)
        .collect();
    let before = candidates.len();
    println!("  phase 2: {before} page-aligned candidates remain after PHT filtering");
    // The victim's taken branch leaves a BTB entry at its exact address;
    // probe each candidate via the fetch-redirect timing of a colliding spy
    // branch, averaging k measurements to beat the ~14-cycle signal's
    // jitter (cf. the BTB-based ASLR attacks the paper builds on).
    let k = scale.n(45, 15);
    candidates.retain(|&base| {
        let addr = base + VICTIM_BRANCH_OFFSET;
        let mut total = 0u64;
        for _ in 0..k {
            {
                let mut cpu = sys.cpu(victim);
                victim_prog.step(&mut cpu); // keep the victim's BTB entry warm
            }
            total += sys.cpu(spy).branch_at_abs(addr, Outcome::Taken).latency;
            // Evict what the probe installed so the next measurement sees
            // only the victim's entry (if any).
            sys.core_mut().bpu_mut().btb_mut().evict(addr);
        }
        (total as f64 / k as f64) < 92.0
    });
    println!(
        "  phase 2: {} candidate(s) after the BTB-presence pass (true base {true_base:#x})",
        candidates.len()
    );
    if candidates.contains(&true_base) {
        println!(
            "  true base survives -> ASLR entropy reduced from {} pages to {}",
            1u64 << 16,
            candidates.len()
        );
    } else {
        println!("  (true base filtered out this run — timing noise; rerun with more passes)");
    }
    Ok(())
}

fn sliding_window(scale: &Scale) -> Result<(), BscopeError> {
    println!("\n--- sliding-window exponentiation: partial key recovery ---");
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), scale.seed ^ 3);
    let victim = sys.spawn("libgcrypt-victim", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(victim).vaddr_of(VICTIM_BRANCH_OFFSET);

    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x511D);
    let key: u64 = rng.gen::<u64>() | (1 << 63);
    let window = 4;
    let mut exp = SlidingWindowExp::new(0x1_0001, key, 0xFFFF_FFFF_FFC5, window);

    // The spy reads the square/multiply schedule one branch at a time.
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))?;
    let mut observed = Vec::new();
    loop {
        let before = exp.result().is_some();
        if before {
            break;
        }
        let read = attack.read_bit(&mut sys, spy, target, |sys| {
            let mut cpu = sys.cpu(victim);
            exp.step(&mut cpu);
        });
        observed.push(read);
    }
    let known = recover_bits_from_trace(&observed, 64, window);
    let recovered = known.iter().filter(|b| b.is_some()).count();
    let correct = known
        .iter()
        .enumerate()
        .filter(|(i, b)| matches!(b, Some(v) if *v == ((key >> (63 - i)) & 1 == 1)))
        .count();
    println!("  secret key: {key:#018x} (window size {window})");
    println!(
        "  square/multiply schedule of {} observations -> {recovered}/64 key bits recovered,",
        observed.len()
    );
    println!(
        "  {correct}/{recovered} of them correct — \"limited information can still be\"",
    );
    println!("  \"recovered\" from windowed implementations (paper Sec. 9.2, citing [6]).");
    Ok(())
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    montgomery(scale)?;
    jpeg(scale)?;
    sliding_window(scale)?;
    aslr(scale)?;
    Ok(())
}
