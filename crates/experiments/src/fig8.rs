//! Figure 8: branch-event detection error rate as a function of the number
//! of averaged rdtscp measurements, for the first (cold) and second (warm)
//! executions.

use crate::common::{bar, Scale};
use bscope_bpu::MicroarchProfile;
use bscope_core::timing_probe::detection_error_rate;
use bscope_core::BscopeError;
use bscope_os::{AslrPolicy, System};

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let profile = MicroarchProfile::skylake();
    let trials = scale.n(2_000, 300);
    println!("error distinguishing predicted from mispredicted branches by timing,");
    println!("as a function of the number of averaged measurements ({trials} trials/point)\n");
    println!("{:>3}  {:<34} {:<34}", "k", "1st measurement (cold)", "2nd measurement (warm)");
    let mut first_k1 = 0.0;
    let mut second_k1 = 0.0;
    let mut second_k9 = 0.0;
    for k in (1..=19).step_by(2) {
        let mut sys = System::new(profile.clone(), scale.seed ^ k as u64);
        let spy = sys.spawn("spy", AslrPolicy::Disabled);
        let cold = detection_error_rate(&mut sys, spy, k, trials, true);
        let warm = detection_error_rate(&mut sys, spy, k, trials, false);
        if k == 1 {
            first_k1 = cold;
            second_k1 = warm;
        }
        if k == 9 {
            second_k9 = warm;
        }
        println!(
            "{k:>3}  {:>6.1}% {}  {:>6.1}% {}",
            100.0 * cold,
            bar(cold, 0.35, 22),
            100.0 * warm,
            bar(warm, 0.35, 22),
        );
    }
    println!("\npaper: 1st measurement 20-30% error; 2nd ~10% at k=1, approaching 0 by k~10.");
    println!(
        "ours : 1st at k=1: {:.1}%; 2nd at k=1: {:.1}%; 2nd at k=9: {:.2}%.",
        100.0 * first_k1,
        100.0 * second_k1,
        100.0 * second_k9
    );
    Ok(())
}
