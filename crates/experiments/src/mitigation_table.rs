//! §10 ablation: attack error rate under each proposed defense.

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::BscopeError;
use bscope_mitigations::{benign_overhead, evaluate, MeasurementFuzz, Mitigation};

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(3_000, 400);
    let profile = MicroarchProfile::skylake();
    println!("spy reading a victim's secret branch stream, {bits} bits, Skylake profile");
    println!("(error ~0% = attack works; ~50% = spy learns nothing)\n");
    let mitigations = [
        Mitigation::None,
        Mitigation::RandomizedPht { rekey_interval: None },
        Mitigation::RandomizedPht { rekey_interval: Some(10_000) },
        Mitigation::PartitionedBpu { partitions: 2 },
        Mitigation::PartitionedBpu { partitions: 4 },
        Mitigation::NoPredictSensitive,
        Mitigation::NoisyMeasurements(MeasurementFuzz::strong()),
        Mitigation::StochasticFsm { skip_probability: 0.5 },
        Mitigation::IfConversion,
    ];
    for m in mitigations {
        let report = evaluate(&m, &profile, bits, scale.seed);
        let overhead = benign_overhead(&m, &profile, scale.seed);
        println!("  {report}   [benign mispredict rate {:>5.2}%]", 100.0 * overhead);
    }
    println!("\npaper (Sec. 10): all of these block the side channel; software-only schemes");
    println!("(if-conversion) and measurement fuzzing still leave covert channels possible.");
    Ok(())
}
