//! Table 2: covert-channel error rates on three CPUs, isolated vs noisy.

use crate::common::{metric, trials, with_tracer, Scale};
use bscope_bpu::{BackendKind, MicroarchProfile};
use bscope_core::covert::CovertChannel;
use bscope_core::{AttackConfig, BscopeError};
use bscope_harness::splitmix64;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy)]
enum Payload {
    AllZero,
    AllOne,
    Random,
}

impl Payload {
    fn bits(self, n: usize, rng: &mut StdRng) -> Vec<bool> {
        match self {
            Payload::AllZero => vec![false; n],
            Payload::AllOne => vec![true; n],
            Payload::Random => (0..n).map(|_| rng.gen()).collect(),
        }
    }
}

const PAYLOADS: [Payload; 3] = [Payload::AllZero, Payload::AllOne, Payload::Random];

/// One transmission run of one table cell; all randomness (machine, noise,
/// message) derives from the trial `seed` handed out by the runner.
fn one_run(
    profile: &MicroarchProfile,
    backend: BackendKind,
    noise: &NoiseConfig,
    payload: Payload,
    bits: usize,
    seed: u64,
    tracer: &mut bscope_uarch::Tracer,
) -> f64 {
    let mut sys = System::with_backend(profile.clone(), backend, seed)
        .with_noise(noise.clone())
        .expect("noise config validated before fan-out");
    let sender = sys.spawn("trojan", AslrPolicy::Disabled);
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x7AB1E2));
    let message = payload.bits(bits, &mut rng);
    let mut channel =
        CovertChannel::new(AttackConfig::for_backend(profile, backend)).expect("valid config");
    with_tracer(&mut sys, tracer, |sys| {
        channel.transmit(sys, sender, receiver, &message).error_rate
    })
}

/// Computes the full table: six machine/noise rows of three payload error
/// rates (in percent). All `6 rows x 3 payloads x runs` transmissions are
/// independent trials fanned out over `scale.threads` workers; the result
/// is identical for every thread count.
///
/// Channel and noise configurations are validated up front, outside the
/// fan-out, so a misconfiguration is a typed error rather than a panic in
/// some worker thread.
pub fn compute(scale: &Scale, bits: usize, runs: usize) -> Result<Vec<(String, [f64; 3])>, BscopeError> {
    let machines = MicroarchProfile::paper_machines();
    let settings =
        [("isolated", NoiseConfig::isolated_core()), ("with noise", NoiseConfig::system_activity())];
    for machine in &machines {
        CovertChannel::new(AttackConfig::for_backend(machine, scale.backend))?;
    }
    for (_, noise) in &settings {
        noise.validate()?;
    }
    // Cell order fixes trial indices (and so per-trial seeds): changing it
    // intentionally changes results, like any other seed-schedule change.
    let cells: Vec<(usize, usize, usize)> = (0..machines.len())
        .flat_map(|m| (0..settings.len()).flat_map(move |s| (0..PAYLOADS.len()).map(move |p| (m, s, p))))
        .collect();

    let per_trial = trials(scale, cells.len() * runs, 0x7AB2E2, |idx, seed, tracer| {
        let (m, s, p) = cells[idx / runs];
        one_run(&machines[m], scale.backend, &settings[s].1, PAYLOADS[p], bits, seed, tracer)
    });

    Ok(cells
        .chunks_exact(PAYLOADS.len())
        .enumerate()
        .map(|(row, row_cells)| {
            let (m, s, _) = row_cells[0];
            let mut errors = [0.0f64; 3];
            for (p, cell_err) in errors.iter_mut().enumerate() {
                let cell = row * PAYLOADS.len() + p;
                let runs_of_cell = &per_trial[cell * runs..(cell + 1) * runs];
                *cell_err = 100.0 * runs_of_cell.iter().sum::<f64>() / runs as f64;
            }
            (format!("{} {}", machines[m].arch, settings[s].0), errors)
        })
        .collect())
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(20_000, 1_000);
    let runs = scale.n(10, 2);
    println!("average error rate transmitting {bits} bits per run, {runs} runs per cell");
    println!("predictor backend: {}\n", scale.backend);
    println!("{:<26} {:>8} {:>8} {:>8}", "", "All 0", "All 1", "Random");

    // Paper's Table 2 for side-by-side comparison.
    let paper: &[(&str, [f64; 3])] = &[
        ("SL isolated (paper)", [0.46, 0.51, 0.63]),
        ("SL with noise (paper)", [0.64, 0.63, 0.74]),
        ("Haswell isolated (paper)", [0.16, 0.27, 0.46]),
        ("Haswell noise (paper)", [0.37, 0.29, 0.67]),
        ("SB isolated (paper)", [0.68, 1.76, 2.44]),
        ("SB with noise (paper)", [1.76, 4.88, 3.38]),
    ];

    let ours = compute(scale, bits, runs)?;

    for (label, row) in &ours {
        println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", label, row[0], row[1], row[2]);
        for (payload, err) in ["all0", "all1", "random"].iter().zip(row) {
            metric(format!("table2/{label}/{payload}_error_pct"), *err);
        }
    }
    println!();
    for (label, row) in paper {
        println!("{:<26} {:>7.2}% {:>7.2}% {:>7.2}%", label, row[0], row[1], row[2]);
    }

    println!("\nshape checks:");
    let avg = |r: &[f64; 3]| (r[0] + r[1] + r[2]) / 3.0;
    let sl = (avg(&ours[0].1), avg(&ours[1].1));
    let hw = (avg(&ours[2].1), avg(&ours[3].1));
    let sb = (avg(&ours[4].1), avg(&ours[5].1));
    println!("  error rates below 1% on Skylake/Haswell: {}", sl.1 < 1.0 && hw.1 < 1.0);
    println!("  Sandy Bridge worse than Skylake & Haswell: {}", sb.1 > sl.1 && sb.1 > hw.1);
    println!(
        "  isolated <= noisy on every machine: {}",
        sl.0 <= sl.1 && hw.0 <= hw.1 && sb.0 <= sb.1
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole property on the real experiment: the table is
    /// bit-identical no matter how many workers computed it.
    #[test]
    fn table_is_thread_count_invariant() {
        let mut scale = Scale::quick();
        scale.threads = 1;
        let sequential = compute(&scale, 200, 2).expect("valid preset configs");
        for threads in [2, 8] {
            scale.threads = threads;
            assert_eq!(compute(&scale, 200, 2).expect("valid preset configs"), sequential, "threads={threads}");
        }
    }

    /// Regression pin of one quick-scale cell (Skylake isolated / random
    /// payload): fails if the seed schedule, RNG, or simulator behaviour
    /// drifts. Update deliberately when any of those changes.
    #[test]
    fn quick_scale_cell_is_pinned() {
        let rows = compute(&Scale::quick(), 1_000, 2).expect("valid preset configs");
        let (label, row) = &rows[0];
        assert_eq!(label, "Skylake isolated");
        // Pinned value; update deliberately when the seed schedule, the
        // simulator, or the PRNG stream changes.
        let expected = 0.15;
        assert_eq!(row[2], expected, "Skylake isolated / random payload drifted");
    }

    /// Backend-refactor regression: selecting the hybrid *explicitly* is
    /// the identity. The whole table — every machine, noise setting, and
    /// payload — must come out equal to the default path's, and the
    /// Skylake cell must still hit the pinned pre-refactor value, proving
    /// the `PredictorBackend` indirection changed no hybrid behaviour.
    #[test]
    fn explicit_hybrid_backend_reproduces_the_pinned_table() {
        let mut explicit = Scale::quick();
        explicit.backend = BackendKind::Hybrid;
        let rows = compute(&explicit, 1_000, 2).expect("valid preset configs");
        assert_eq!(rows, compute(&Scale::quick(), 1_000, 2).expect("valid preset configs"));
        assert_eq!(rows[0].1[2], 0.15, "pinned pre-refactor value drifted");
    }
}
