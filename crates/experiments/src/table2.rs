//! Table 2: covert-channel error rates on three CPUs, isolated vs noisy.

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::covert::CovertChannel;
use bscope_core::AttackConfig;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy)]
enum Payload {
    AllZero,
    AllOne,
    Random,
}

impl Payload {
    fn bits(self, n: usize, rng: &mut StdRng) -> Vec<bool> {
        match self {
            Payload::AllZero => vec![false; n],
            Payload::AllOne => vec![true; n],
            Payload::Random => (0..n).map(|_| rng.gen()).collect(),
        }
    }
}

fn error_rate(
    profile: &MicroarchProfile,
    noise: &NoiseConfig,
    payload: Payload,
    bits: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for run in 0..runs {
        let run_seed = seed ^ (run as u64) << 8;
        let mut sys = System::new(profile.clone(), run_seed).with_noise(noise.clone());
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut rng = StdRng::seed_from_u64(run_seed ^ 0x7AB1E2);
        let message = payload.bits(bits, &mut rng);
        let mut channel =
            CovertChannel::new(AttackConfig::for_profile(profile)).expect("valid config");
        total += channel.transmit(&mut sys, sender, receiver, &message).error_rate;
    }
    total / runs as f64
}

pub fn run(scale: &Scale) {
    let bits = scale.n(20_000, 1_000);
    let runs = scale.n(10, 2);
    println!(
        "average error rate transmitting {bits} bits per run, {runs} runs per cell\n"
    );
    println!("{:<26} {:>8} {:>8} {:>8}", "", "All 0", "All 1", "Random");

    // Paper's Table 2 for side-by-side comparison.
    let paper: &[(&str, [f64; 3])] = &[
        ("SL isolated (paper)", [0.46, 0.51, 0.63]),
        ("SL with noise (paper)", [0.64, 0.63, 0.74]),
        ("Haswell isolated (paper)", [0.16, 0.27, 0.46]),
        ("Haswell noise (paper)", [0.37, 0.29, 0.67]),
        ("SB isolated (paper)", [0.68, 1.76, 2.44]),
        ("SB with noise (paper)", [1.76, 4.88, 3.38]),
    ];

    let mut ours: Vec<(String, [f64; 3])> = Vec::new();
    for profile in MicroarchProfile::paper_machines() {
        for (setting, noise) in [
            ("isolated", NoiseConfig::isolated_core()),
            ("with noise", NoiseConfig::system_activity()),
        ] {
            let mut row = [0.0f64; 3];
            for (i, payload) in
                [Payload::AllZero, Payload::AllOne, Payload::Random].into_iter().enumerate()
            {
                row[i] = 100.0
                    * error_rate(&profile, &noise, payload, bits, runs, scale.seed ^ (i as u64));
            }
            ours.push((format!("{} {}", profile.arch, setting), row));
        }
    }

    for (label, row) in &ours {
        println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", label, row[0], row[1], row[2]);
    }
    println!();
    for (label, row) in paper {
        println!("{:<26} {:>7.2}% {:>7.2}% {:>7.2}%", label, row[0], row[1], row[2]);
    }

    println!("\nshape checks:");
    let avg = |r: &[f64; 3]| (r[0] + r[1] + r[2]) / 3.0;
    let sl = (avg(&ours[0].1), avg(&ours[1].1));
    let hw = (avg(&ours[2].1), avg(&ours[3].1));
    let sb = (avg(&ours[4].1), avg(&ours[5].1));
    println!(
        "  error rates below 1% on Skylake/Haswell: {}",
        sl.1 < 1.0 && hw.1 < 1.0
    );
    println!("  Sandy Bridge worse than Skylake & Haswell: {}", sb.1 > sl.1 && sb.1 > hw.1);
    println!(
        "  isolated <= noisy on every machine: {}",
        sl.0 <= sl.1 && hw.0 <= hw.1 && sb.0 <= sb.1
    );
}
