//! Figure 7: measured latency of a single branch, correctly vs incorrectly
//! predicted, for both actual directions.

use crate::common::{mean, percentile, Scale};
use bscope_bpu::{MicroarchProfile, Outcome, PhtState};
use bscope_core::BscopeError;
use bscope_os::{AslrPolicy, System};

/// Times one branch whose prediction outcome is controlled exactly: the
/// entry is trained so its prediction agrees (hit) or disagrees (miss) with
/// the executed direction, and the instruction is warmed in the i-cache
/// first ("we executed each branch instance two times, but only recorded
/// the latency during the second execution").
fn samples(
    profile: &MicroarchProfile,
    executed: Outcome,
    mispredict: bool,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    let mut sys = System::new(profile.clone(), seed);
    let pid = sys.spawn("bench", AslrPolicy::Disabled);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let addr = 0x100_0000 + sys.cpu(pid).counters().branches_retired * 7;
        let predicted = if mispredict { executed.flipped() } else { executed };
        let state = match predicted {
            Outcome::Taken => PhtState::StronglyTaken,
            Outcome::NotTaken => PhtState::StronglyNotTaken,
        };
        // Warm the i-cache with a first (untimed) execution, then force the
        // desired prediction and record the second execution.
        sys.cpu(pid).branch_at_abs(addr, predicted);
        sys.core_mut().bpu_mut().set_pht_state(addr, state);
        out.push(sys.cpu(pid).branch_at_abs(addr, executed).latency);
    }
    out
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let profile = MicroarchProfile::skylake();
    let n = scale.n(100_000, 5_000);
    println!("latency (cycles) of a single warmed branch, {n} samples per case\n");
    println!(
        "{:<26} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "case", "mean", "p5", "p50", "p95", "p99"
    );
    let mut means = std::collections::HashMap::new();
    for (label, executed, mispredict) in [
        ("(a) not-taken, hit", Outcome::NotTaken, false),
        ("(a) not-taken, miss", Outcome::NotTaken, true),
        ("(b) taken, hit", Outcome::Taken, false),
        ("(b) taken, miss", Outcome::Taken, true),
    ] {
        let mut v = samples(&profile, executed, mispredict, n, scale.seed);
        v.sort_unstable();
        let m = mean(&v);
        means.insert(label, m);
        println!(
            "{label:<26} {m:>8.1} {:>6} {:>6} {:>6} {:>6}",
            percentile(&v, 5.0),
            percentile(&v, 50.0),
            percentile(&v, 95.0),
            percentile(&v, 99.0),
        );
    }
    println!("\npaper: a misprediction has a clearly visible latency penalty regardless of the");
    println!("       actual direction (avg miss well above avg hit, points up to ~200 cycles).");
    println!(
        "ours : miss-hit separation {:.1} cycles (not-taken), {:.1} cycles (taken).",
        means["(a) not-taken, miss"] - means["(a) not-taken, hit"],
        means["(b) taken, miss"] - means["(b) taken, hit"],
    );
    Ok(())
}
