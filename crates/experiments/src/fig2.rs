//! Figure 2: mispredictions per iteration while the 2-level predictor
//! learns a repeating 10-bit random pattern.

use crate::common::{bar, Scale};
use bscope_bpu::{MicroarchProfile, Outcome};
use bscope_core::BscopeError;
use bscope_os::{AslrPolicy, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PATTERN_BITS: usize = 10;
const ITERATIONS: usize = 20;

fn learning_curve(profile: &MicroarchProfile, runs: usize, seed: u64) -> Vec<f64> {
    let mut totals = [0.0f64; ITERATIONS];
    let mut rng = StdRng::seed_from_u64(seed);
    for run in 0..runs {
        // "We initialize an array of 10 bits to a randomly selected state."
        let pattern: Vec<Outcome> =
            (0..PATTERN_BITS).map(|_| Outcome::from_bool(rng.gen())).collect();
        let mut sys = System::new(profile.clone(), seed ^ run as u64);
        let pid = sys.spawn("bench", AslrPolicy::Disabled);
        // "We execute a single branch instruction conditional on the array
        // bits, once for each bit … repeat the series 20 times … and record
        // the total number of incorrect predictions per iteration."
        for (iter, total) in totals.iter_mut().enumerate() {
            let before = sys.cpu(pid).counters().branch_misses;
            for &outcome in &pattern {
                sys.cpu(pid).branch_at(0x6d, outcome);
            }
            let misses = sys.cpu(pid).counters().branch_misses - before;
            let _ = iter;
            *total += misses as f64;
        }
    }
    totals.iter().map(|t| t / runs as f64).collect()
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let runs = scale.n(400, 50);
    let machines =
        [("i5-6200U (Skylake)", MicroarchProfile::skylake()), ("i7-2600 (Sandy Bridge)", MicroarchProfile::sandy_bridge())];
    let curves: Vec<(&str, Vec<f64>)> = machines
        .iter()
        .map(|(name, p)| (*name, learning_curve(p, runs, scale.seed)))
        .collect();

    println!("avg mispredictions per 10-branch iteration ({runs} runs)\n");
    println!("{:>4}  {:<28} {:<28}", "iter", curves[0].0, curves[1].0);
    for i in 0..ITERATIONS {
        println!(
            "{:>4}  {:>5.2} {}  {:>5.2} {}",
            i + 1,
            curves[0].1[i],
            bar(curves[0].1[i], 5.0, 20),
            curves[1].1[i],
            bar(curves[1].1[i], 5.0, 20),
        );
    }
    let converged =
        |c: &[f64]| c.iter().position(|&m| m < 0.5).map_or("never".into(), |i| (i + 1).to_string());
    println!("\npaper: ~5 mispredictions in iteration 1, accuracy ~100% after 5-7 repetitions,");
    println!("       Skylake learning slightly faster.");
    println!(
        "ours : iteration-1 mispredictions {:.2} / {:.2}; first iteration below 0.5 avg: {} / {}",
        curves[0].1[0],
        curves[1].1[0],
        converged(&curves[0].1),
        converged(&curves[1].1),
    );
    Ok(())
}
