//! Table 3: covert channel with the trojan (sender) inside an SGX enclave.

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::covert::{CovertChannel, EnclaveSender};
use bscope_core::AttackConfig;
use bscope_os::{AslrPolicy, Enclave, EnclaveController, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sgx_error_rate(
    noise: Option<NoiseConfig>,
    payload: fn(usize, &mut StdRng) -> Vec<bool>,
    bits: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let profile = MicroarchProfile::skylake();
    let mut total = 0.0;
    for run in 0..runs {
        let run_seed = seed ^ (run as u64) << 9;
        let mut sys = System::new(profile.clone(), run_seed);
        sys.set_noise(noise.clone());
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut rng = StdRng::seed_from_u64(run_seed ^ 0x56_1);
        let secret = payload(bits, &mut rng);
        let mut enclave =
            Enclave::launch(&mut sys, "trojan-enclave", EnclaveSender::new(secret.clone()));
        let controller = EnclaveController::new();
        // The attacker-controlled OS single-steps the enclave; in the
        // isolated setting it also prevents any other activity.
        let mut channel =
            CovertChannel::new(AttackConfig::for_profile(&profile)).expect("valid config");
        let received = channel.receive_from_enclave(
            &mut sys,
            &mut enclave,
            &controller,
            receiver,
            secret.len(),
        );
        total += received.score(&secret).error_rate;
    }
    total / runs as f64
}

pub fn run(scale: &Scale) {
    let bits = scale.n(20_000, 1_000);
    let runs = scale.n(10, 2);
    println!("Skylake, sender inside an SGX enclave single-stepped by a malicious OS;");
    println!("{bits} bits per run, {runs} runs per cell\n");

    let all0 = |n: usize, _: &mut StdRng| vec![false; n];
    let all1 = |n: usize, _: &mut StdRng| vec![true; n];
    let random = |n: usize, rng: &mut StdRng| (0..n).map(|_| rng.gen()).collect();

    println!("{:<26} {:>8} {:>8} {:>8}", "", "All 0", "All 1", "Random");
    let mut rows = Vec::new();
    for (label, noise) in [
        ("SGX with noise", Some(NoiseConfig::system_activity())),
        ("SGX isolated", None),
    ] {
        let row = [
            100.0 * sgx_error_rate(noise.clone(), all0, bits, runs, scale.seed),
            100.0 * sgx_error_rate(noise.clone(), all1, bits, runs, scale.seed ^ 1),
            100.0 * sgx_error_rate(noise, random, bits, runs, scale.seed ^ 2),
        ];
        println!("{label:<26} {:>7.3}% {:>7.3}% {:>7.3}%", row[0], row[1], row[2]);
        rows.push(row);
    }
    println!("\n{:<26} {:>8} {:>8} {:>8}", "paper:", "All 0", "All 1", "Random");
    println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", "SGX with noise (paper)", 0.008, 0.53, 0.73);
    println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", "SGX isolated (paper)", 0.003, 0.153, 0.51);

    let avg = |r: &[f64; 3]| (r[0] + r[1] + r[2]) / 3.0;
    println!("\nshape checks:");
    println!(
        "  OS-controlled noise suppression improves the channel: {}",
        avg(&rows[1]) <= avg(&rows[0])
    );
    println!("  isolated SGX error near zero: {}", avg(&rows[1]) < 0.1);
}
