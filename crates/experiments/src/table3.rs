//! Table 3: covert channel with the trojan (sender) inside an SGX enclave.

use crate::common::{metric, trials, with_tracer, Scale};
use bscope_bpu::MicroarchProfile;
use bscope_core::covert::{CovertChannel, EnclaveSender};
use bscope_core::{AttackConfig, BscopeError};
use bscope_harness::splitmix64;
use bscope_os::{AslrPolicy, Enclave, EnclaveController, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type PayloadFn = fn(usize, &mut StdRng) -> Vec<bool>;

fn all0(n: usize, _: &mut StdRng) -> Vec<bool> {
    vec![false; n]
}

fn all1(n: usize, _: &mut StdRng) -> Vec<bool> {
    vec![true; n]
}

fn random(n: usize, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.gen()).collect()
}

/// One enclave transmission run; machine and secret derive from `seed`.
fn one_run(
    noise: Option<&NoiseConfig>,
    payload: PayloadFn,
    bits: usize,
    seed: u64,
    tracer: &mut bscope_uarch::Tracer,
) -> f64 {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::new(profile.clone(), seed);
    sys.set_noise(noise.cloned()).expect("noise config validated before fan-out");
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x561));
    let secret = payload(bits, &mut rng);
    let mut enclave = Enclave::launch(&mut sys, "trojan-enclave", EnclaveSender::new(secret.clone()));
    let controller = EnclaveController::new();
    // The attacker-controlled OS single-steps the enclave; in the
    // isolated setting it also prevents any other activity.
    let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile)).expect("valid config");
    let received = with_tracer(&mut sys, tracer, |sys| {
        channel.receive_from_enclave(sys, &mut enclave, &controller, receiver, secret.len())
    });
    received.score(&secret).error_rate
}

/// Computes both table rows (error rates in percent): all
/// `2 settings x 3 payloads x runs` transmissions run as independent
/// trials on the deterministic parallel runner. Channel and noise
/// configurations are validated before the fan-out, so a bad config is a
/// typed error instead of a worker-thread panic.
pub fn compute(scale: &Scale, bits: usize, runs: usize) -> Result<Vec<[f64; 3]>, BscopeError> {
    let settings: [Option<NoiseConfig>; 2] = [Some(NoiseConfig::system_activity()), None];
    let payloads: [PayloadFn; 3] = [all0, all1, random];
    let cells = settings.len() * payloads.len();
    CovertChannel::new(AttackConfig::for_profile(&MicroarchProfile::skylake()))?;
    for noise in settings.iter().flatten() {
        noise.validate()?;
    }

    let per_trial = trials(scale, cells * runs, 0x560, |idx, seed, tracer| {
        let cell = idx / runs;
        let noise = settings[cell / payloads.len()].as_ref();
        one_run(noise, payloads[cell % payloads.len()], bits, seed, tracer)
    });

    Ok((0..settings.len())
        .map(|s| {
            let mut row = [0.0f64; 3];
            for (p, err) in row.iter_mut().enumerate() {
                let cell = s * 3 + p;
                *err = 100.0 * per_trial[cell * runs..(cell + 1) * runs].iter().sum::<f64>()
                    / runs as f64;
            }
            row
        })
        .collect())
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(20_000, 1_000);
    let runs = scale.n(10, 2);
    println!("Skylake, sender inside an SGX enclave single-stepped by a malicious OS;");
    println!("{bits} bits per run, {runs} runs per cell\n");

    println!("{:<26} {:>8} {:>8} {:>8}", "", "All 0", "All 1", "Random");
    let rows = compute(scale, bits, runs)?;
    for (label, row) in ["SGX with noise", "SGX isolated"].iter().zip(&rows) {
        println!("{label:<26} {:>7.3}% {:>7.3}% {:>7.3}%", row[0], row[1], row[2]);
        for (payload, err) in ["all0", "all1", "random"].iter().zip(row) {
            metric(format!("table3/{label}/{payload}_error_pct"), *err);
        }
    }
    println!("\n{:<26} {:>8} {:>8} {:>8}", "paper:", "All 0", "All 1", "Random");
    println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", "SGX with noise (paper)", 0.008, 0.53, 0.73);
    println!("{:<26} {:>7.3}% {:>7.3}% {:>7.3}%", "SGX isolated (paper)", 0.003, 0.153, 0.51);

    let avg = |r: &[f64; 3]| (r[0] + r[1] + r[2]) / 3.0;
    println!("\nshape checks:");
    println!(
        "  OS-controlled noise suppression improves the channel: {}",
        avg(&rows[1]) <= avg(&rows[0])
    );
    println!("  isolated SGX error near zero: {}", avg(&rows[1]) < 0.1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_thread_count_invariant() {
        let mut scale = Scale::quick();
        scale.threads = 1;
        let sequential = compute(&scale, 200, 2).expect("valid preset configs");
        for threads in [2, 8] {
            scale.threads = threads;
            assert_eq!(compute(&scale, 200, 2).expect("valid preset configs"), sequential, "threads={threads}");
        }
    }
}
