//! Extension (beyond the paper): error-rate sensitivity to the PHT size —
//! the mechanistic version of the paper's §7 explanation that Sandy
//! Bridge's higher error rates come from its smaller predictor tables.

use crate::common::Scale;
use bscope_bpu::{CounterKind, Microarch, MicroarchProfile};
use bscope_core::covert::CovertChannel;
use bscope_core::{AttackConfig, BscopeError};
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn profile_with_pht(pht_size: usize) -> MicroarchProfile {
    MicroarchProfile {
        arch: Microarch::Custom,
        pht_size,
        counter_kind: CounterKind::TwoBit,
        ghr_bits: 14,
        selector_size: (pht_size / 4).max(256),
        btb_size: (pht_size / 4).max(256),
        timing: Default::default(),
    }
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(6_000, 800);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x5E5);
    let message: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    println!("covert-channel error vs PHT size ({bits} bits, system noise)\n");
    println!("{:>10} {:>10}", "PHT size", "error");
    for log2 in 10..=16 {
        let pht_size = 1usize << log2;
        let profile = profile_with_pht(pht_size);
        let mut sys = System::new(profile.clone(), scale.seed ^ log2 as u64)
            .with_noise(NoiseConfig::system_activity())?;
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut channel = CovertChannel::new(AttackConfig::for_profile(&profile))?;
        let result = channel.transmit(&mut sys, sender, receiver, &message);
        println!("{pht_size:>10} {:>9.3}%", 100.0 * result.error_rate);
    }
    println!("\nbigger tables dilute the background noise across more entries, so the");
    println!("probability that an unrelated branch lands on the attacked entry — and with");
    println!("it the channel's error rate — falls roughly inversely with the PHT size.");
    println!("This is the paper's Sandy Bridge (4K) vs Skylake/Haswell (16K) gap, swept.");
    Ok(())
}
