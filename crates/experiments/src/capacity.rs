//! Extension (beyond the paper): covert-channel capacity — error rate and
//! throughput as functions of background noise and repetition coding.

use crate::common::{metric, trials, with_tracer, Scale};
use bscope_bpu::MicroarchProfile;
use bscope_core::covert::CovertChannel;
use bscope_core::{AttackConfig, BscopeError};
use bscope_harness::splitmix64;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NOISE_LEVELS: [(&str, f64); 5] = [
    ("none", 0.0),
    ("isolated (3/kcycle)", 3.0),
    ("system (8/kcycle)", 8.0),
    ("heavy (40/kcycle)", 40.0),
    ("extreme (120/kcycle)", 120.0),
];

const REDUNDANCIES: [usize; 3] = [1, 3, 5];

/// Error rate and throughput (bits per Mcycle) of one grid cell. Channel
/// and noise configurations for every grid row are validated before the
/// fan-out.
pub fn compute(scale: &Scale, bits: usize) -> Result<Vec<(f64, f64)>, BscopeError> {
    let profile = MicroarchProfile::skylake();
    CovertChannel::new(AttackConfig::for_backend(&profile, scale.backend))?;
    for (_, rate) in NOISE_LEVELS {
        if rate > 0.0 {
            NoiseConfig { branches_per_kcycle: rate, ..NoiseConfig::system_activity() }
                .validate()?;
        }
    }
    // One shared message for the whole grid (derived from the scale seed,
    // not the per-trial seed) so cells differ only in noise and coding.
    let mut rng = StdRng::seed_from_u64(splitmix64(scale.seed ^ 0xCAB));
    let message: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let cells = NOISE_LEVELS.len() * REDUNDANCIES.len();

    Ok(trials(scale, cells, 0xCA9, |idx, seed, tracer| {
        let (_, rate) = NOISE_LEVELS[idx / REDUNDANCIES.len()];
        let redundancy = REDUNDANCIES[idx % REDUNDANCIES.len()];
        let mut sys = System::with_backend(profile.clone(), scale.backend, seed);
        if rate > 0.0 {
            sys.set_noise(Some(NoiseConfig {
                branches_per_kcycle: rate,
                ..NoiseConfig::system_activity()
            }))
            .expect("noise config validated before fan-out");
        }
        let sender = sys.spawn("trojan", AslrPolicy::Disabled);
        let receiver = sys.spawn("spy", AslrPolicy::Disabled);
        let mut channel =
            CovertChannel::new(AttackConfig::for_backend(&profile, scale.backend)).expect("valid");
        let result = with_tracer(&mut sys, tracer, |sys| {
            if redundancy == 1 {
                channel.transmit(sys, sender, receiver, &message)
            } else {
                channel.transmit_with_redundancy(sys, sender, receiver, &message, redundancy)
            }
        });
        (result.error_rate, message.len() as f64 * 1e6 / result.cycles as f64)
    }))
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(4_000, 500);
    let grid = compute(scale, bits)?;

    println!(
        "Skylake / {} backend, {bits} payload bits per cell; error / throughput (bits per Mcycle)\n",
        scale.backend
    );
    println!(
        "{:<24} {:>22} {:>22} {:>22}",
        "background noise", "raw", "3x repetition", "5x repetition"
    );
    for (row, (label, _)) in NOISE_LEVELS.iter().enumerate() {
        let cells: Vec<String> = (0..REDUNDANCIES.len())
            .map(|col| {
                let (error_rate, throughput) = grid[row * REDUNDANCIES.len() + col];
                format!("{:>7.3}% @ {:>6.1} b/Mc", 100.0 * error_rate, throughput)
            })
            .collect();
        println!("{label:<24} {:>22} {:>22} {:>22}", cells[0], cells[1], cells[2]);
    }
    let (heavy_raw, _) = grid[3 * REDUNDANCIES.len()];
    let (heavy_5x, _) = grid[3 * REDUNDANCIES.len() + 2];
    metric("capacity/heavy_raw_error", heavy_raw);
    metric("capacity/heavy_5x_error", heavy_5x);
    println!("\nextension beyond the paper: repetition coding buys orders of magnitude in");
    println!("reliability at a proportional throughput cost, so even an extremely noisy");
    println!("core sustains a usable covert channel.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_thread_count_invariant() {
        let mut scale = Scale::quick();
        scale.threads = 1;
        let sequential = compute(&scale, 100).expect("valid preset configs");
        for threads in [2, 8] {
            scale.threads = threads;
            assert_eq!(compute(&scale, 100).expect("valid preset configs"), sequential, "threads={threads}");
        }
    }
}
