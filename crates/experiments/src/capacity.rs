//! Extension (beyond the paper): covert-channel capacity — error rate and
//! throughput as functions of background noise and repetition coding.

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::covert::CovertChannel;
use bscope_core::AttackConfig;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn run(scale: &Scale) {
    let profile = MicroarchProfile::skylake();
    let bits = scale.n(4_000, 500);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xCAB);
    let message: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    println!("Skylake, {bits} payload bits per cell; error / throughput (bits per Mcycle)\n");
    println!(
        "{:<24} {:>22} {:>22} {:>22}",
        "background noise", "raw", "3x repetition", "5x repetition"
    );
    for (label, rate) in [
        ("none", 0.0),
        ("isolated (3/kcycle)", 3.0),
        ("system (8/kcycle)", 8.0),
        ("heavy (40/kcycle)", 40.0),
        ("extreme (120/kcycle)", 120.0),
    ] {
        let mut cells = Vec::new();
        for redundancy in [1usize, 3, 5] {
            let mut sys = System::new(profile.clone(), scale.seed ^ redundancy as u64);
            if rate > 0.0 {
                sys.set_noise(Some(NoiseConfig {
                    branches_per_kcycle: rate,
                    ..NoiseConfig::system_activity()
                }));
            }
            let sender = sys.spawn("trojan", AslrPolicy::Disabled);
            let receiver = sys.spawn("spy", AslrPolicy::Disabled);
            let mut channel =
                CovertChannel::new(AttackConfig::for_profile(&profile)).expect("valid");
            let result = if redundancy == 1 {
                channel.transmit(&mut sys, sender, receiver, &message)
            } else {
                channel.transmit_with_redundancy(&mut sys, sender, receiver, &message, redundancy)
            };
            cells.push(format!(
                "{:>7.3}% @ {:>6.1} b/Mc",
                100.0 * result.error_rate,
                message.len() as f64 * 1e6 / result.cycles as f64,
            ));
        }
        println!("{label:<24} {:>22} {:>22} {:>22}", cells[0], cells[1], cells[2]);
    }
    println!("\nextension beyond the paper: repetition coding buys orders of magnitude in");
    println!("reliability at a proportional throughput cost, so even an extremely noisy");
    println!("core sustains a usable covert channel.");
}
