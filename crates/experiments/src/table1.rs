//! Table 1: FSM transitions for a single PHT entry, derived from the FSM
//! model *and* verified empirically through the attack's own probe channel.

use crate::common::Scale;
use bscope_bpu::{CounterKind, MicroarchProfile, PhtState};
use bscope_core::{fsm_transition_row, probe_with_counters, table1, BscopeError, ProbeKind};
use bscope_os::{AslrPolicy, System};

/// Empirically reproduces one Table 1 row on the simulated machine using
/// only attacker-visible operations: execute the prime branches, the target
/// branch, then the two probe branches with the misprediction counter.
fn empirical_observation(
    profile: &MicroarchProfile,
    prime: bscope_bpu::Outcome,
    target: bscope_bpu::Outcome,
    probe: ProbeKind,
    seed: u64,
) -> bscope_core::ProbePattern {
    let mut sys = System::new(profile.clone(), seed);
    let pid = sys.spawn("probe", AslrPolicy::Disabled);
    let addr = sys.process(pid).vaddr_of(0x6d);
    // Fresh entries start weakly not-taken; force the paper's "no previous
    // history" starting point explicitly for exactness.
    sys.core_mut().bpu_mut().set_pht_state(addr, PhtState::WeaklyNotTaken);
    for _ in 0..3 {
        sys.cpu(pid).branch_at_abs(addr, prime);
    }
    sys.cpu(pid).branch_at_abs(addr, target);
    probe_with_counters(&mut sys.cpu(pid), addr, probe)
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    for (label, profile) in [
        ("Haswell / Sandy Bridge (2-bit counter)", MicroarchProfile::haswell()),
        ("Skylake (asymmetric counter)", MicroarchProfile::skylake()),
    ] {
        println!("{label}");
        println!("Prime | after | Target | after | Probe | model | measured");
        let rows = table1(profile.counter_kind);
        for row in &rows {
            let measured = empirical_observation(
                &profile,
                row.prime,
                row.target,
                row.probe,
                scale.seed,
            );
            let marker = if measured == row.observation { "" } else { "  <-- MISMATCH" };
            let p = row.prime.letter();
            let t = row.target.letter();
            println!(
                "{p}{p}{p}   |  {:>2}   |   {t}    |  {:>2}   |  {}   |  {}   |  {}{marker}",
                row.state_after_prime,
                row.state_after_target,
                row.probe,
                row.observation,
                measured,
            );
        }
        println!();
    }

    // The footnote: the one row that differs between the two counters.
    let hsw = fsm_transition_row(
        CounterKind::TwoBit,
        bscope_bpu::Outcome::Taken,
        bscope_bpu::Outcome::NotTaken,
        ProbeKind::NotTakenNotTaken,
    );
    let sky = fsm_transition_row(
        CounterKind::SkylakeAsymmetric,
        bscope_bpu::Outcome::Taken,
        bscope_bpu::Outcome::NotTaken,
        ProbeKind::NotTakenNotTaken,
    );
    println!(
        "footnote 1: TTT|ST|N|WT|NN observes {} on Haswell/Sandy Bridge and {} on Skylake,",
        hsw.observation, sky.observation
    );
    println!("making ST and WT indistinguishable on Skylake — as the paper reports.");
    Ok(())
}
