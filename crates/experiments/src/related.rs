//! §11 comparison: BranchScope vs the prior BTB-based attacks.

use crate::common::Scale;
use bscope_baselines::compare_attacks;
use bscope_bpu::MicroarchProfile;
use bscope_core::BscopeError;

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(200, 40);
    println!("bit-recovery accuracy against the same secret-branch victim ({bits} bits),");
    println!("with and without the OS flushing the BTB on context switches\n");
    let cmp = compare_attacks(&MicroarchProfile::haswell(), bits, scale.seed);
    print!("{cmp}");
    println!("\npaper claim (Sec. 1): existing BTB protections are cache-style defenses; they");
    println!("stop the BTB attacks but BranchScope reads the directional PHT and survives.");
    let bscope = &cmp.rows[0];
    println!(
        "reproduced: BranchScope keeps {:.1}% accuracy under the BTB defense.",
        100.0 * bscope.accuracy_btb_defended
    );
    Ok(())
}
