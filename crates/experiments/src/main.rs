//! BranchScope experiment harness: regenerates every table and figure of
//! the paper's evaluation against the simulated substrate.
//!
//! ```text
//! experiments [--quick] [--seed N] [--threads N] [--json PATH]
//!             [--trace PATH] [--metrics]
//!             [--bpu hybrid|tage|perceptron]
//!             [--inject-fault NAME[:K]] <experiment>...
//! experiments all            # everything, paper-scale (minutes)
//! experiments --quick all    # everything, reduced scale (seconds)
//! ```
//!
//! Selected experiments run in the order given on the command line;
//! selecting one twice warns and runs it once. `--seed` accepts decimal or
//! `0x`-prefixed hex.
//!
//! `--threads N` bounds the worker threads of trial-parallel experiments
//! (default: all cores). Results are thread-count-invariant — every trial's
//! seed is derived from the base seed and trial index, never from a worker
//! (see `bscope-harness`) — so `--threads` only changes wall-clock.
//!
//! `--json PATH` writes a machine-readable report: per-experiment
//! wall-clock seconds, status, the predictor backend the experiment ran
//! on, and the headline metrics each experiment records.
//!
//! `--trace PATH` captures structured per-trial traces from the
//! trial-parallel experiments and writes them as JSONL (one event per
//! line, each stamped with experiment, trial index and per-trial sequence
//! number; `trial_begin` lines carry the replay seed). Traces are
//! deterministic: the same seed yields byte-identical output at any
//! `--threads` value. `--metrics` aggregates the same event stream into
//! per-experiment counters and latency histograms, adds them to the
//! `--json` report as `trace/...` metrics, and prints a short summary.
//! Both flags are observers — enabling them changes no experiment result.
//!
//! `--bpu hybrid|tage|perceptron` selects the direction-predictor
//! substrate for the backend-aware experiments (`table2`, `capacity`,
//! `backend_sweep`). The remaining experiments model mechanisms specific
//! to the paper's hybrid PHT (1-level mode, state machines, timing) and
//! always run on the hybrid; their report entries say so.
//!
//! Experiments are isolated from each other: a panic or typed error in one
//! is caught, reported as a `"failed"` entry in the report, and the
//! remaining experiments still run. The exit code is `0` when everything
//! succeeded, `1` when any experiment failed (or the report could not be
//! written), and `2` for usage errors.
//!
//! `--inject-fault NAME[:K]` deterministically injects a panic into the
//! trial-parallel experiment `NAME` (trial 0, or every trial whose keyed
//! hash is divisible by `K`) — an end-to-end test of the failure path.

mod apps;
mod backend_sweep;
mod capacity;
mod common;
mod fig2;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod json;
mod mitigation_table;
mod related;
mod sensitivity;
mod table1;
mod table2;
mod table3;

use bscope_core::BscopeError;
use bscope_harness::FaultPlan;
use common::Scale;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One registered experiment.
struct Experiment {
    name: &'static str,
    desc: &'static str,
    run: fn(&Scale) -> Result<(), BscopeError>,
    /// Whether the experiment fans trials out through `common::trials`
    /// (and so honours `Scale::fault` / `--inject-fault`).
    trial_parallel: bool,
    /// Whether the experiment honours `Scale::backend` / `--bpu`.
    /// Backend-agnostic experiments always run the paper's hybrid.
    backend_aware: bool,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig2",
        desc: "2-level predictor learning curve (Fig. 2)",
        run: fig2::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "table1",
        desc: "FSM transition / observation table (Table 1)",
        run: table1::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "fig4",
        desc: "randomization-block stability & state distribution (Fig. 4)",
        run: fig4::run,
        trial_parallel: true,
        backend_aware: false,
    },
    Experiment {
        name: "fig5",
        desc: "PHT granularity, size discovery and alignment (Fig. 5)",
        run: fig5::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "fig6",
        desc: "covert-channel decoding demonstration (Fig. 6)",
        run: fig6::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "table2",
        desc: "covert-channel error rates, 3 CPUs x 2 noise settings (Table 2)",
        run: table2::run,
        trial_parallel: true,
        backend_aware: true,
    },
    Experiment {
        name: "fig7",
        desc: "branch latency distributions, hit vs miss (Fig. 7)",
        run: fig7::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "fig8",
        desc: "timing-detection error vs number of measurements (Fig. 8)",
        run: fig8::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "fig9",
        desc: "probe latency by PHT state (Fig. 9)",
        run: fig9::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "table3",
        desc: "SGX covert-channel error rates (Table 3)",
        run: table3::run,
        trial_parallel: true,
        backend_aware: false,
    },
    Experiment {
        name: "apps",
        desc: "attack applications: Montgomery, libjpeg, ASLR (Sec. 9.2)",
        run: apps::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "mitigations",
        desc: "attack error under each defense (Sec. 10)",
        run: mitigation_table::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "baselines",
        desc: "BranchScope vs BTB-based attacks (Sec. 11)",
        run: related::run,
        trial_parallel: false,
        backend_aware: false,
    },
    Experiment {
        name: "capacity",
        desc: "EXTENSION: channel capacity vs noise and repetition coding",
        run: capacity::run,
        trial_parallel: true,
        backend_aware: true,
    },
    Experiment {
        name: "backend_sweep",
        desc: "EXTENSION: attack error & capacity across predictor backends",
        run: backend_sweep::run,
        trial_parallel: true,
        backend_aware: true,
    },
    Experiment {
        name: "sensitivity",
        desc: "EXTENSION: error rate vs PHT size",
        run: sensitivity::run,
        trial_parallel: false,
        backend_aware: false,
    },
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--threads N] [--json PATH] \
         [--trace PATH] [--metrics] [--bpu hybrid|tage|perceptron] \
         [--inject-fault NAME[:K]] <experiment>|all ..."
    );
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<12} {}", e.name, e.desc);
    }
    std::process::exit(2);
}

/// Usage error: name what was wrong before printing the usage text, so a
/// bad invocation says *which* flag or value failed, not just how to call
/// the binary.
fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage()
}

/// The value of `flag`, or a usage error naming the flag.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => fail_usage(&format!("{flag} requires a value")),
    }
}

/// Parses an unsigned integer, accepting decimal and `0x`-prefixed hex
/// (seeds are naturally written in hex — `--seed 0xB5C09E01`). A failure
/// names the flag and the offending value.
fn parse_u64(flag: &str, value: &str) -> u64 {
    let (digits, radix) = match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (value, 10),
    };
    u64::from_str_radix(digits, radix)
        .unwrap_or_else(|e| fail_usage(&format!("invalid value '{value}' for {flag}: {e}")))
}

/// Stable name hash for the fault-plan salt, so the injected fault pattern
/// of `--inject-fault NAME:K` is reproducible across runs.
fn fault_salt(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1_0000_01b3)
    })
}

/// Parses `--inject-fault NAME[:K]` into the target experiment name and a
/// deterministic fault plan: bare `NAME` panics trial 0; `NAME:K` panics
/// every trial whose seed-keyed hash is divisible by `K`.
fn parse_fault(spec: &str) -> (&'static str, FaultPlan) {
    let (name, plan) = match spec.split_once(':') {
        Some((name, k)) => {
            let k = match k.parse::<u64>() {
                Ok(0) | Err(_) => fail_usage(&format!(
                    "invalid value '{spec}' for --inject-fault: ':K' must be a positive integer"
                )),
                Ok(k) => k,
            };
            (name, FaultPlan::keyed(fault_salt(name)).panic_one_in(k))
        }
        None => (spec, FaultPlan::keyed(fault_salt(spec)).panic_on_index(0)),
    };
    let targets = || {
        EXPERIMENTS
            .iter()
            .filter(|e| e.trial_parallel)
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(", ")
    };
    match EXPERIMENTS.iter().find(|e| e.name == name) {
        Some(e) if e.trial_parallel => (e.name, plan),
        Some(_) => fail_usage(&format!(
            "invalid value '{spec}' for --inject-fault: '{name}' is not trial-parallel \
             (valid targets: {})",
            targets()
        )),
        None => fail_usage(&format!(
            "invalid value '{spec}' for --inject-fault: unknown experiment '{name}' \
             (valid targets: {})",
            targets()
        )),
    }
}

fn main() {
    let mut scale = Scale::full();
    let mut selected: Vec<&Experiment> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut want_metrics = false;
    let mut fault: Option<(&'static str, FaultPlan)> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale.quick = true,
            "--seed" => scale.seed = parse_u64("--seed", flag_value(&args, &mut i, "--seed")),
            "--threads" => {
                scale.threads =
                    parse_u64("--threads", flag_value(&args, &mut i, "--threads")) as usize;
            }
            "--json" => json_path = Some(flag_value(&args, &mut i, "--json").to_owned()),
            "--trace" => trace_path = Some(flag_value(&args, &mut i, "--trace").to_owned()),
            "--metrics" => want_metrics = true,
            "--bpu" => {
                let value = flag_value(&args, &mut i, "--bpu");
                scale.backend = value
                    .parse()
                    .unwrap_or_else(|e| fail_usage(&format!("invalid value '{value}' for --bpu: {e}")));
            }
            "--inject-fault" => {
                fault = Some(parse_fault(flag_value(&args, &mut i, "--inject-fault")));
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => fail_usage(&format!("unknown flag '{flag}'")),
            // Experiments run in the order selected here, not registry
            // order; duplicates warn and run once.
            "all" => {
                let mut added = false;
                for e in EXPERIMENTS {
                    if !selected.iter().any(|s| std::ptr::eq(*s, e)) {
                        selected.push(e);
                        added = true;
                    }
                }
                if !added {
                    eprintln!("warning: duplicate selection 'all' ignored");
                }
            }
            name => match EXPERIMENTS.iter().find(|e| e.name == name) {
                Some(e) if selected.iter().any(|s| std::ptr::eq(*s, e)) => {
                    eprintln!("warning: duplicate selection '{name}' ignored");
                }
                Some(e) => selected.push(e),
                None => fail_usage(&format!("unknown experiment '{name}'")),
            },
        }
        i += 1;
    }
    if selected.is_empty() {
        fail_usage("no experiments selected");
    }
    scale.trace = trace_path.is_some() || want_metrics;
    if scale.trace && !selected.iter().any(|e| e.trial_parallel) {
        eprintln!(
            "note: --trace/--metrics capture from trial-parallel experiments only; \
             none is selected, so the trace will be empty"
        );
    }
    if let Some((target, _)) = fault {
        if !selected.iter().any(|e| e.name == target) {
            eprintln!("warning: --inject-fault target '{target}' is not among the selected experiments");
        }
    }
    if scale.backend != bscope_bpu::BackendKind::Hybrid {
        let agnostic: Vec<&str> =
            selected.iter().filter(|e| !e.backend_aware).map(|e| e.name).collect();
        if !agnostic.is_empty() {
            eprintln!(
                "note: --bpu {} applies to backend-aware experiments only; {} model \
                 hybrid-specific mechanisms and run on the hybrid",
                scale.backend,
                agnostic.join(", ")
            );
        }
    }

    let mut report = json::Report::new(&scale);
    // JSONL trace lines accumulate across experiments and are written
    // atomically once at the end (a watcher never sees a partial file).
    let mut trace_lines = String::new();
    for exp in &selected {
        println!("==============================================================");
        println!("{}: {}", exp.name, exp.desc);
        println!("==============================================================");
        let mut scale_local = scale;
        if let Some((target, plan)) = fault {
            if target == exp.name {
                scale_local.fault = Some(plan);
            }
        }
        // Scope the metric sink to this experiment: metrics recorded before
        // a mid-experiment failure belong to *its* report entry and must
        // not leak into the next experiment's.
        let scope = common::MetricScope::enter();
        let started = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (exp.run)(&scale_local)));
        let elapsed = started.elapsed();
        // Drain this experiment's traces (empty unless --trace/--metrics).
        // Aggregated metrics are recorded while the scope is still open so
        // they land on this experiment's report entry.
        let traces = common::drain_traces();
        if !traces.is_empty() {
            if want_metrics {
                let mut agg = bscope_trace::MetricsRegistry::default();
                for t in &traces {
                    agg.merge(&t.metrics);
                }
                println!("trace metrics ({} trials):", traces.len());
                for (k, v) in agg.summary() {
                    println!("  {k:<28} {v}");
                    common::metric(format!("trace/{k}"), v);
                }
            }
            if trace_path.is_some() {
                for t in &traces {
                    trace_lines
                        .push_str(&bscope_trace::jsonl::trial_begin_line(exp.name, t.trial_index, t.seed));
                    for e in &t.events {
                        trace_lines
                            .push_str(&bscope_trace::jsonl::event_line(exp.name, t.trial_index, e));
                    }
                    trace_lines.push_str(&bscope_trace::jsonl::trial_end_line(
                        exp.name,
                        t.trial_index,
                        t.events.len(),
                        t.dropped,
                    ));
                }
            }
        }
        let metrics = scope.finish();
        let error = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(e)) => Some(e.to_string()),
            Err(payload) => Some(bscope_harness::panic_message(&*payload)),
        };
        match &error {
            None => println!("[{} finished in {elapsed:.1?}]\n", exp.name),
            Some(msg) => {
                eprintln!("error: experiment '{}' failed: {msg}", exp.name);
                println!("[{} FAILED after {elapsed:.1?}]\n", exp.name);
            }
        }
        // Backend-agnostic experiments always ran the hybrid, whatever
        // `--bpu` said; the report entry records what actually happened.
        let backend =
            if exp.backend_aware { scale.backend } else { bscope_bpu::BackendKind::Hybrid };
        report.record(exp.name, backend.name(), elapsed.as_secs_f64(), metrics, error);
    }

    let any_failed = report.has_failures();
    // The report is written even after failures: a partial report with
    // `"status": "failed"` entries beats losing the completed experiments.
    if let Some(path) = json_path {
        match report.write_to(&path) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = trace_path {
        match json::write_atomic(&path, &trace_lines) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if any_failed {
        eprintln!("error: one or more experiments failed (see report entries above)");
        std::process::exit(1);
    }
}
