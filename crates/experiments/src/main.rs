//! BranchScope experiment harness: regenerates every table and figure of
//! the paper's evaluation against the simulated substrate.
//!
//! ```text
//! experiments [--quick] [--seed N] [--threads N] [--json PATH] <experiment>...
//! experiments all            # everything, paper-scale (minutes)
//! experiments --quick all    # everything, reduced scale (seconds)
//! ```
//!
//! `--threads N` bounds the worker threads of trial-parallel experiments
//! (default: all cores). Results are thread-count-invariant — every trial's
//! seed is derived from the base seed and trial index, never from a worker
//! (see `bscope-harness`) — so `--threads` only changes wall-clock.
//!
//! `--json PATH` writes a machine-readable report: per-experiment
//! wall-clock seconds and the headline metrics each experiment records.

mod apps;
mod capacity;
mod common;
mod fig2;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod json;
mod mitigation_table;
mod related;
mod sensitivity;
mod table1;
mod table2;
mod table3;

use common::Scale;

/// (CLI name, description, entry point) for one experiment.
type Experiment = (&'static str, &'static str, fn(&Scale));

const EXPERIMENTS: &[Experiment] = &[
    ("fig2", "2-level predictor learning curve (Fig. 2)", fig2::run),
    ("table1", "FSM transition / observation table (Table 1)", table1::run),
    ("fig4", "randomization-block stability & state distribution (Fig. 4)", fig4::run),
    ("fig5", "PHT granularity, size discovery and alignment (Fig. 5)", fig5::run),
    ("fig6", "covert-channel decoding demonstration (Fig. 6)", fig6::run),
    ("table2", "covert-channel error rates, 3 CPUs x 2 noise settings (Table 2)", table2::run),
    ("fig7", "branch latency distributions, hit vs miss (Fig. 7)", fig7::run),
    ("fig8", "timing-detection error vs number of measurements (Fig. 8)", fig8::run),
    ("fig9", "probe latency by PHT state (Fig. 9)", fig9::run),
    ("table3", "SGX covert-channel error rates (Table 3)", table3::run),
    ("apps", "attack applications: Montgomery, libjpeg, ASLR (Sec. 9.2)", apps::run),
    ("mitigations", "attack error under each defense (Sec. 10)", mitigation_table::run),
    ("baselines", "BranchScope vs BTB-based attacks (Sec. 11)", related::run),
    ("capacity", "EXTENSION: channel capacity vs noise and repetition coding", capacity::run),
    ("sensitivity", "EXTENSION: error rate vs PHT size", sensitivity::run),
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--threads N] [--json PATH] <experiment>|all ..."
    );
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:<12} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::full();
    let mut selected: Vec<&str> = Vec::new();
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale.quick = true,
            "--seed" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| usage());
                scale.seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| usage());
                scale.threads = value.parse().unwrap_or_else(|_| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--help" | "-h" => usage(),
            name => selected.push(match EXPERIMENTS.iter().find(|(n, _, _)| *n == name) {
                Some((n, _, _)) => n,
                None if name == "all" => "all",
                None => usage(),
            }),
        }
        i += 1;
    }
    if selected.is_empty() {
        usage();
    }
    let run_all = selected.contains(&"all");
    let mut report = json::Report::new(&scale);
    for (name, desc, run) in EXPERIMENTS {
        if run_all || selected.contains(name) {
            println!("==============================================================");
            println!("{name}: {desc}");
            println!("==============================================================");
            common::drain_metrics(); // discard anything stale
            let started = std::time::Instant::now();
            run(&scale);
            let elapsed = started.elapsed();
            println!("[{name} finished in {elapsed:.1?}]\n");
            report.record(name, elapsed.as_secs_f64(), common::drain_metrics());
        }
    }
    if let Some(path) = json_path {
        match report.write_to(&path) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
