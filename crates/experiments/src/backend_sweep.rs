//! EXTENSION (beyond the paper): does BranchScope's prime+probe FSM
//! strategy survive when the directional predictor is *not* a plain
//! saturating-counter PHT?
//!
//! Reruns the Table-2-style covert-channel error-rate measurement and the
//! capacity measurement on every predictor backend — the paper's
//! bimodal+gshare hybrid, TAGE, and the perceptron — on Skylake, isolated
//! and under system-activity noise. Unlike the other backend-aware
//! experiments this one always sweeps all three substrates (the
//! comparison is its whole point); `--bpu` still stamps the report entry
//! like everywhere else.
//!
//! Expected shape (see `bscope_bpu::tage` for the full argument): the
//! hybrid is near-exact; TAGE degrades mildly but stays usable because
//! newly-allocated tagged entries are weak (use-alt-on-na falls back to
//! the base bimodal table, which *is* a saturating-counter PHT) and the
//! spy can evict stale tagged entries through index-hash aliases; the
//! perceptron collapses to a coin flip because its per-branch state is a
//! weight vector with no FSM for the probes to read.

use crate::common::{metric, trials, with_tracer, Scale};
use bscope_bpu::{BackendKind, MicroarchProfile};
use bscope_core::covert::CovertChannel;
use bscope_core::{AttackConfig, BscopeError};
use bscope_harness::splitmix64;
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise settings, in row order: isolated core, then system activity.
const SETTINGS: usize = 2;

/// Error rate and throughput (bits per Mcycle) of one random-payload
/// transmission; all randomness derives from the trial `seed`.
fn one_run(
    backend: BackendKind,
    noise: Option<&NoiseConfig>,
    bits: usize,
    seed: u64,
    tracer: &mut bscope_uarch::Tracer,
) -> (f64, f64) {
    let profile = MicroarchProfile::skylake();
    let mut sys = System::with_backend(profile.clone(), backend, seed);
    if let Some(noise) = noise {
        sys.set_noise(Some(noise.clone())).expect("noise config validated before fan-out");
    }
    let sender = sys.spawn("trojan", AslrPolicy::Disabled);
    let receiver = sys.spawn("spy", AslrPolicy::Disabled);
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xB4CE));
    let message: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let mut channel =
        CovertChannel::new(AttackConfig::for_backend(&profile, backend)).expect("valid config");
    let result =
        with_tracer(&mut sys, tracer, |sys| channel.transmit(sys, sender, receiver, &message));
    (result.error_rate, result.bits_per_mcycle())
}

/// One backend's row: `(error_rate, bits_per_mcycle)` per noise setting.
type SweepRow = [(f64, f64); SETTINGS];

/// The full sweep: per backend, a [`SweepRow`] for isolated and noisy,
/// each cell averaged over `runs` transmissions. Configurations are
/// validated before the fan-out; results are identical for every thread
/// count.
pub fn compute(
    scale: &Scale,
    bits: usize,
    runs: usize,
) -> Result<Vec<(BackendKind, SweepRow)>, BscopeError> {
    let profile = MicroarchProfile::skylake();
    for backend in BackendKind::ALL {
        CovertChannel::new(AttackConfig::for_backend(&profile, backend))?;
    }
    let noise = NoiseConfig::system_activity();
    noise.validate()?;
    let settings = [None, Some(noise)];

    let cells = BackendKind::ALL.len() * SETTINGS;
    let per_trial = trials(scale, cells * runs, 0xBAC2, |idx, seed, tracer| {
        let cell = idx / runs;
        one_run(
            BackendKind::ALL[cell / SETTINGS],
            settings[cell % SETTINGS].as_ref(),
            bits,
            seed,
            tracer,
        )
    });

    Ok(BackendKind::ALL
        .iter()
        .enumerate()
        .map(|(b, &backend)| {
            let mut row = [(0.0, 0.0); SETTINGS];
            for (s, cell_avg) in row.iter_mut().enumerate() {
                let cell = b * SETTINGS + s;
                let runs_of_cell = &per_trial[cell * runs..(cell + 1) * runs];
                let n = runs as f64;
                *cell_avg = (
                    runs_of_cell.iter().map(|r| r.0).sum::<f64>() / n,
                    runs_of_cell.iter().map(|r| r.1).sum::<f64>() / n,
                );
            }
            (backend, row)
        })
        .collect())
}

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let bits = scale.n(2_000, 150);
    let runs = scale.n(5, 2);
    println!("Skylake, {bits} random payload bits per run, {runs} runs per cell\n");
    println!(
        "{:<12} {:>14} {:>14} {:>18}",
        "backend", "isolated err", "noisy err", "capacity (b/Mc)"
    );

    let sweep = compute(scale, bits, runs)?;
    for (backend, row) in &sweep {
        let [(iso_err, iso_cap), (noisy_err, _)] = row;
        println!(
            "{:<12} {:>13.3}% {:>13.3}% {:>18.1}",
            backend.name(),
            100.0 * iso_err,
            100.0 * noisy_err,
            iso_cap
        );
        metric(format!("backend_sweep/{}/isolated_error_pct", backend.name()), 100.0 * iso_err);
        metric(format!("backend_sweep/{}/noise_error_pct", backend.name()), 100.0 * noisy_err);
        metric(format!("backend_sweep/{}/capacity_bits_per_mcycle", backend.name()), *iso_cap);
    }

    println!("\nheadline: which substrates does the prime+probe FSM strategy survive on?");
    for (backend, row) in &sweep {
        let err = row[0].0;
        let verdict = if err < 0.05 {
            "attack survives"
        } else if err < 0.25 {
            "attack degraded"
        } else {
            "attack defeated (at chance)"
        };
        println!("  {:<12} {verdict} ({:.1}% error)", backend.name(), 100.0 * err);
    }
    println!("\nthe hybrid's 1-level mode is the paper's setting; TAGE survives because its");
    println!("base bimodal table is itself a saturating-counter PHT and weak tagged entries");
    println!("defer to it (use-alt-on-na), so priming + alias eviction keeps the FSM");
    println!("readable; the perceptron has no counter FSM to read and falls to a coin flip.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut scale = Scale::quick();
        scale.threads = 1;
        let sequential = compute(&scale, 60, 1).expect("valid preset configs");
        for threads in [2, 8] {
            scale.threads = threads;
            assert_eq!(
                compute(&scale, 60, 1).expect("valid preset configs"),
                sequential,
                "threads={threads}"
            );
        }
    }

    /// The headline ordering the experiment exists to demonstrate: the
    /// hybrid is near-exact, TAGE degrades but stays far from chance, the
    /// perceptron is indistinguishable from a coin flip.
    #[test]
    fn backends_order_as_the_headline_claims() {
        let sweep = compute(&Scale::quick(), 150, 2).expect("valid preset configs");
        let err = |k: BackendKind| {
            sweep.iter().find(|(b, _)| *b == k).expect("swept").1[0].0
        };
        let (hybrid, tage, perceptron) =
            (err(BackendKind::Hybrid), err(BackendKind::Tage), err(BackendKind::Perceptron));
        assert!(hybrid < 0.02, "hybrid is near-exact, got {hybrid}");
        assert!(tage < 0.10, "TAGE stays usable, got {tage}");
        assert!(hybrid <= tage, "TAGE cannot beat the native substrate");
        assert!(
            (0.25..=0.75).contains(&perceptron),
            "perceptron is at chance, got {perceptron}"
        );
    }
}
