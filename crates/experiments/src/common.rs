//! Shared experiment plumbing: scale factors, the headline-metric sink
//! behind `--json`, trial-runner glue (thread count + fault injection),
//! and small output helpers.

use bscope_bpu::BackendKind;
use bscope_harness::{run_trials_traced, FaultPlan, FaultPolicy, RunOptions, TrialTrace};
use bscope_uarch::Tracer;
use std::sync::{Mutex, PoisonError};

/// Experiment scale: `full()` approaches the paper's sample sizes where
/// affordable; `quick()` runs everything in seconds for smoke testing.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Whether this is the reduced (smoke-test) scale.
    pub quick: bool,
    /// Base seed for all experiment randomness.
    pub seed: u64,
    /// Worker threads for trial-parallel experiments (`0` = all cores).
    /// Results are thread-count-invariant (see `bscope-harness`), so this
    /// only affects wall-clock.
    pub threads: usize,
    /// Direction-predictor substrate (`--bpu`) honoured by the
    /// backend-aware experiments; backend-agnostic experiments always run
    /// the paper's hybrid model.
    pub backend: BackendKind,
    /// Deterministic fault injection for the trial-parallel experiments
    /// (`--inject-fault`); `None` in normal runs.
    pub fault: Option<FaultPlan>,
    /// Whether trial-parallel experiments capture structured traces
    /// (`--trace`/`--metrics`). Off by default: the disabled path hands
    /// every trial a no-op tracer that never allocates or builds events.
    pub trace: bool,
}

impl Scale {
    pub fn full() -> Self {
        Scale {
            quick: false,
            seed: 0xB5C0_9E01,
            threads: 0,
            backend: BackendKind::Hybrid,
            fault: None,
            trace: false,
        }
    }

    #[allow(dead_code)] // handy for unit-style invocations
    pub fn quick() -> Self {
        Scale { quick: true, ..Scale::full() }
    }

    /// Picks a sample size by scale.
    pub fn n(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Newest events kept per trial when tracing is on. The ring keeps the tail
/// of the trial (its metrics stay exact for everything evicted); 1024 spans
/// a full attack round comfortably while bounding JSONL output.
pub const TRACE_EVENTS_PER_TRIAL: usize = 1024;

/// Runs `n` trials through the deterministic parallel runner with this
/// scale's thread count and fault plan. Seeds derive from
/// `scale.seed ^ salt`, exactly as the former direct `run_trials` calls,
/// so results are unchanged — and bit-identical for every thread count.
///
/// Each trial receives a [`Tracer`]: disabled (no-op) unless `scale.trace`
/// is set, in which case per-trial captures accumulate in a global sink the
/// main loop drains per experiment (see [`drain_traces`]).
///
/// # Panics
///
/// A panicking (or injected-fault) trial is re-raised with its trial index
/// and seed attached; the binary's per-experiment isolation turns that
/// into a failure entry in the `--json` report.
pub fn trials<T, F>(scale: &Scale, n: usize, salt: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64, &mut Tracer) -> T + Sync,
{
    let opts =
        RunOptions { threads: scale.threads, policy: FaultPolicy::Propagate, fault: scale.fault };
    let capacity = if scale.trace { Some(TRACE_EVENTS_PER_TRIAL) } else { None };
    let (report, traces) = run_trials_traced(n, scale.seed ^ salt, &opts, capacity, f);
    if !traces.is_empty() {
        traces_sink().extend(traces);
    }
    report.expect_complete()
}

/// Per-trial traces captured by [`trials`] since the last drain. Same
/// scoping discipline as the metric sink: the main loop drains it per
/// experiment when `--trace`/`--metrics` is active.
static TRACES: Mutex<Vec<TrialTrace>> = Mutex::new(Vec::new());

fn traces_sink() -> std::sync::MutexGuard<'static, Vec<TrialTrace>> {
    TRACES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Takes every trace captured since the last drain, in trial order within
/// each `trials` call and call order across calls.
pub fn drain_traces() -> Vec<TrialTrace> {
    std::mem::take(&mut traces_sink())
}

/// Installs the trial's tracer on `sys`'s core for the duration of `body`,
/// then reclaims it so the harness can collect the capture. With tracing
/// disabled this is a pair of no-op moves. (A panicking `body` loses the
/// capture along with the trial — the trial's report entry carries the
/// failure instead.)
pub fn with_tracer<T>(
    sys: &mut bscope_os::System,
    tracer: &mut Tracer,
    body: impl FnOnce(&mut bscope_os::System) -> T,
) -> T {
    sys.core_mut().set_tracer(std::mem::take(tracer));
    let out = body(sys);
    *tracer = sys.core_mut().take_tracer();
    out
}

/// Headline metrics reported by experiments since the last drain; the main
/// loop scopes the sink per experiment (see [`MetricScope`]) when emitting
/// `--json`.
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Locks the sink, recovering from poisoning: a panicking experiment must
/// not wedge metric recording for every later experiment in the run.
fn metrics_sink() -> std::sync::MutexGuard<'static, Vec<(String, f64)>> {
    METRICS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Records a headline result (e.g. a table cell or summary fraction) for
/// the `--json` report. No-op unless drained by the main loop.
pub fn metric(name: impl Into<String>, value: f64) {
    metrics_sink().push((name.into(), value));
}

/// Scopes the metric sink to one experiment: everything recorded between
/// [`MetricScope::enter`] and [`MetricScope::finish`] belongs to that
/// experiment — including metrics recorded before a panic, which used to
/// leak into the *next* experiment's `--json` entry once experiments were
/// isolated. Dropping the scope without finishing discards its metrics.
#[must_use = "an unfinished scope discards its metrics on drop"]
pub struct MetricScope {
    _not_send: std::marker::PhantomData<*const ()>, // one experiment at a time
}

impl MetricScope {
    /// Opens a scope, discarding anything stale from before it.
    pub fn enter() -> Self {
        metrics_sink().clear();
        MetricScope { _not_send: std::marker::PhantomData }
    }

    /// Closes the scope and returns every metric recorded inside it, even
    /// if the experiment subsequently panicked part-way.
    pub fn finish(self) -> Vec<(String, f64)> {
        std::mem::take(&mut metrics_sink())
    }
}

impl Drop for MetricScope {
    fn drop(&mut self) {
        metrics_sink().clear();
    }
}

/// Simple text bar for terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 { 0 } else { ((value / max) * width as f64).round() as usize };
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Mean of a u64 sample.
pub fn mean(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

/// Population standard deviation of a u64 sample.
#[allow(dead_code)] // used by ad-hoc experiment variants
pub fn std_dev(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Percentile (nearest-rank) of a u64 sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    // The metric sink is global, so these tests must not run concurrently
    // with each other; a single test covers all scope semantics.
    #[test]
    fn metric_scope_isolates_experiments_even_across_panics() {
        // Metrics recorded before the scope are stale and discarded.
        metric("stale/metric", 1.0);
        let scope = MetricScope::enter();
        metric("exp1/a", 1.5);
        // The experiment panics mid-way, as an isolated experiment might.
        let _ = std::panic::catch_unwind(|| {
            metric("exp1/b", 2.5);
            panic!("experiment dies after recording metrics");
        });
        let got = scope.finish();
        assert_eq!(got, vec![("exp1/a".to_owned(), 1.5), ("exp1/b".to_owned(), 2.5)]);

        // The next experiment's scope must start empty: nothing leaked.
        let scope = MetricScope::enter();
        metric("exp2/a", 3.0);
        assert_eq!(scope.finish(), vec![("exp2/a".to_owned(), 3.0)]);

        // A dropped (unfinished) scope discards its metrics.
        {
            let _scope = MetricScope::enter();
            metric("abandoned", 9.0);
        }
        let scope = MetricScope::enter();
        assert!(scope.finish().is_empty());
    }

    #[test]
    fn trials_match_plain_runner_and_honor_fault_plans() {
        let mut scale = Scale::quick();
        scale.threads = 2;
        let out = trials(&scale, 8, 0xABC, |idx, seed, _| (idx, seed));
        assert_eq!(out, bscope_harness::run_trials(8, scale.seed ^ 0xABC, 1, |i, s| (i, s)));

        scale.fault = Some(bscope_harness::FaultPlan::keyed(0).panic_on_index(3));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trials(&scale, 8, 0xABC, |idx, seed, _| (idx, seed))
        }))
        .expect_err("injected fault must propagate");
        let msg = bscope_harness::panic_message(&*err);
        assert!(msg.contains("trial 3"), "fault names its trial: {msg}");
    }

    // The trace sink is global (like the metric sink), so one test covers
    // capture + drain semantics end to end.
    #[test]
    fn traced_trials_feed_the_sink_and_untraced_ones_do_not() {
        use bscope_uarch::TraceEvent;
        let _ = drain_traces(); // discard anything stale
        let mut scale = Scale::quick();
        scale.threads = 1;

        // trace = false: tracer is disabled, sink stays empty.
        let _ = trials(&scale, 3, 0x11, |_, _, tracer| {
            assert!(!tracer.is_enabled());
        });
        assert!(drain_traces().is_empty());

        // trace = true: one TrialTrace per trial, in trial order, stamped
        // with the replay seed.
        scale.trace = true;
        let _ = trials(&scale, 3, 0x11, |idx, _, tracer| {
            for _ in 0..=idx {
                tracer.emit_with(|| TraceEvent::NoiseBurst { injected: 1 });
            }
        });
        let traces = drain_traces();
        assert_eq!(traces.len(), 3);
        for (idx, t) in traces.iter().enumerate() {
            assert_eq!(t.trial_index, idx);
            assert_eq!(t.seed, bscope_harness::trial_seed(scale.seed ^ 0x11, idx as u64));
            assert_eq!(t.events.len(), idx + 1);
            assert_eq!(t.metrics.counter("noise_branches"), (idx + 1) as u64);
        }
        // The drain emptied the sink.
        assert!(drain_traces().is_empty());
    }
}
