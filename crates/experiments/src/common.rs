//! Shared experiment plumbing: scale factors, the headline-metric sink
//! behind `--json`, and small output helpers.

use std::sync::Mutex;

/// Experiment scale: `full()` approaches the paper's sample sizes where
/// affordable; `quick()` runs everything in seconds for smoke testing.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Whether this is the reduced (smoke-test) scale.
    pub quick: bool,
    /// Base seed for all experiment randomness.
    pub seed: u64,
    /// Worker threads for trial-parallel experiments (`0` = all cores).
    /// Results are thread-count-invariant (see `bscope-harness`), so this
    /// only affects wall-clock.
    pub threads: usize,
}

impl Scale {
    pub fn full() -> Self {
        Scale { quick: false, seed: 0xB5C0_9E01, threads: 0 }
    }

    #[allow(dead_code)] // handy for unit-style invocations
    pub fn quick() -> Self {
        Scale { quick: true, ..Scale::full() }
    }

    /// Picks a sample size by scale.
    pub fn n(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Headline metrics reported by experiments since the last [`drain_metrics`]
/// call; the main loop attaches them to the experiment that just ran when
/// emitting `--json`.
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Records a headline result (e.g. a table cell or summary fraction) for
/// the `--json` report. No-op unless drained by the main loop.
pub fn metric(name: impl Into<String>, value: f64) {
    METRICS.lock().expect("metrics lock").push((name.into(), value));
}

/// Takes all metrics recorded since the previous drain.
pub fn drain_metrics() -> Vec<(String, f64)> {
    std::mem::take(&mut METRICS.lock().expect("metrics lock"))
}

/// Simple text bar for terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 { 0 } else { ((value / max) * width as f64).round() as usize };
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Mean of a u64 sample.
pub fn mean(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

/// Population standard deviation of a u64 sample.
#[allow(dead_code)] // used by ad-hoc experiment variants
pub fn std_dev(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Percentile (nearest-rank) of a u64 sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}
