//! Figure 6: demonstration of covert-channel decoding with the spy's
//! pattern dictionary.

use crate::common::Scale;
use bscope_bpu::{MicroarchProfile, Outcome};
use bscope_core::{AttackConfig, BranchScope, BscopeError, ProbePattern};
use bscope_os::{AslrPolicy, System};
use bscope_uarch::NoiseConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let profile = MicroarchProfile::skylake();
    // Heavier-than-usual noise so the short demo plausibly shows an
    // erroneously received bit, as the paper's figure does.
    let mut sys = System::new(profile.clone(), scale.seed)
        .with_noise(NoiseConfig { branches_per_kcycle: 30.0, ..NoiseConfig::system_activity() })?;
    let sender = sys.spawn("trojan", AslrPolicy::Disabled);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    let target = sys.process(sender).vaddr_of(0x6d);
    let mut attack = BranchScope::new(AttackConfig::for_profile(&profile))?;

    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xF166);
    let original: Vec<bool> = (0..32).map(|_| rng.gen()).collect();
    let mut patterns: Vec<ProbePattern> = Vec::new();
    for &bit in &original {
        let pattern = attack.observe_bit(&mut sys, spy, target, |sys| {
            sys.cpu(sender).branch_at(0x6d, Outcome::from_bool(bit));
        });
        patterns.push(pattern);
    }
    let decoded: Vec<bool> =
        patterns.iter().map(|&p| attack.dict().decode(p).is_taken()).collect();

    let dict = attack.dict();
    println!("spy dictionary (primed {}, probing {}):", dict.primed(), dict.probe());
    for p in ProbePattern::ALL {
        println!("    {p} -> {}", u8::from(dict.decode(p).is_taken()));
    }
    println!();
    let row = |label: &str, cells: Vec<String>| {
        println!("{label:<14} {}", cells.join(" "));
    };
    row("original", original.iter().map(|&b| format!(" {}", u8::from(b))).collect());
    row("spy measures", patterns.iter().map(|p| format!("{p}")).collect());
    row("decoded", decoded.iter().map(|&b| format!(" {}", u8::from(b))).collect());
    row(
        "",
        original
            .iter()
            .zip(&decoded)
            .map(|(a, b)| if a == b { "  ".to_owned() } else { " ^".to_owned() })
            .collect(),
    );
    let errors = original.iter().zip(&decoded).filter(|(a, b)| a != b).count();
    println!("\n{errors} erroneous bit(s) out of {} under elevated noise;", original.len());
    println!("paper's figure likewise demonstrates one erroneously received bit.");
    Ok(())
}
