//! Figure 9: probe-pair latency (first and second measurement) as a
//! function of the PHT entry's starting state, for both probe directions.

use crate::common::Scale;
use bscope_bpu::{MicroarchProfile, PhtState};
use bscope_core::timing_probe::probe_latency_by_state;
use bscope_core::{BscopeError, ProbeKind};
use bscope_os::{AslrPolicy, System};

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let profile = MicroarchProfile::haswell();
    let reps = scale.n(5_000, 500);
    for (title, kind) in [
        ("probe with two NOT-TAKEN branches", ProbeKind::NotTakenNotTaken),
        ("probe with two TAKEN branches", ProbeKind::TakenTaken),
    ] {
        println!("{title} ({reps} repetitions per state)");
        println!(
            "{:<10} {:>14} {:>14}   expected pattern",
            "state", "1st (cycles)", "2nd (cycles)"
        );
        for state in [
            PhtState::StronglyTaken,
            PhtState::WeaklyTaken,
            PhtState::WeaklyNotTaken,
            PhtState::StronglyNotTaken,
        ] {
            let mut sys = System::new(profile.clone(), scale.seed);
            let spy = sys.spawn("spy", AslrPolicy::Disabled);
            let stats = probe_latency_by_state(&mut sys, spy, state, kind, reps);
            println!(
                "{:<10} {:>7.1} ±{:>4.1} {:>7.1} ±{:>4.1}   {}({})",
                state.mnemonic(),
                stats.first_mean,
                stats.first_std,
                stats.second_mean,
                stats.second_std,
                state.mnemonic(),
                stats.expected,
            );
        }
        println!();
    }
    println!("paper: the four states are reliably distinguishable from the probe timings,");
    println!("       e.g. probing NN: ST(MM), WT(MH), WN(HH), SN(HH); probing TT mirrors it.");
    Ok(())
}
