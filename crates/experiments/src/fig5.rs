//! Figure 5: PHT probing over address ranges — indexing granularity (a),
//! Hamming-distance size discovery (b), and aligned repetition (c).

use crate::common::Scale;
use bscope_bpu::MicroarchProfile;
use bscope_core::reverse::{
    candidate_windows, discover_pht_size, scan_states, GranularityReport,
};
use bscope_core::RandomizationBlock;
use bscope_core::BscopeError;
use bscope_os::{AslrPolicy, System};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(scale: &Scale) -> Result<(), BscopeError> {
    let profile = MicroarchProfile::skylake();
    let pht_size = profile.pht_size;
    let mut sys = System::new(profile.clone(), scale.seed);
    let spy = sys.spawn("spy", AslrPolicy::Disabled);
    // A dense block so (nearly) every entry's post-block state is
    // start-independent; generated once and replayed, per §6.3.
    let block = RandomizationBlock::generate(scale.seed ^ 0xF16,
        pht_size * 14, 0x70_0000);

    // (a) granularity: 0x300000..0x30010f, as in the paper.
    let states = scan_states(&mut sys, spy, &block, 0x30_0000, 0x110);
    let report = GranularityReport::from_states(&states);
    println!("(a) states for addresses 0x300000..0x30010f");
    println!("    (T=ST t=WT n=WN N=SN d=dirty ?=unknown, one char per byte address):");
    let glyph = |s: &bscope_core::DecodedState| match s {
        bscope_core::DecodedState::Known(bscope_bpu::PhtState::StronglyTaken) => 'T',
        bscope_core::DecodedState::Known(bscope_bpu::PhtState::WeaklyTaken) => 't',
        bscope_core::DecodedState::Known(bscope_bpu::PhtState::WeaklyNotTaken) => 'n',
        bscope_core::DecodedState::Known(bscope_bpu::PhtState::StronglyNotTaken) => 'N',
        bscope_core::DecodedState::Dirty => 'd',
        bscope_core::DecodedState::Unknown => '?',
    };
    for chunk in states.chunks(64) {
        println!("    {}", chunk.iter().map(glyph).collect::<String>());
    }
    println!(
        "    adjacent addresses differ in {:.0}% of pairs -> byte-granular indexing\n",
        100.0 * report.differing_fraction()
    );

    // (b) scan 2^16 contiguous addresses and find the window minimising the
    // Hamming ratio.
    let count = scale.n(4 * pht_size, 4 * pht_size);
    let full = scan_states(&mut sys, spy, &block, 0x30_0000, count);
    let windows = candidate_windows(full.len(), pht_size, scale.n(50, 12));
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x5B);
    let discovery = discover_pht_size(&full, &windows, 100, &mut rng);
    println!("(b) Hamming-distance ratio H(w)/w over candidate windows:");
    for &(w, r) in discovery
        .ratios
        .iter()
        .filter(|(w, _)| w.is_power_of_two() || (*w as i64 - pht_size as i64).unsigned_abs() <= 3)
    {
        let marker = if w == discovery.inferred_size { "   <== minimum" } else { "" };
        println!("    w = {w:>6}: {r:.4}{marker}");
    }
    println!(
        "\npaper: minimum at window 2^14 => PHT size 16 384 entries.\nours : inferred size {} entries.\n",
        discovery.inferred_size
    );

    // (c) aligned rows, one PHT apart.
    println!("(c) first 48 states of each PHT-aligned row (rows should match):");
    for wrap in 0..(count / pht_size) {
        let row = &full[wrap * pht_size..wrap * pht_size + 48];
        println!(
            "    0x{:06x}..: {}",
            0x30_0000u64 + (wrap * pht_size) as u64,
            row.iter().map(glyph).collect::<String>()
        );
    }
    let periodic = (0..pht_size)
        .filter(|&i| (1..count / pht_size).all(|w| full[i] == full[w * pht_size + i]))
        .count();
    println!(
        "    {:.1}% of entries identical across all {} rows.",
        100.0 * periodic as f64 / pht_size as f64,
        count / pht_size
    );
    Ok(())
}
