//! Hand-rolled JSON report for `--json` (the workspace has no JSON
//! serialisation dependency, and the format here is flat enough that an
//! escaping-correct emitter is a dozen lines).
//!
//! Failed experiments still get an entry (`"status": "failed"` plus the
//! panic or error message and whatever metrics were recorded before the
//! failure), so a partial report stays well-formed and machine-readable.

use crate::common::Scale;
use std::fmt::Write as _;

/// Per-run report: configuration, per-experiment wall-clock and headline
/// metrics, written as a single JSON object.
pub struct Report {
    quick: bool,
    seed: u64,
    threads: usize,
    experiments: Vec<Entry>,
}

struct Entry {
    name: String,
    /// The predictor backend the experiment actually ran on — `--bpu` for
    /// backend-aware experiments, `"hybrid"` for the rest.
    backend: String,
    wall_seconds: f64,
    metrics: Vec<(String, f64)>,
    /// `Some(message)` when the experiment failed (typed error or panic).
    error: Option<String>,
}

/// JSON string escaping (quotes, backslashes, control characters — both
/// the C0 range and DEL, which some strict parsers reject raw).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number: finite floats as-is, non-finite as null (JSON has no NaN).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl Report {
    pub fn new(scale: &Scale) -> Self {
        Report { quick: scale.quick, seed: scale.seed, threads: scale.threads, experiments: Vec::new() }
    }

    /// Records one experiment: `backend` names the predictor substrate it
    /// ran on; `error` is `None` on success, or the failure message of a
    /// panicked/errored experiment. Metrics recorded before the failure
    /// are kept — they belong to this entry, not the next experiment's.
    pub fn record(
        &mut self,
        name: &str,
        backend: &str,
        wall_seconds: f64,
        metrics: Vec<(String, f64)>,
        error: Option<String>,
    ) {
        self.experiments.push(Entry {
            name: name.to_owned(),
            backend: backend.to_owned(),
            wall_seconds,
            metrics,
            error,
        });
    }

    /// Whether any recorded experiment failed.
    pub fn has_failures(&self) -> bool {
        self.experiments.iter().any(|e| e.error.is_some())
    }

    /// Serialises the report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let total: f64 = self.experiments.iter().map(|e| e.wall_seconds).sum();
        let _ = writeln!(out, "  \"total_wall_seconds\": {},", number(total));
        let failed: Vec<&Entry> = self.experiments.iter().filter(|e| e.error.is_some()).collect();
        out.push_str("  \"failed\": [");
        for (i, e) in failed.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if i == 0 { "" } else { ", " }, escape(&e.name));
        }
        out.push_str("],\n");
        out.push_str("  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", escape(&e.name));
            let _ = writeln!(out, "      \"backend\": \"{}\",", escape(&e.backend));
            let _ = writeln!(
                out,
                "      \"status\": \"{}\",",
                if e.error.is_some() { "failed" } else { "ok" }
            );
            if let Some(err) = &e.error {
                let _ = writeln!(out, "      \"error\": \"{}\",", escape(err));
            }
            let _ = writeln!(out, "      \"wall_seconds\": {},", number(e.wall_seconds));
            out.push_str("      \"metrics\": {");
            for (j, (k, v)) in e.metrics.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                let _ = write!(out, "        \"{}\": {}", escape(k), number(*v));
            }
            out.push_str(if e.metrics.is_empty() { "}\n" } else { "\n      }\n" });
            out.push_str("    }");
        }
        out.push_str(if self.experiments.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Writes the report to `path` atomically (see [`write_atomic`]): a
    /// consumer watching the path never observes a truncated report, and a
    /// crash mid-write leaves any previous report intact.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        write_atomic(path, &self.to_json())
    }
}

/// Atomic file write: stream into a hidden temp file *in the destination's
/// directory* (rename is only atomic within a filesystem), fsync, then
/// rename over `path`. On any error the temp file is cleaned up and the
/// destination is left exactly as it was.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let dest = std::path::Path::new(path);
    let dir = match dest.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let name = dest
        .file_name()
        .map_or_else(|| "out".to_owned(), |n| n.to_string_lossy().into_owned());
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, dest)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_balanced(s: &str) {
        // Brace/bracket balance as a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                s.chars().filter(|&c| c == open).count(),
                s.chars().filter(|&c| c == close).count()
            );
        }
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn escaping_handles_del_and_non_bmp() {
        // DEL is a control character some strict parsers reject unescaped.
        assert_eq!(escape("a\u{7f}b"), "a\\u007fb");
        // Non-BMP characters pass through as raw UTF-8 (valid JSON) — they
        // must NOT be mangled into a lone \uXXXX, which would be an
        // unpaired surrogate.
        assert_eq!(escape("ok \u{1F600}"), "ok \u{1F600}");
        // The last pre-control and first post-DEL characters stay raw.
        assert_eq!(escape("\u{1f}\u{20}\u{7e}\u{80}"), "\\u001f\u{20}\u{7e}\u{80}");
    }

    #[test]
    fn numbers_stay_valid_json_at_the_extremes() {
        // Subnormals and huge values render in exponent notation, which is
        // valid JSON; non-finite values must become null.
        for v in [5e-324, f64::MIN_POSITIVE / 2.0, 1e308, -1e-308, 0.0, -0.0] {
            let n = number(v);
            let round: f64 = n.parse().expect("number() output parses back");
            assert_eq!(round, v, "{n}");
        }
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_droppings() {
        let dir = std::env::temp_dir().join(format!("bscope-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path_s = path.to_str().unwrap();
        write_atomic(path_s, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        write_atomic(path_s, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "report.json")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_shape_is_valid_json_by_construction() {
        let mut scale = Scale::quick();
        scale.threads = 4;
        let mut r = Report::new(&scale);
        r.record("fig4", "hybrid", 1.25, vec![("fig4/stable_fraction".into(), 0.83)], None);
        r.record("empty", "tage", 0.5, vec![], None);
        let s = r.to_json();
        assert!(s.contains("\"threads\": 4"));
        assert!(s.contains("\"fig4/stable_fraction\": 0.83"));
        assert!(s.contains("\"wall_seconds\": 1.25"));
        assert!(s.contains("\"status\": \"ok\""));
        assert!(s.contains("\"backend\": \"hybrid\""));
        assert!(s.contains("\"backend\": \"tage\""));
        assert!(s.contains("\"failed\": []"));
        assert!(!r.has_failures());
        assert_balanced(&s);
        assert!(!s.contains("NaN"));
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn failed_experiments_keep_partial_metrics_and_are_listed() {
        let mut r = Report::new(&Scale::quick());
        r.record("table1", "hybrid", 0.1, vec![("table1/rows".into(), 8.0)], None);
        r.record(
            "table2",
            "perceptron",
            0.2,
            vec![("table2/partial".into(), 1.0)],
            Some("trial 3 (seed 0x0000000000000001) panicked: injected fault\n\"quoted\"".into()),
        );
        assert!(r.has_failures());
        let s = r.to_json();
        assert!(s.contains("\"failed\": [\"table2\"]"));
        assert!(s.contains("\"status\": \"failed\""));
        assert!(s.contains("injected fault\\n\\\"quoted\\\""), "error message is escaped: {s}");
        // The failing experiment's pre-panic metrics stay on its own entry.
        assert!(s.contains("\"table2/partial\": 1"));
        assert_balanced(&s);
    }
}
