//! BranchScope reproduction — façade crate.
//!
//! Re-exports the full public API of the workspace crates so downstream
//! users (and the `examples/` and `tests/` in this repository) can depend on
//! a single crate:
//!
//! * [`bpu`] — the branch prediction unit model (PHT, GHR, gshare, bimodal,
//!   selector, BTB, hybrid predictor, microarchitecture profiles),
//! * [`uarch`] — the simulated CPU core (timing, TSC, i-cache, perf counters),
//! * [`os`] — processes, SMT scheduling, noise and the SGX enclave model,
//! * [`attack`] — the BranchScope attack itself (prime+probe on the
//!   directional predictor, covert channel, PHT reverse engineering),
//! * [`victims`] — victim programs with secret-dependent branches,
//! * [`mitigations`] — §10 defenses and their evaluation,
//! * [`baselines`] — prior BTB-based attacks,
//! * [`isa`] — a tiny instruction set + interpreter so programs with
//!   byte-accurate branch layout can run on the simulated machine,
//! * [`trace`] — structured event tracing and metrics (ring-buffer sinks,
//!   counters/histograms, JSONL rendering) with a zero-cost disabled path.
//!
//! # Quickstart
//!
//! ```
//! use branchscope::bpu::{MicroarchProfile, Outcome};
//! use branchscope::uarch::SimCore;
//!
//! let mut core = SimCore::new(MicroarchProfile::skylake(), 42);
//! let event = core.execute_branch(0x30_0000, Outcome::Taken);
//! assert_eq!(event.outcome, Outcome::Taken);
//! ```

#![forbid(unsafe_code)]

pub use bscope_baselines as baselines;
pub use bscope_isa as isa;
pub use bscope_bpu as bpu;
pub use bscope_core as attack;
pub use bscope_mitigations as mitigations;
pub use bscope_os as os;
pub use bscope_trace as trace;
pub use bscope_uarch as uarch;
pub use bscope_victims as victims;
